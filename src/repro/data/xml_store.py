"""XML persistence in the MASS crawl format.

The paper's Crawler Module "stores the bloggers' information (including
the bloggers' personal information, posts, and corresponding comments)
in XML files".  We reproduce that storage layer: one ``<space>``
document per blogger holding the profile, the blogger's posts with
their comments, and outgoing links, plus an ``index.xml`` naming every
space file in a crawl directory.

Two granularities are provided:

- directory store: :func:`save_corpus` / :func:`load_corpus` (what the
  multi-threaded crawler writes, one file per crawled space);
- single document: :func:`dumps_corpus` / :func:`loads_corpus` (handy
  for tests and small exports).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.data.corpus import BlogCorpus
from repro.data.entities import Blogger, Comment, Link, Post
from repro.errors import CorpusError, CorpusFormatError

__all__ = [
    "space_to_element",
    "space_from_element",
    "save_corpus",
    "load_corpus",
    "dumps_corpus",
    "loads_corpus",
    "migrate_to_columnar",
    "open_corpus",
    "FORMAT_VERSION",
]

FORMAT_VERSION = "1.0"

# XML 1.0 cannot represent most control characters or lone surrogates
# at all (they are invalid in the document, escaped or not), yet real
# crawled text contains them.  We strip the unrepresentable characters
# at serialization time — the only lossless alternative would be a
# side-channel encoding, which no consumer of these files would expect.
_INVALID_XML_CHARS = {
    codepoint: None
    for codepoint in (
        list(range(0x00, 0x09))
        + [0x0B, 0x0C]
        + list(range(0x0E, 0x20))
        + list(range(0xD800, 0xE000))
        + [0xFFFE, 0xFFFF]
    )
}


def sanitize_xml_text(text: str) -> str:
    """Make text XML-1.0-safe and parse-stable.

    Drops characters XML cannot carry (C0 controls, surrogates) and
    applies the spec's line-end normalization (``\\r\\n``/``\\r`` →
    ``\\n``) eagerly, so what is written is exactly what a conformant
    parser reads back.
    """
    if "\r" in text:
        text = text.replace("\r\n", "\n").replace("\r", "\n")
    return text.translate(_INVALID_XML_CHARS)


# ----------------------------------------------------------------------
# Element-level encoding
# ----------------------------------------------------------------------
def space_to_element(corpus: BlogCorpus, blogger_id: str) -> ET.Element:
    """Encode one blogger's space (profile, posts+comments, out-links)."""
    blogger = corpus.blogger(blogger_id)
    space = ET.Element("space", {"id": blogger.blogger_id, "version": FORMAT_VERSION})

    profile = ET.SubElement(space, "profile", {"joined-day": str(blogger.joined_day)})
    ET.SubElement(profile, "name").text = sanitize_xml_text(blogger.name)
    ET.SubElement(profile, "about").text = sanitize_xml_text(
        blogger.profile_text
    )

    posts_el = ET.SubElement(space, "posts")
    for post in sorted(corpus.posts_by(blogger_id), key=lambda p: p.post_id):
        post_el = ET.SubElement(
            posts_el, "post", {"id": post.post_id, "day": str(post.created_day)}
        )
        ET.SubElement(post_el, "title").text = sanitize_xml_text(post.title)
        ET.SubElement(post_el, "body").text = sanitize_xml_text(post.body)
        comments_el = ET.SubElement(post_el, "comments")
        for comment in sorted(corpus.comments_on(post.post_id),
                              key=lambda c: c.comment_id):
            comment_el = ET.SubElement(
                comments_el,
                "comment",
                {
                    "id": comment.comment_id,
                    "by": comment.commenter_id,
                    "day": str(comment.created_day),
                },
            )
            comment_el.text = sanitize_xml_text(comment.text)

    links_el = ET.SubElement(space, "links")
    for link in sorted(corpus.out_links(blogger_id), key=lambda l: l.target_id):
        ET.SubElement(
            links_el, "link", {"to": link.target_id, "weight": repr(link.weight)}
        )
    return space


def _attr(element: ET.Element, name: str) -> str:
    value = element.get(name)
    if value is None:
        raise CorpusFormatError(
            f"<{element.tag}> is missing required attribute {name!r}"
        )
    return value


def _int_attr(element: ET.Element, name: str) -> int:
    raw = _attr(element, name)
    try:
        return int(raw)
    except ValueError:
        raise CorpusFormatError(
            f"<{element.tag}> attribute {name!r} must be an integer, got {raw!r}"
        ) from None


class SpaceRecord:
    """Decoded contents of one ``<space>`` element."""

    def __init__(
        self,
        blogger: Blogger,
        posts: list[Post],
        comments: list[Comment],
        links: list[Link],
    ) -> None:
        self.blogger = blogger
        self.posts = posts
        self.comments = comments
        self.links = links


def space_from_element(space: ET.Element) -> SpaceRecord:
    """Decode one ``<space>`` element into entities.

    Raises :class:`CorpusFormatError` on any structural deviation.
    """
    if space.tag != "space":
        raise CorpusFormatError(f"expected <space>, got <{space.tag}>")
    blogger_id = _attr(space, "id")

    profile = space.find("profile")
    if profile is None:
        raise CorpusFormatError(f"space {blogger_id!r} has no <profile>")
    name_el = profile.find("name")
    about_el = profile.find("about")
    blogger = Blogger(
        blogger_id,
        name=(name_el.text or "") if name_el is not None else "",
        profile_text=(about_el.text or "") if about_el is not None else "",
        joined_day=_int_attr(profile, "joined-day"),
    )

    posts: list[Post] = []
    comments: list[Comment] = []
    posts_el = space.find("posts")
    if posts_el is not None:
        for post_el in posts_el.findall("post"):
            title_el = post_el.find("title")
            body_el = post_el.find("body")
            post = Post(
                _attr(post_el, "id"),
                blogger_id,
                title=(title_el.text or "") if title_el is not None else "",
                body=(body_el.text or "") if body_el is not None else "",
                created_day=_int_attr(post_el, "day"),
            )
            posts.append(post)
            comments_el = post_el.find("comments")
            if comments_el is None:
                continue
            for comment_el in comments_el.findall("comment"):
                comments.append(
                    Comment(
                        _attr(comment_el, "id"),
                        post.post_id,
                        _attr(comment_el, "by"),
                        text=comment_el.text or "",
                        created_day=_int_attr(comment_el, "day"),
                    )
                )

    links: list[Link] = []
    links_el = space.find("links")
    if links_el is not None:
        for link_el in links_el.findall("link"):
            raw_weight = link_el.get("weight", "1.0")
            try:
                weight = float(raw_weight)
            except ValueError:
                raise CorpusFormatError(
                    f"link weight must be a number, got {raw_weight!r}"
                ) from None
            links.append(Link(blogger_id, _attr(link_el, "to"), weight))
    return SpaceRecord(blogger, posts, comments, links)


# ----------------------------------------------------------------------
# Whole-corpus encoding
# ----------------------------------------------------------------------
def _corpus_to_element(corpus: BlogCorpus) -> ET.Element:
    root = ET.Element("blogosphere", {"version": FORMAT_VERSION})
    for blogger_id in corpus.blogger_ids():
        root.append(space_to_element(corpus, blogger_id))
    return root


def _build_corpus(records: list[SpaceRecord]) -> BlogCorpus:
    """Assemble decoded space records into a frozen corpus.

    Structural violations *inside* otherwise well-formed XML —
    duplicate ids across space files, comments on posts that no file
    contains, links to bloggers the store never mentions — surface as
    :class:`CorpusFormatError`: to a loader they are corrupt stored
    data, not a programming error.
    """
    try:
        corpus = BlogCorpus()
        for record in records:
            corpus.add_blogger(record.blogger)
        for record in records:
            for post in record.posts:
                corpus.add_post(post)
        for record in records:
            for comment in record.comments:
                corpus.add_comment(comment)
            for link in record.links:
                corpus.add_link(link)
        return corpus.freeze()
    except CorpusError as exc:
        raise CorpusFormatError(f"stored corpus data is invalid: {exc}") from exc


def _corpus_from_element(root: ET.Element) -> BlogCorpus:
    if root.tag != "blogosphere":
        raise CorpusFormatError(f"expected <blogosphere>, got <{root.tag}>")
    return _build_corpus(
        [_decode_space(el) for el in root.findall("space")]
    )


def _decode_space(space: ET.Element) -> SpaceRecord:
    """Decode one space, downgrading entity-level CorpusError to format."""
    try:
        return space_from_element(space)
    except CorpusError as exc:
        raise CorpusFormatError(f"stored corpus data is invalid: {exc}") from exc


def dumps_corpus(corpus: BlogCorpus) -> str:
    """Serialize a whole corpus to one XML string."""
    element = _corpus_to_element(corpus)
    ET.indent(element)
    return ET.tostring(element, encoding="unicode")


def loads_corpus(text: str) -> BlogCorpus:
    """Parse a corpus from an XML string produced by :func:`dumps_corpus`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise CorpusFormatError(f"invalid XML: {exc}") from exc
    return _corpus_from_element(root)


def save_corpus(corpus: BlogCorpus, directory: str | Path) -> Path:
    """Write a crawl directory: ``index.xml`` plus one file per space.

    Returns the directory path.  Existing space files are overwritten;
    unrelated files are left alone.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    index = ET.Element("index", {"version": FORMAT_VERSION})
    for blogger_id in corpus.blogger_ids():
        filename = f"space-{blogger_id}.xml"
        ET.SubElement(index, "space", {"id": blogger_id, "file": filename})
        space = space_to_element(corpus, blogger_id)
        ET.indent(space)
        (directory / filename).write_text(
            ET.tostring(space, encoding="unicode"), encoding="utf-8"
        )
    ET.indent(index)
    (directory / "index.xml").write_text(
        ET.tostring(index, encoding="unicode"), encoding="utf-8"
    )
    return directory


def migrate_to_columnar(
    directory: str | Path, dest: str | Path, *, tokens: bool = False
) -> Path:
    """One-shot migration: XML crawl directory → ``.mcol`` columnar file.

    Loads the directory with :func:`load_corpus` (full validation) and
    serializes it through :func:`repro.store.write_corpus`, so the
    columnar file solves bit-identically to the XML-loaded corpus.
    ``tokens=True`` additionally stores tokenized interest-vector
    columns.  Returns the written path; the source directory is left
    untouched.
    """
    # Imported here so the XML store stays importable without pulling
    # the columnar layer into every reader of this module.
    from repro.store import write_corpus

    corpus = load_corpus(directory)
    return write_corpus(corpus, dest, tokens=tokens)


def open_corpus(source: str | Path):
    """Open stored corpus data, whatever its on-disk form.

    A path to an ``.mcol`` file opens as a memory-mapped
    :class:`repro.store.ColumnarCorpus`; a directory loads as an XML
    crawl store via :func:`load_corpus`.  Both results satisfy the
    corpus read protocol, so every analysis entry point can accept
    either format through this one dispatcher.
    """
    path = Path(source)
    if path.is_file() or path.suffix == ".mcol":
        from repro.store import ColumnarCorpus

        return ColumnarCorpus.open(path)
    return load_corpus(path)


def load_corpus(directory: str | Path) -> BlogCorpus:
    """Read a crawl directory written by :func:`save_corpus`."""
    directory = Path(directory)
    index_path = directory / "index.xml"
    if not index_path.exists():
        raise CorpusFormatError(f"no index.xml in {directory}")
    try:
        index = ET.fromstring(index_path.read_text(encoding="utf-8"))
    except ET.ParseError as exc:
        raise CorpusFormatError(f"invalid index.xml: {exc}") from exc
    if index.tag != "index":
        raise CorpusFormatError(f"expected <index>, got <{index.tag}>")

    records = []
    for entry in index.findall("space"):
        path = directory / _attr(entry, "file")
        if not path.exists():
            raise CorpusFormatError(f"index references missing file {path.name!r}")
        try:
            space = ET.fromstring(path.read_text(encoding="utf-8"))
        except ET.ParseError as exc:
            raise CorpusFormatError(f"invalid XML in {path.name!r}: {exc}") from exc
        records.append(_decode_space(space))
    return _build_corpus(records)
