"""Core blogosphere entities: bloggers, posts, comments, and links.

These mirror the data model of Section II of the MASS paper: a set of
bloggers, each with posts; comments on posts written by (other)
bloggers; and blogger-to-blogger links ("when a person finds a blog
interesting, s/he may directly add a link to it") that feed the
General Links authority score.

All entities are immutable value objects.  Mutation happens at the
corpus level (see :mod:`repro.data.corpus`), never in place, which
keeps indexes trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CorpusError

__all__ = ["Blogger", "Post", "Comment", "Link"]


def _require_id(value: str, what: str) -> None:
    """Validate that an identifier is a non-empty string."""
    if not isinstance(value, str) or not value:
        raise CorpusError(f"{what} must be a non-empty string, got {value!r}")


def _require_day(value: int, what: str) -> None:
    """Validate that a day stamp is a non-negative integer."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise CorpusError(f"{what} must be a non-negative integer, got {value!r}")


@dataclass(frozen=True, slots=True)
class Blogger:
    """A blogger account.

    Parameters
    ----------
    blogger_id:
        Unique identifier (the paper crawls MSN-space URLs; any opaque
        string works).
    name:
        Display name shown on visualization nodes (Fig. 4).
    profile_text:
        Free-text profile, mined for domain interests in the
        personalized-recommendation scenario.  May be empty.
    joined_day:
        Day offset at which the account was created; used only by the
        synthetic generator and activity statistics.
    """

    blogger_id: str
    name: str = ""
    profile_text: str = ""
    joined_day: int = 0

    def __post_init__(self) -> None:
        _require_id(self.blogger_id, "blogger_id")
        _require_day(self.joined_day, "joined_day")
        if not self.name:
            object.__setattr__(self, "name", self.blogger_id)


@dataclass(frozen=True, slots=True)
class Post:
    """A blog post written by a blogger.

    The post is the analysis unit of MASS ("since each post is domain
    specific, we choose 'post' as the analysis unit, rather than a
    blogger").

    Parameters
    ----------
    post_id:
        Unique identifier.
    author_id:
        ``blogger_id`` of the author.
    title / body:
        Post text.  Quality scoring uses the body length; domain
        classification uses title + body.
    created_day:
        Day offset of publication.
    """

    post_id: str
    author_id: str
    title: str = ""
    body: str = ""
    created_day: int = 0

    def __post_init__(self) -> None:
        _require_id(self.post_id, "post_id")
        _require_id(self.author_id, "author_id")
        _require_day(self.created_day, "created_day")

    @property
    def text(self) -> str:
        """Title and body joined, the unit fed to the Post Analyzer."""
        if self.title and self.body:
            return f"{self.title}\n{self.body}"
        return self.title or self.body


@dataclass(frozen=True, slots=True)
class Comment:
    """A comment left by a blogger on another blogger's post.

    Comments drive the CommentScore of Eq. 3: each comment contributes
    the commenter's influence, weighted by its sentiment factor and
    normalized by the commenter's total comment count.
    """

    comment_id: str
    post_id: str
    commenter_id: str
    text: str = ""
    created_day: int = 0

    def __post_init__(self) -> None:
        _require_id(self.comment_id, "comment_id")
        _require_id(self.post_id, "post_id")
        _require_id(self.commenter_id, "commenter_id")
        _require_day(self.created_day, "created_day")


@dataclass(frozen=True, slots=True)
class Link:
    """A directed blogger-to-blogger link (blogroll / external link).

    Links form the graph behind the General Links (GL) authority score,
    "like PageRank and HITS".  ``source_id`` links to ``target_id``,
    i.e. the source endorses the target.
    """

    source_id: str
    target_id: str
    weight: float = field(default=1.0)

    def __post_init__(self) -> None:
        _require_id(self.source_id, "source_id")
        _require_id(self.target_id, "target_id")
        if self.source_id == self.target_id:
            raise CorpusError(f"self-link for blogger {self.source_id!r}")
        if not isinstance(self.weight, (int, float)) or self.weight <= 0:
            raise CorpusError(f"link weight must be positive, got {self.weight!r}")
