"""Fluent construction helpers for :class:`repro.data.corpus.BlogCorpus`.

The builder removes the id bookkeeping that otherwise clutters tests
and examples: it mints sequential post/comment ids and accepts plain
strings where full entities would be noise.
"""

from __future__ import annotations

from repro.data.corpus import BlogCorpus
from repro.data.entities import Blogger, Comment, Link, Post

__all__ = ["CorpusBuilder"]


class CorpusBuilder:
    """Incrementally assemble a :class:`BlogCorpus` with minted ids.

    Examples
    --------
    >>> builder = CorpusBuilder()
    >>> post = builder.blogger("amery").post("amery", body="on merge sort")
    >>> _ = builder.comment(post.post_id, "bob", text="I agree, great point")
    >>> corpus = builder.build()
    >>> corpus.total_comments_by("bob")
    1
    """

    def __init__(self) -> None:
        self._corpus = BlogCorpus()
        self._post_seq = 0
        self._comment_seq = 0

    def blogger(
        self,
        blogger_id: str,
        name: str = "",
        profile_text: str = "",
        joined_day: int = 0,
    ) -> "CorpusBuilder":
        """Add a blogger and return the builder for chaining."""
        self._corpus.add_blogger(
            Blogger(blogger_id, name=name, profile_text=profile_text,
                    joined_day=joined_day)
        )
        return self

    def ensure_blogger(self, blogger_id: str, name: str = "") -> "CorpusBuilder":
        """Add a blogger only if not already present."""
        if blogger_id not in self._corpus:
            self.blogger(blogger_id, name=name)
        return self

    def post(
        self,
        author_id: str,
        title: str = "",
        body: str = "",
        created_day: int = 0,
        post_id: str | None = None,
    ) -> Post:
        """Add a post (minting an id unless given) and return it."""
        if post_id is None:
            self._post_seq += 1
            post_id = f"post-{self._post_seq:06d}"
        post = Post(post_id, author_id, title=title, body=body,
                    created_day=created_day)
        self._corpus.add_post(post)
        return post

    def comment(
        self,
        post_id: str,
        commenter_id: str,
        text: str = "",
        created_day: int = 0,
        comment_id: str | None = None,
    ) -> Comment:
        """Add a comment (minting an id unless given) and return it."""
        if comment_id is None:
            self._comment_seq += 1
            comment_id = f"comment-{self._comment_seq:06d}"
        comment = Comment(comment_id, post_id, commenter_id, text=text,
                          created_day=created_day)
        self._corpus.add_comment(comment)
        return comment

    def link(self, source_id: str, target_id: str, weight: float = 1.0) -> "CorpusBuilder":
        """Add a blogger-to-blogger link and return the builder."""
        self._corpus.add_link(Link(source_id, target_id, weight))
        return self

    def build(self, freeze: bool = True) -> BlogCorpus:
        """Validate (and by default freeze) the corpus and return it."""
        if freeze:
            return self._corpus.freeze()
        self._corpus.validate()
        return self._corpus
