"""Blogosphere data model: entities, indexed corpus, XML storage."""

from repro.data.builders import CorpusBuilder
from repro.data.corpus import BlogCorpus, CorpusStats
from repro.data.entities import Blogger, Comment, Link, Post
from repro.data.samples import FIGURE1_BLOGGERS, figure1_corpus, figure1_domains
from repro.data.xml_store import (
    dumps_corpus,
    load_corpus,
    loads_corpus,
    migrate_to_columnar,
    open_corpus,
    save_corpus,
)

__all__ = [
    "Blogger",
    "Post",
    "Comment",
    "Link",
    "BlogCorpus",
    "CorpusStats",
    "CorpusBuilder",
    "save_corpus",
    "load_corpus",
    "open_corpus",
    "migrate_to_columnar",
    "dumps_corpus",
    "loads_corpus",
    "figure1_corpus",
    "figure1_domains",
    "FIGURE1_BLOGGERS",
]
