"""Built-in sample datasets, including the paper's Fig. 1 example.

Fig. 1 of the paper shows a sample influence graph: Amery has two
posts — post1 about "programming skills in computer science" with
comments from Bob and Cary, and post2 about "the recent economic
depression and possible trends" with a comment from Cary — plus two
more CS posts (post3 by Helen, post4 by Dolly) surrounded by
commenters Jane, Eddie, Leo and Michael.  The figure leaves the exact
comment/link wiring of posts 3–4 unspecified; this fixture realizes
one consistent reading and documents it, so every test, example and
bench reasons about the same nine-blogger world.
"""

from __future__ import annotations

from repro.data.builders import CorpusBuilder
from repro.data.corpus import BlogCorpus

__all__ = ["FIGURE1_BLOGGERS", "figure1_corpus", "figure1_domains"]

FIGURE1_BLOGGERS: tuple[str, ...] = (
    "amery", "bob", "cary", "dolly", "eddie", "helen", "jane", "leo",
    "michael",
)

_CS_SENTENCE = (
    "Some programming skills in computer science: algorithm design, "
    "recursion, debugging the compiler, and writing clean code with "
    "good software interfaces. "
)
_ECON_SENTENCE = (
    "The recent economic depression and possible trends in the next "
    "couple of months: markets, stocks, inflation and the trade "
    "deficit facing the economy. "
)


def figure1_domains() -> dict[str, list[str]]:
    """Seed vocabularies for the two domains of the figure (CS, Econ)."""
    return {
        "Computer": [
            "programming", "computer", "science", "algorithm", "recursion",
            "debugging", "compiler", "code", "software", "interfaces",
        ],
        "Economics": [
            "economic", "depression", "markets", "stocks", "inflation",
            "trade", "deficit", "economy", "trends",
        ],
    }


def figure1_corpus() -> BlogCorpus:
    """The Fig. 1 influence graph as a validated corpus.

    Wiring (posts 1–2 exactly as in the figure; 3–4 one consistent
    reading):

    - post1 (Amery, CS): comments by Bob (positive) and Cary (positive);
    - post2 (Amery, Econ): comment by Cary (neutral);
    - post3 (Helen, CS): comments by Jane (positive) and Eddie (neutral);
    - post4 (Dolly, CS): comments by Leo (negative) and Michael (positive);
    - links: Bob→Amery, Cary→Amery, Jane→Helen, Eddie→Helen,
      Michael→Dolly, Leo→Dolly, Helen→Amery.
    """
    builder = CorpusBuilder()
    for blogger_id in FIGURE1_BLOGGERS:
        builder.blogger(blogger_id, name=blogger_id.capitalize())

    post1 = builder.post(
        "amery",
        title="Programming skills",
        body=_CS_SENTENCE * 6,
        created_day=10,
        post_id="post1",
    )
    post2 = builder.post(
        "amery",
        title="Economic depression ahead?",
        body=_ECON_SENTENCE * 5,
        created_day=12,
        post_id="post2",
    )
    post3 = builder.post(
        "helen",
        title="Computer science notes",
        body=_CS_SENTENCE * 4,
        created_day=14,
        post_id="post3",
    )
    post4 = builder.post(
        "dolly",
        title="More programming skills",
        body=_CS_SENTENCE * 3,
        created_day=15,
        post_id="post4",
    )

    builder.comment(
        post1.post_id, "bob",
        text="I agree, these programming skills are excellent and helpful.",
        created_day=11,
    )
    builder.comment(
        post1.post_id, "cary",
        text="Great point, I support this view on computer science.",
        created_day=11,
    )
    builder.comment(
        post2.post_id, "cary",
        text="Some notes on the economy for the next couple of months.",
        created_day=13,
    )
    builder.comment(
        post3.post_id, "jane",
        text="Wonderful explanation, I agree with the algorithm part.",
        created_day=15,
    )
    builder.comment(
        post3.post_id, "eddie",
        text="See also my post about the compiler from last week.",
        created_day=15,
    )
    builder.comment(
        post4.post_id, "leo",
        text="I disagree, this is wrong about recursion.",
        created_day=16,
    )
    builder.comment(
        post4.post_id, "michael",
        text="Nice writeup, very useful programming advice.",
        created_day=16,
    )

    for source, target in [
        ("bob", "amery"), ("cary", "amery"), ("jane", "helen"),
        ("eddie", "helen"), ("michael", "dolly"), ("leo", "dolly"),
        ("helen", "amery"),
    ]:
        builder.link(source, target)
    return builder.build()
