"""The :class:`BlogCorpus`: an indexed, validated blogosphere snapshot.

A corpus is the hand-off artifact between the Crawler Module and the
Analyzer Module in Fig. 2 of the paper.  It owns four entity
collections (bloggers, posts, comments, links) plus derived indexes
that the influence model needs in O(1):

- posts by author (``|P(b_i)|`` and the AP summation of Eq. 1),
- comments per post (``|C(b_i, d_k)|`` of Eq. 3),
- total comments per commenter (``TC(b_j)`` of Eq. 3),
- link adjacency (the GL graph of Eq. 1).

The corpus is append-only while building and is usually constructed via
:class:`repro.data.builders.CorpusBuilder`; ``validate()`` (called by
``freeze()``) checks referential integrity once instead of on every
lookup.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.data.entities import Blogger, Comment, Link, Post
from repro.errors import CorpusError

__all__ = ["BlogCorpus", "CorpusStats"]


class CorpusStats:
    """Summary statistics of a corpus, printed by tools and benches."""

    def __init__(self, corpus: "BlogCorpus") -> None:
        self.num_bloggers = len(corpus.bloggers)
        self.num_posts = len(corpus.posts)
        self.num_comments = len(corpus.comments)
        self.num_links = len(corpus.links)
        self.posts_per_blogger = (
            self.num_posts / self.num_bloggers if self.num_bloggers else 0.0
        )
        self.comments_per_post = (
            self.num_comments / self.num_posts if self.num_posts else 0.0
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CorpusStats(bloggers={self.num_bloggers}, posts={self.num_posts}, "
            f"comments={self.num_comments}, links={self.num_links})"
        )


class BlogCorpus:
    """An indexed collection of bloggers, posts, comments and links.

    Entities may be added in any order; referential integrity is checked
    by :meth:`validate` / :meth:`freeze`, so a crawler can stream pages
    in whatever order the frontier yields them.

    Examples
    --------
    >>> corpus = BlogCorpus()
    >>> corpus.add_blogger(Blogger("amery"))
    >>> corpus.add_post(Post("p1", "amery", body="hello world"))
    >>> corpus.freeze()
    >>> corpus.posts_by("amery")[0].post_id
    'p1'
    """

    def __init__(self) -> None:
        self._bloggers: dict[str, Blogger] = {}
        self._posts: dict[str, Post] = {}
        self._comments: dict[str, Comment] = {}
        self._links: list[Link] = []
        self._link_keys: set[tuple[str, str]] = set()
        self._posts_by_author: dict[str, list[Post]] = defaultdict(list)
        self._comments_on_post: dict[str, list[Comment]] = defaultdict(list)
        self._comments_by_commenter: dict[str, list[Comment]] = defaultdict(list)
        self._out_links: dict[str, list[Link]] = defaultdict(list)
        self._in_links: dict[str, list[Link]] = defaultdict(list)
        self._frozen = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _check_mutable(self) -> None:
        if self._frozen:
            raise CorpusError("corpus is frozen; build a new one to modify")

    def add_blogger(self, blogger: Blogger) -> None:
        """Register a blogger; duplicate ids are rejected."""
        self._check_mutable()
        if blogger.blogger_id in self._bloggers:
            raise CorpusError(f"duplicate blogger id {blogger.blogger_id!r}")
        self._bloggers[blogger.blogger_id] = blogger

    def add_post(self, post: Post) -> None:
        """Register a post; duplicate ids are rejected."""
        self._check_mutable()
        if post.post_id in self._posts:
            raise CorpusError(f"duplicate post id {post.post_id!r}")
        self._posts[post.post_id] = post
        self._posts_by_author[post.author_id].append(post)

    def add_comment(self, comment: Comment) -> None:
        """Register a comment; duplicate ids are rejected."""
        self._check_mutable()
        if comment.comment_id in self._comments:
            raise CorpusError(f"duplicate comment id {comment.comment_id!r}")
        self._comments[comment.comment_id] = comment
        self._comments_on_post[comment.post_id].append(comment)
        self._comments_by_commenter[comment.commenter_id].append(comment)

    def add_link(self, link: Link) -> None:
        """Register a blogger-to-blogger link; parallel links merge weight."""
        self._check_mutable()
        key = (link.source_id, link.target_id)
        if key in self._link_keys:
            # Parallel links add up: two endorsements count double.
            for i, existing in enumerate(self._links):
                if (existing.source_id, existing.target_id) == key:
                    merged = Link(link.source_id, link.target_id,
                                  existing.weight + link.weight)
                    self._links[i] = merged
                    self._rebuild_link_index()
                    return
        self._link_keys.add(key)
        self._links.append(link)
        self._out_links[link.source_id].append(link)
        self._in_links[link.target_id].append(link)

    def _rebuild_link_index(self) -> None:
        self._out_links = defaultdict(list)
        self._in_links = defaultdict(list)
        for link in self._links:
            self._out_links[link.source_id].append(link)
            self._in_links[link.target_id].append(link)

    def extend(
        self,
        bloggers: Iterable[Blogger] = (),
        posts: Iterable[Post] = (),
        comments: Iterable[Comment] = (),
        links: Iterable[Link] = (),
    ) -> None:
        """Bulk-add entities of each kind."""
        for blogger in bloggers:
            self.add_blogger(blogger)
        for post in posts:
            self.add_post(post)
        for comment in comments:
            self.add_comment(comment)
        for link in links:
            self.add_link(link)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check referential integrity; raise :class:`CorpusError` if broken."""
        for post in self._posts.values():
            if post.author_id not in self._bloggers:
                raise CorpusError(
                    f"post {post.post_id!r} authored by unknown blogger "
                    f"{post.author_id!r}"
                )
        for comment in self._comments.values():
            if comment.post_id not in self._posts:
                raise CorpusError(
                    f"comment {comment.comment_id!r} targets unknown post "
                    f"{comment.post_id!r}"
                )
            if comment.commenter_id not in self._bloggers:
                raise CorpusError(
                    f"comment {comment.comment_id!r} written by unknown blogger "
                    f"{comment.commenter_id!r}"
                )
        for link in self._links:
            for endpoint in (link.source_id, link.target_id):
                if endpoint not in self._bloggers:
                    raise CorpusError(
                        f"link ({link.source_id!r} -> {link.target_id!r}) "
                        f"references unknown blogger {endpoint!r}"
                    )

    def freeze(self) -> "BlogCorpus":
        """Validate and mark the corpus read-only.  Returns ``self``."""
        self.validate()
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def bloggers(self) -> dict[str, Blogger]:
        """Bloggers by id (do not mutate)."""
        return self._bloggers

    @property
    def posts(self) -> dict[str, Post]:
        """Posts by id (do not mutate)."""
        return self._posts

    @property
    def comments(self) -> dict[str, Comment]:
        """Comments by id (do not mutate)."""
        return self._comments

    @property
    def links(self) -> list[Link]:
        """All blogger-to-blogger links (do not mutate)."""
        return self._links

    def blogger(self, blogger_id: str) -> Blogger:
        """Fetch one blogger or raise :class:`CorpusError`."""
        try:
            return self._bloggers[blogger_id]
        except KeyError:
            raise CorpusError(f"unknown blogger {blogger_id!r}") from None

    def post(self, post_id: str) -> Post:
        """Fetch one post or raise :class:`CorpusError`."""
        try:
            return self._posts[post_id]
        except KeyError:
            raise CorpusError(f"unknown post {post_id!r}") from None

    def posts_by(self, blogger_id: str) -> list[Post]:
        """All posts written by a blogger (``P(b_i)``), possibly empty."""
        return list(self._posts_by_author.get(blogger_id, ()))

    def comments_on(self, post_id: str) -> list[Comment]:
        """All comments on a post (``C(b_i, d_k)``), possibly empty."""
        return list(self._comments_on_post.get(post_id, ()))

    def comments_by(self, blogger_id: str) -> list[Comment]:
        """All comments written by a blogger, possibly empty."""
        return list(self._comments_by_commenter.get(blogger_id, ()))

    def total_comments_by(self, blogger_id: str) -> int:
        """``TC(b_j)``: total number of comments blogger j has written."""
        return len(self._comments_by_commenter.get(blogger_id, ()))

    def out_links(self, blogger_id: str) -> list[Link]:
        """Links the blogger makes to others."""
        return list(self._out_links.get(blogger_id, ()))

    def in_links(self, blogger_id: str) -> list[Link]:
        """Links others make to the blogger."""
        return list(self._in_links.get(blogger_id, ()))

    def blogger_ids(self) -> list[str]:
        """All blogger ids in deterministic (sorted) order."""
        return sorted(self._bloggers)

    def stats(self) -> CorpusStats:
        """Summary counts for reporting."""
        return CorpusStats(self)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def subset(self, blogger_ids: Iterable[str]) -> "BlogCorpus":
        """Induced sub-corpus on a blogger set.

        Keeps the posts of retained bloggers, comments written *by*
        retained bloggers *on* retained posts, and links with both
        endpoints retained.  Used by the demo's "find influencers in my
        friend network" mode.
        """
        keep = set(blogger_ids)
        unknown = keep - set(self._bloggers)
        if unknown:
            raise CorpusError(f"subset references unknown bloggers: {sorted(unknown)}")
        sub = BlogCorpus()
        for blogger_id in sorted(keep):
            sub.add_blogger(self._bloggers[blogger_id])
        for post in sorted(self._posts.values(), key=lambda p: p.post_id):
            if post.author_id in keep:
                sub.add_post(post)
        for comment in sorted(self._comments.values(), key=lambda c: c.comment_id):
            if comment.commenter_id in keep and comment.post_id in sub._posts:
                sub.add_comment(comment)
        for link in self._links:
            if link.source_id in keep and link.target_id in keep:
                sub.add_link(link)
        return sub

    def time_slice(self, start_day: int, end_day: int) -> "BlogCorpus":
        """The corpus restricted to activity in ``[start_day, end_day)``.

        Keeps every blogger and every (undated) link, but only posts
        created in the window and comments written in the window on
        those posts.  This is how "recent posts" analyses (the paper
        crawls "40000 recent posts") and influence trajectories slice
        the data.
        """
        if end_day <= start_day:
            raise CorpusError(
                f"empty window: start_day={start_day} end_day={end_day}"
            )
        sliced = BlogCorpus()
        for blogger_id in self.blogger_ids():
            sliced.add_blogger(self._bloggers[blogger_id])
        kept_posts = set()
        for post in sorted(self._posts.values(), key=lambda p: p.post_id):
            if start_day <= post.created_day < end_day:
                sliced.add_post(post)
                kept_posts.add(post.post_id)
        for comment in sorted(self._comments.values(),
                              key=lambda c: c.comment_id):
            if (
                comment.post_id in kept_posts
                and start_day <= comment.created_day < end_day
            ):
                sliced.add_comment(comment)
        for link in self._links:
            sliced.add_link(link)
        return sliced

    def __len__(self) -> int:
        return len(self._bloggers)

    def __iter__(self) -> Iterator[Blogger]:
        for blogger_id in self.blogger_ids():
            yield self._bloggers[blogger_id]

    def __contains__(self, blogger_id: object) -> bool:
        return blogger_id in self._bloggers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (
            f"BlogCorpus(bloggers={stats.num_bloggers}, posts={stats.num_posts}, "
            f"comments={stats.num_comments}, links={stats.num_links}, "
            f"frozen={self._frozen})"
        )
