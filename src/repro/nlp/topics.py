"""Automatic domain discovery (the paper's "[6]" plug-in point).

Section II: "The domains can be predefined by the business applications
or automatically discovered using existing topic discovery techniques
[6]."  This module provides that second mode: a from-scratch spherical
k-means over TF-IDF vectors that clusters posts into topics, names each
topic by its top centroid terms, and emits seed vocabularies that plug
straight into :class:`repro.core.model.MassModel` — so the whole MASS
pipeline can run with zero predefined domain knowledge.

Implementation notes
--------------------
- Vectors are L2-normalized sparse dicts; similarity is cosine, so
  k-means reduces to maximizing dot products ("spherical" k-means).
- Initialization is k-means++ style with a seeded RNG; all iteration is
  in sorted order, so discovery is deterministic.
- Centroids are truncated to their heaviest terms each round, keeping
  iterations fast on blog-scale corpora.
- Empty clusters are reseeded to the document farthest from its
  centroid.
"""

from __future__ import annotations

import random
from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ClassifierError
from repro.nlp.vectorize import TfidfVectorizer, dot_product, normalize, top_terms

__all__ = ["DiscoveredDomains", "discover_domains"]


@dataclass(frozen=True, slots=True)
class DiscoveredDomains:
    """The output of topic discovery.

    Attributes
    ----------
    names:
        Topic names, derived from the top centroid terms
        (e.g. ``"stadium-match-league"``).
    assignments:
        Cluster index per input text (parallel to the input order).
    centroid_terms:
        Per topic, the (term, weight) list describing it.
    inertia:
        Mean cosine similarity of documents to their centroid — higher
        is tighter clustering.
    """

    names: list[str]
    assignments: list[int]
    centroid_terms: list[list[tuple[str, float]]]
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        """Number of discovered topics."""
        return len(self.names)

    def seed_vocabularies(self, terms_per_domain: int = 25) -> dict[str, list[str]]:
        """Per-topic seed word lists, ready for ``MassModel``.

        >>> domains = discover_domains(texts, k=10)      # doctest: +SKIP
        >>> MassModel(domain_seed_words=domains.seed_vocabularies())  # doctest: +SKIP
        """
        if terms_per_domain < 1:
            raise ClassifierError(
                f"terms_per_domain must be >= 1, got {terms_per_domain}"
            )
        return {
            name: [term for term, _ in terms[:terms_per_domain]]
            for name, terms in zip(self.names, self.centroid_terms)
        }

    def cluster_sizes(self) -> list[int]:
        """Documents per topic."""
        sizes = [0] * self.k
        for cluster in self.assignments:
            sizes[cluster] += 1
        return sizes


def _truncate(vector: dict[str, float], size: int) -> dict[str, float]:
    if len(vector) <= size:
        return vector
    return dict(top_terms(vector, size))


def _mean_centroid(
    vectors: Sequence[dict[str, float]], members: Sequence[int], size: int
) -> dict[str, float]:
    accumulator: dict[str, float] = defaultdict(float)
    for index in members:
        for term, weight in vectors[index].items():
            accumulator[term] += weight
    return _truncate(normalize(accumulator), size)


def discover_domains(
    texts: Sequence[str],
    k: int = 10,
    seed: int = 0,
    max_iterations: int = 30,
    centroid_terms: int = 200,
    name_terms: int = 3,
) -> DiscoveredDomains:
    """Cluster ``texts`` into ``k`` topics by spherical k-means.

    Parameters
    ----------
    texts:
        The post texts (title + body) to cluster.
    k:
        Number of topics; must not exceed the number of non-empty texts.
    seed:
        Seeds the k-means++ initialization.
    max_iterations:
        Reassignment rounds; stops early at a fixed point.
    centroid_terms:
        Centroids are truncated to this many heaviest terms per round.
    name_terms:
        How many top terms form each topic's name.

    Raises :class:`ClassifierError` on degenerate input.
    """
    if k < 2:
        raise ClassifierError(f"k must be >= 2, got {k}")
    if max_iterations < 1:
        raise ClassifierError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    if not texts:
        raise ClassifierError("cannot discover domains from zero texts")

    vectorizer = TfidfVectorizer()
    vectorizer.fit(list(texts))
    vectors = [vectorizer.transform(text) for text in texts]
    usable = [index for index, vector in enumerate(vectors) if vector]
    if len(usable) < k:
        raise ClassifierError(
            f"need at least {k} non-empty texts, got {len(usable)}"
        )

    # --- k-means++ initialization ------------------------------------
    rng = random.Random(seed)
    first = usable[rng.randrange(len(usable))]
    centroids = [dict(vectors[first])]
    while len(centroids) < k:
        # Distance = 1 - best cosine to any chosen centroid.
        distances = []
        for index in usable:
            best = max(
                dot_product(vectors[index], centroid)
                for centroid in centroids
            )
            distances.append(max(0.0, 1.0 - best) ** 2)
        total = sum(distances)
        if total == 0.0:
            # All documents identical to centroids: spread arbitrarily.
            pick = usable[rng.randrange(len(usable))]
        else:
            threshold = rng.random() * total
            running = 0.0
            pick = usable[-1]
            for index, distance in zip(usable, distances):
                running += distance
                if running >= threshold:
                    pick = index
                    break
        centroids.append(dict(vectors[pick]))

    # --- Lloyd iterations ---------------------------------------------
    assignments = [-1] * len(vectors)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        changed = False
        members: list[list[int]] = [[] for _ in range(k)]
        similarity_sum = 0.0
        for index, vector in enumerate(vectors):
            if not vector:
                best_cluster = 0
                best_similarity = 0.0
            else:
                best_cluster = 0
                best_similarity = -1.0
                for cluster, centroid in enumerate(centroids):
                    similarity = dot_product(vector, centroid)
                    if similarity > best_similarity:
                        best_similarity = similarity
                        best_cluster = cluster
            if assignments[index] != best_cluster:
                changed = True
                assignments[index] = best_cluster
            members[best_cluster].append(index)
            similarity_sum += max(best_similarity, 0.0)

        # Recompute centroids; reseed empty clusters.
        for cluster in range(k):
            if members[cluster]:
                centroids[cluster] = _mean_centroid(
                    vectors, members[cluster], centroid_terms
                )
            else:
                farthest = min(
                    usable,
                    key=lambda index: dot_product(
                        vectors[index], centroids[assignments[index]]
                    ),
                )
                centroids[cluster] = dict(vectors[farthest])
                changed = True
        if not changed:
            break

    inertia = similarity_sum / len(vectors)
    terms = [top_terms(centroid, 50) for centroid in centroids]
    names = []
    seen: set[str] = set()
    for cluster_terms in terms:
        name = "-".join(term for term, _ in cluster_terms[:name_terms])
        if not name:
            name = "empty"
        while name in seen:
            name += "+"
        seen.add(name)
        names.append(name)
    return DiscoveredDomains(
        names=names,
        assignments=assignments,
        centroid_terms=terms,
        inertia=inertia,
        iterations=iterations,
    )
