"""Lexicon-based comment sentiment — the attitude facet of MASS.

The paper classifies each comment as positive, negative or neutral and
maps the classes to sentiment factors SF = 1.0 / 0.1 / 0.5 (the factor
mapping itself lives in :class:`repro.core.parameters.MassParameters`;
this module only decides the class).

The classifier counts polarity hits from the built-in lexicons with a
small negation window: a polar word preceded (within two tokens, where
intensifiers do not break the window) by a negator contributes to the
*opposite* polarity.  Ties and hit-free comments are neutral, matching
the paper's "otherwise" rule.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass

from repro.nlp import lexicons
from repro.nlp.tokenize import tokenize

__all__ = ["Sentiment", "SentimentBreakdown", "SentimentClassifier"]


class Sentiment(enum.Enum):
    """The three comment attitudes of Section II."""

    POSITIVE = "positive"
    NEGATIVE = "negative"
    NEUTRAL = "neutral"


@dataclass(frozen=True, slots=True)
class SentimentBreakdown:
    """Diagnostic output of one classification."""

    sentiment: Sentiment
    positive_hits: int
    negative_hits: int
    tokens: int


class SentimentClassifier:
    """Classify comment text into positive / negative / neutral.

    Parameters
    ----------
    positive_words / negative_words:
        Polarity lexicons; default to the built-ins, which include the
        paper's exemplars ("agree", "support", "conform").
    negation_window:
        How many tokens back a negator reaches.  Intensifiers ("really",
        "very") do not consume window slots.
    """

    def __init__(
        self,
        positive_words: Iterable[str] | None = None,
        negative_words: Iterable[str] | None = None,
        negation_window: int = 2,
    ) -> None:
        if negation_window < 0:
            raise ValueError(f"negation_window must be >= 0, got {negation_window}")
        self._positive = frozenset(
            lexicons.POSITIVE_WORDS if positive_words is None else positive_words
        )
        self._negative = frozenset(
            lexicons.NEGATIVE_WORDS if negative_words is None else negative_words
        )
        overlap = self._positive & self._negative
        if overlap:
            raise ValueError(
                f"words cannot be both positive and negative: {sorted(overlap)[:5]}"
            )
        self._window = negation_window

    def _is_negated(self, tokens: list[str], index: int) -> bool:
        """Whether the polar word at ``index`` sits in a negation scope."""
        seen = 0
        position = index - 1
        while position >= 0 and seen < self._window:
            token = tokens[position]
            if token in lexicons.NEGATION_WORDS:
                return True
            if token not in lexicons.INTENSIFIER_WORDS:
                seen += 1
            position -= 1
        return False

    def analyze(self, text: str) -> SentimentBreakdown:
        """Classify ``text`` and return the full hit breakdown."""
        tokens = tokenize(text)
        positive_hits = 0
        negative_hits = 0
        for index, token in enumerate(tokens):
            if token in self._positive:
                if self._is_negated(tokens, index):
                    negative_hits += 1
                else:
                    positive_hits += 1
            elif token in self._negative:
                if self._is_negated(tokens, index):
                    positive_hits += 1
                else:
                    negative_hits += 1
        if positive_hits > negative_hits:
            sentiment = Sentiment.POSITIVE
        elif negative_hits > positive_hits:
            sentiment = Sentiment.NEGATIVE
        else:
            sentiment = Sentiment.NEUTRAL
        return SentimentBreakdown(sentiment, positive_hits, negative_hits, len(tokens))

    def classify(self, text: str) -> Sentiment:
        """Classify ``text``; the common entry point."""
        return self.analyze(text).sentiment
