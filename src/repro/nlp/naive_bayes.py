"""Multinomial naive Bayes text classifier, from scratch.

This is the Post Analyzer's engine: "MASS automatically analyzes the
posts and generates a iv(b_i, d_k, C_t) using naive Bayesian method".
``predict_proba`` returns the posterior P(C_t | d_k) over the
predefined domains — exactly the ``iv`` membership vector of Eq. 5.

Implementation notes
--------------------
- Multinomial event model with Laplace (add-``smoothing``) smoothing.
- All arithmetic in log space; posteriors normalized with log-sum-exp.
- Tokens never seen in training are skipped at prediction time (they
  carry no class signal and would only flatten posteriors).
- ``NaiveBayesClassifier.from_seed_vocabulary`` trains on per-domain
  seed word lists as pseudo-documents, supporting the paper's
  "predefined by the business applications" domain mode when no
  labelled posts exist.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import ClassifierError
from repro.nlp.stopwords import remove_stopwords
from repro.nlp.tokenize import tokenize

__all__ = ["NaiveBayesClassifier"]


class NaiveBayesClassifier:
    """Multinomial naive Bayes over bag-of-words features.

    Parameters
    ----------
    smoothing:
        Laplace smoothing constant added to every word count (> 0).
    use_stopwords:
        Drop stopwords from features (default True).

    Examples
    --------
    >>> clf = NaiveBayesClassifier()
    >>> clf.fit(["the marathon race", "the stock market"], ["Sports", "Economics"])
    >>> clf.predict("a new marathon record")
    'Sports'
    """

    def __init__(self, smoothing: float = 1.0, use_stopwords: bool = True) -> None:
        if smoothing <= 0:
            raise ClassifierError(f"smoothing must be > 0, got {smoothing}")
        self._smoothing = smoothing
        self._use_stopwords = use_stopwords
        self._class_log_prior: dict[str, float] = {}
        self._word_log_prob: dict[str, dict[str, float]] = {}
        self._vocabulary: set[str] = set()
        self._trained = False

    # ------------------------------------------------------------------
    def _features(self, text: str) -> list[str]:
        tokens = tokenize(text)
        if self._use_stopwords:
            tokens = remove_stopwords(tokens)
        return tokens

    @property
    def classes(self) -> list[str]:
        """Trained class labels in sorted order."""
        self._require_trained()
        return sorted(self._class_log_prior)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct feature words seen in training."""
        self._require_trained()
        return len(self._vocabulary)

    def _require_trained(self) -> None:
        if not self._trained:
            raise ClassifierError("classifier is not trained; call fit() first")

    # ------------------------------------------------------------------
    def fit(
        self, texts: Sequence[str], labels: Sequence[str]
    ) -> "NaiveBayesClassifier":
        """Train on parallel sequences of texts and class labels."""
        if len(texts) != len(labels):
            raise ClassifierError(
                f"got {len(texts)} texts but {len(labels)} labels"
            )
        if not texts:
            raise ClassifierError("cannot train on an empty corpus")

        class_doc_counts: Counter[str] = Counter(labels)
        if len(class_doc_counts) < 2:
            raise ClassifierError(
                f"need at least 2 classes, got {sorted(class_doc_counts)}"
            )

        word_counts: dict[str, Counter[str]] = defaultdict(Counter)
        for text, label in zip(texts, labels):
            word_counts[label].update(self._features(text))

        vocabulary: set[str] = set()
        for counter in word_counts.values():
            vocabulary.update(counter)
        if not vocabulary:
            raise ClassifierError("training corpus has no usable tokens")

        total_docs = len(texts)
        self._class_log_prior = {
            label: math.log(count / total_docs)
            for label, count in class_doc_counts.items()
        }
        self._word_log_prob = {}
        vocab_size = len(vocabulary)
        for label in class_doc_counts:
            counter = word_counts[label]
            total = sum(counter.values()) + self._smoothing * vocab_size
            self._word_log_prob[label] = {
                word: math.log((counter.get(word, 0) + self._smoothing) / total)
                for word in vocabulary
            }
        self._vocabulary = vocabulary
        self._trained = True
        return self

    @classmethod
    def from_seed_vocabulary(
        cls,
        seed_words: Mapping[str, Iterable[str]],
        smoothing: float = 1.0,
    ) -> "NaiveBayesClassifier":
        """Train from per-class seed word lists (one pseudo-doc per class).

        Every class gets a uniform prior; the likelihoods come from the
        seed vocabulary, so classification reduces to smoothed seed-word
        overlap.  This is how MASS bootstraps "predefined" domains.
        """
        texts = []
        labels = []
        for label in sorted(seed_words):
            words = list(seed_words[label])
            if not words:
                raise ClassifierError(f"seed vocabulary for {label!r} is empty")
            texts.append(" ".join(words))
            labels.append(label)
        classifier = cls(smoothing=smoothing, use_stopwords=False)
        classifier.fit(texts, labels)
        return classifier

    # ------------------------------------------------------------------
    def log_posteriors(self, text: str) -> dict[str, float]:
        """Unnormalized log posterior per class for ``text``."""
        self._require_trained()
        features = [t for t in self._features(text) if t in self._vocabulary]
        scores: dict[str, float] = {}
        for label, log_prior in self._class_log_prior.items():
            word_probs = self._word_log_prob[label]
            scores[label] = log_prior + sum(word_probs[t] for t in features)
        return scores

    def predict_proba(self, text: str) -> dict[str, float]:
        """Posterior P(class | text), normalized to sum to 1.

        A text with no in-vocabulary tokens falls back to the class
        priors — the least-wrong answer for contentless input.
        """
        scores = self.log_posteriors(text)
        peak = max(scores.values())
        exp_scores = {label: math.exp(s - peak) for label, s in scores.items()}
        total = sum(exp_scores.values())
        return {label: value / total for label, value in exp_scores.items()}

    def predict(self, text: str) -> str:
        """Most probable class for ``text`` (ties break alphabetically)."""
        probabilities = self.predict_proba(text)
        return max(sorted(probabilities), key=lambda label: probabilities[label])

    def score(self, texts: Sequence[str], labels: Sequence[str]) -> float:
        """Accuracy on a labelled evaluation set."""
        if len(texts) != len(labels):
            raise ClassifierError(
                f"got {len(texts)} texts but {len(labels)} labels"
            )
        if not texts:
            raise ClassifierError("cannot score an empty evaluation set")
        hits = sum(
            1 for text, label in zip(texts, labels) if self.predict(text) == label
        )
        return hits / len(texts)
