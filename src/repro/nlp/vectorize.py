"""Bag-of-words and TF-IDF vectorization.

Used by the interest miner (keyword mode) and available as a general
substrate.  Vectors are plain ``dict[str, float]`` keyed by word — at
blogosphere scale (tens of thousands of short documents) sparse dicts
are simpler and fast enough, and they keep the public API free of
array-shape bookkeeping.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Mapping, Sequence

from repro.nlp.stopwords import remove_stopwords
from repro.nlp.tokenize import tokenize

__all__ = [
    "bag_of_words",
    "term_frequencies",
    "cosine_similarity",
    "dot_product",
    "normalize",
    "TfidfVectorizer",
]


def bag_of_words(text: str, use_stopwords: bool = True) -> Counter[str]:
    """Raw token counts of ``text``."""
    tokens = tokenize(text)
    if use_stopwords:
        tokens = remove_stopwords(tokens)
    return Counter(tokens)


def term_frequencies(text: str, use_stopwords: bool = True) -> dict[str, float]:
    """Relative token frequencies of ``text`` (sum to 1 if non-empty)."""
    counts = bag_of_words(text, use_stopwords=use_stopwords)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {word: count / total for word, count in counts.items()}


def dot_product(left: Mapping[str, float], right: Mapping[str, float]) -> float:
    """Sparse dot product of two word vectors."""
    if len(left) > len(right):
        left, right = right, left
    return sum(value * right.get(word, 0.0) for word, value in left.items())


def normalize(vector: Mapping[str, float]) -> dict[str, float]:
    """L2-normalize a sparse vector; the zero vector stays zero."""
    norm = math.sqrt(sum(value * value for value in vector.values()))
    if norm == 0.0:
        return dict(vector)
    return {word: value / norm for word, value in vector.items()}


def cosine_similarity(left: Mapping[str, float], right: Mapping[str, float]) -> float:
    """Cosine of the angle between two sparse vectors (0 for zero vectors).

    Norms are checked before dividing: values tiny enough that their
    squares underflow to zero are treated as zero vectors.
    """
    left_norm = math.sqrt(sum(v * v for v in left.values()))
    right_norm = math.sqrt(sum(v * v for v in right.values()))
    denominator = left_norm * right_norm
    if denominator == 0.0:
        return 0.0
    return dot_product(left, right) / denominator


class TfidfVectorizer:
    """TF-IDF weighting fitted on a document collection.

    IDF uses the smoothed form ``log((1 + N) / (1 + df)) + 1`` so terms
    present in every document keep a small positive weight and unseen
    terms are well-defined at transform time (df = 0).
    """

    def __init__(self, use_stopwords: bool = True) -> None:
        self._use_stopwords = use_stopwords
        self._idf: dict[str, float] = {}
        self._num_documents = 0

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._num_documents > 0

    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        """Learn IDF weights from ``documents``."""
        if not documents:
            raise ValueError("cannot fit TfidfVectorizer on zero documents")
        document_frequency: Counter[str] = Counter()
        for document in documents:
            document_frequency.update(
                set(bag_of_words(document, self._use_stopwords))
            )
        self._num_documents = len(documents)
        self._idf = {
            word: math.log((1 + self._num_documents) / (1 + df)) + 1.0
            for word, df in document_frequency.items()
        }
        return self

    def idf(self, word: str) -> float:
        """IDF weight of ``word`` (maximal for unseen words)."""
        if not self.fitted:
            raise ValueError("TfidfVectorizer is not fitted")
        default = math.log(1 + self._num_documents) + 1.0
        return self._idf.get(word, default)

    def transform(self, text: str) -> dict[str, float]:
        """L2-normalized TF-IDF vector of ``text``."""
        if not self.fitted:
            raise ValueError("TfidfVectorizer is not fitted")
        tf = term_frequencies(text, self._use_stopwords)
        weighted = {word: freq * self.idf(word) for word, freq in tf.items()}
        return normalize(weighted)

    def fit_transform(self, documents: Sequence[str]) -> list[dict[str, float]]:
        """Fit on ``documents`` and return their vectors."""
        self.fit(documents)
        return [self.transform(document) for document in documents]


def top_terms(vector: Mapping[str, float], k: int = 10) -> list[tuple[str, float]]:
    """The ``k`` highest-weight terms of a vector, ties alphabetical."""
    return sorted(vector.items(), key=lambda item: (-item[1], item[0]))[:k]


__all__.append("top_terms")
