"""Text-analysis substrate: tokenization, sentiment, classification."""

from repro.nlp.interest import InterestMiner, InterestVector
from repro.nlp.naive_bayes import NaiveBayesClassifier
from repro.nlp.sentiment import Sentiment, SentimentBreakdown, SentimentClassifier
from repro.nlp.tokenize import ngrams, sentences, shingles, tokenize, word_count
from repro.nlp.topics import DiscoveredDomains, discover_domains
from repro.nlp.vectorize import (
    TfidfVectorizer,
    bag_of_words,
    cosine_similarity,
    dot_product,
    normalize,
    term_frequencies,
    top_terms,
)

__all__ = [
    "tokenize",
    "word_count",
    "sentences",
    "ngrams",
    "shingles",
    "Sentiment",
    "SentimentBreakdown",
    "SentimentClassifier",
    "NaiveBayesClassifier",
    "TfidfVectorizer",
    "bag_of_words",
    "term_frequencies",
    "cosine_similarity",
    "dot_product",
    "normalize",
    "top_terms",
    "InterestVector",
    "InterestMiner",
    "discover_domains",
    "DiscoveredDomains",
]
