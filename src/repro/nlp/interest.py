"""Interest-vector mining from advertisements and user profiles.

Scenario 1 of the paper mines "the interest vector from a user-input
advertisement a_l, denoted as iv(a_l)"; Scenario 2 extracts "the domain
interest information from the profile" of a new user.  Both produce the
same artifact: a distribution over the predefined domains, which the
applications dot against bloggers' domain-influence vectors.

Two mining strategies are provided:

- ``classifier`` (default): the posterior of the Post Analyzer's naive
  Bayes classifier on the input text — consistent with how posts
  themselves are assigned to domains;
- ``keyword``: cosine similarity between the text and each domain's
  seed vocabulary, useful before any classifier is trained.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import ClassifierError
from repro.nlp.naive_bayes import NaiveBayesClassifier
from repro.nlp.vectorize import cosine_similarity, term_frequencies

__all__ = ["InterestVector", "InterestMiner"]


class InterestVector(dict):
    """A normalized distribution of interest over domains.

    Behaves as a ``dict[str, float]``; missing domains read as 0.
    """

    def __missing__(self, key: str) -> float:
        return 0.0

    @classmethod
    def from_weights(cls, weights: Mapping[str, float]) -> "InterestVector":
        """Build from non-negative weights, normalizing to sum 1.

        All-zero (or empty) weights produce a uniform distribution —
        the only unbiased reading of a contentless ad or profile.
        """
        if any(value < 0 for value in weights.values()):
            negative = {d: v for d, v in weights.items() if v < 0}
            raise ValueError(f"interest weights must be >= 0, got {negative}")
        total = sum(weights.values())
        if total == 0:
            if not weights:
                raise ValueError("cannot build an interest vector over no domains")
            uniform = 1.0 / len(weights)
            return cls({domain: uniform for domain in weights})
        return cls({domain: value / total for domain, value in weights.items()})

    @classmethod
    def single_domain(cls, domain: str, all_domains: list[str]) -> "InterestVector":
        """A point mass on one domain (the Fig. 3 dropdown mode)."""
        if domain not in all_domains:
            raise ValueError(f"unknown domain {domain!r}; known: {all_domains}")
        return cls({d: 1.0 if d == domain else 0.0 for d in all_domains})

    def top_domains(self, k: int = 3) -> list[tuple[str, float]]:
        """The ``k`` most-weighted domains, ties alphabetical."""
        return sorted(self.items(), key=lambda item: (-item[1], item[0]))[:k]

    def dominant_domain(self) -> str:
        """The single most-weighted domain."""
        if not self:
            raise ValueError("empty interest vector")
        return self.top_domains(1)[0][0]


class InterestMiner:
    """Mine :class:`InterestVector` s from free text.

    Parameters
    ----------
    classifier:
        A trained :class:`NaiveBayesClassifier` over the domain set.
    domain_vocabularies:
        Optional per-domain seed word lists enabling the ``keyword``
        strategy.
    """

    def __init__(
        self,
        classifier: NaiveBayesClassifier,
        domain_vocabularies: Mapping[str, list[str]] | None = None,
    ) -> None:
        self._classifier = classifier
        self._domains = classifier.classes
        self._vocab_vectors: dict[str, dict[str, float]] = {}
        if domain_vocabularies is not None:
            missing = set(self._domains) - set(domain_vocabularies)
            if missing:
                raise ClassifierError(
                    f"domain vocabularies missing for: {sorted(missing)}"
                )
            self._vocab_vectors = {
                domain: term_frequencies(" ".join(words), use_stopwords=False)
                for domain, words in domain_vocabularies.items()
            }

    @property
    def domains(self) -> list[str]:
        """The domain set interest vectors range over."""
        return list(self._domains)

    def mine(self, text: str, strategy: str = "classifier") -> InterestVector:
        """Mine the interest vector of ``text``.

        ``strategy`` is ``"classifier"`` (naive Bayes posterior) or
        ``"keyword"`` (seed-vocabulary cosine).
        """
        if strategy == "classifier":
            return InterestVector.from_weights(self._classifier.predict_proba(text))
        if strategy == "keyword":
            if not self._vocab_vectors:
                raise ClassifierError(
                    "keyword strategy requires domain_vocabularies"
                )
            text_vector = term_frequencies(text)
            weights = {
                domain: cosine_similarity(text_vector, vocab_vector)
                for domain, vocab_vector in self._vocab_vectors.items()
            }
            return InterestVector.from_weights(weights)
        raise ValueError(
            f"unknown strategy {strategy!r}; expected 'classifier' or 'keyword'"
        )

    def mine_advertisement(self, ad_text: str) -> InterestVector:
        """iv(a_l) for Scenario 1 — alias of :meth:`mine`."""
        return self.mine(ad_text)

    def mine_profile(self, profile_text: str) -> InterestVector:
        """Domain interests of a user profile for Scenario 2."""
        return self.mine(profile_text)
