"""Tokenization primitives shared by all text analysis in the library.

MASS analyzes English-language post/comment text with bag-of-words
methods (naive Bayes classification, lexicon sentiment, length-based
quality).  One tokenizer feeding every consumer keeps those components
consistent: "post length" in the quality score is the token count from
the same function the classifier uses.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator

__all__ = [
    "tokenize",
    "word_count",
    "sentences",
    "ngrams",
    "shingles",
]

_WORD_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")
_SENTENCE_RE = re.compile(r"[.!?]+(?:\s+|$)")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens of ``text``.

    Splits on anything that is not alphanumeric, keeps simple
    apostrophe contractions ("don't" -> ``don't``).

    >>> tokenize("I don't AGREE, sorry!")
    ["i", "don't", 'agree', 'sorry']
    """
    return _WORD_RE.findall(text.lower())


def word_count(text: str) -> int:
    """Number of word tokens in ``text`` — the Length() of Eq. 2."""
    return len(tokenize(text))


def sentences(text: str) -> list[str]:
    """Split ``text`` into sentences on terminal punctuation."""
    parts = [part.strip() for part in _SENTENCE_RE.split(text)]
    return [part for part in parts if part]


def ngrams(tokens: Iterable[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield contiguous ``n``-grams from a token sequence.

    >>> list(ngrams(["a", "b", "c"], 2))
    [('a', 'b'), ('b', 'c')]
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    window: list[str] = []
    for token in tokens:
        window.append(token)
        if len(window) == n:
            yield tuple(window)
            window.pop(0)


def shingles(text: str, k: int = 4) -> set[tuple[str, ...]]:
    """The set of ``k``-token shingles of a text.

    Used by the optional shingle-overlap copy detector (an extension of
    the paper's indicator-word novelty heuristic).
    """
    return set(ngrams(tokenize(text), k))
