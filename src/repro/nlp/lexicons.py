"""Word lists driving sentiment and novelty analysis.

The paper's attitude detector is lexicon-based: a comment is positive
if it "contain[s] positive words such as 'agree', 'support',
'conform'", negative analogously, neutral otherwise.  Its novelty
detector likewise keys on "a set of words indicating that an article is
a copy of other sources".  These lexicons are the library's built-in
defaults; both classifiers accept custom lists.
"""

from __future__ import annotations

__all__ = [
    "POSITIVE_WORDS",
    "NEGATIVE_WORDS",
    "NEGATION_WORDS",
    "INTENSIFIER_WORDS",
    "COPY_INDICATOR_PHRASES",
]

# The three exemplars from the paper come first; the rest round the
# lexicon out to realistic comment vocabulary.
POSITIVE_WORDS: frozenset[str] = frozenset(
    """
    agree support conform awesome amazing excellent great good nice love
    loved loving wonderful fantastic brilliant insightful helpful useful
    valuable inspiring inspiring thanks thank appreciated appreciate
    right correct true exactly definitely absolutely perfect superb
    outstanding impressive admire admirable enjoy enjoyed enjoyable
    favorite best better clever smart wise thoughtful informative clear
    convincing persuasive spot-on kudos bravo congrats congratulations
    like liked likes recommend recommended endorse endorsed praise
    praised beautiful elegant fresh original solid strong compelling
    fascinating interesting delightful glad happy pleased grateful
    """.split()
)

NEGATIVE_WORDS: frozenset[str] = frozenset(
    """
    disagree oppose object wrong incorrect false bad terrible awful
    horrible poor weak boring dull useless worthless misleading
    mistaken flawed nonsense rubbish garbage trash stupid silly dumb
    naive shallow lazy sloppy confusing confused unclear doubtful doubt
    dubious questionable unconvincing disappointing disappointed
    disappointing overrated biased unfair dishonest lie lies lying
    hate hated hateful dislike disliked annoying irritating offensive
    ridiculous absurd pathetic fail failed failure worse worst broken
    inaccurate exaggerated pointless waste regret sorry unfortunately
    """.split()
)

# Negators flip the polarity of the word that follows within a short
# window ("don't agree" must not read as positive).
NEGATION_WORDS: frozenset[str] = frozenset(
    """
    not no never don't doesn't didn't won't wouldn't can't cannot
    couldn't shouldn't isn't aren't wasn't weren't hardly barely without
    nobody nothing neither nor
    """.split()
)

# Intensifiers are recognized (and skipped) so negation windows reach
# across them: "not really agree".
INTENSIFIER_WORDS: frozenset[str] = frozenset(
    """
    very really quite so totally completely absolutely extremely rather
    pretty fairly somewhat just simply truly
    """.split()
)

# Phrases marking reproduced content; matching is on token sequences,
# lowercased.  A post containing any of these is treated as a copy
# (Novelty in (0, 0.1]) per Section II.
COPY_INDICATOR_PHRASES: tuple[str, ...] = (
    "reposted from",
    "repost from",
    "reprinted from",
    "copied from",
    "forwarded from",
    "originally posted",
    "originally published",
    "original source",
    "source link",
    "full article at",
    "read the original",
    "via rss",
    "crossposted from",
    "cross posted from",
    "syndicated from",
    "excerpt from",
    "quoted from",
    "courtesy of",
    "hat tip to",
    "all rights reserved by the original",
    "translation of",
    "reblogged from",
)
