"""The Table I experiment protocol.

"For the top 3 bloggers in the general and domain-specific list, we
send the URL of each blogger to the end users, and ask users to score
them from 1 to 5 ... The average scores of these systems obtained from
the user study, over Travel, Art and Sports domains, are shown in
Table I."

:class:`UserStudy` runs that protocol over any set of ranking systems:
each system contributes a top-k blogger list per evaluation domain (for
domain-blind systems the list is the same in every domain — that is
the point), and the simulated rater panel produces the average
applicable scores.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.synth.ground_truth import GroundTruth
from repro.userstudy.annotator import RaterPanelConfig, SimulatedRaterPanel

__all__ = ["StudyResult", "UserStudy", "TABLE1_DOMAINS"]

#: The three evaluation domains of Table I.
TABLE1_DOMAINS: tuple[str, ...] = ("Travel", "Art", "Sports")


@dataclass(slots=True)
class StudyResult:
    """Average applicable scores: system × domain."""

    domains: list[str]
    scores: dict[str, dict[str, float]] = field(default_factory=dict)
    lists: dict[str, dict[str, list[str]]] = field(default_factory=dict)

    def score(self, system: str, domain: str) -> float:
        """One cell of the table."""
        return self.scores[system][domain]

    def winner(self, domain: str) -> str:
        """The system with the highest average score in a domain."""
        return max(
            sorted(self.scores),
            key=lambda system: self.scores[system][domain],
        )

    def as_table(self) -> str:
        """Render the result in the shape of the paper's Table I."""
        width = max(len(system) for system in self.scores) + 2
        header = "Average Applicable Scores".ljust(width + 4) + "  ".join(
            f"{domain:>8}" for domain in self.domains
        )
        lines = [header]
        for system in self.scores:
            cells = "  ".join(
                f"{self.scores[system][domain]:8.1f}" for domain in self.domains
            )
            lines.append(system.ljust(width + 4) + cells)
        return "\n".join(lines)


class UserStudy:
    """Run the simulated Table I user study.

    Parameters
    ----------
    truth:
        Ground truth of the evaluated blogosphere (raters read off
        true applicability).
    domains:
        Evaluation domains; defaults to Travel, Art, Sports.
    k:
        List length per system per domain (paper: top 3).
    panel / seed:
        Rater panel configuration and reproducibility seed.
    """

    def __init__(
        self,
        truth: GroundTruth,
        domains: Sequence[str] = TABLE1_DOMAINS,
        k: int = 3,
        panel: RaterPanelConfig | None = None,
        seed: int = 0,
    ) -> None:
        unknown = set(domains) - set(truth.domains)
        if unknown:
            raise ParameterError(
                f"evaluation domains not in ground truth: {sorted(unknown)}"
            )
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self._truth = truth
        self._domains = list(domains)
        self._k = k
        self._panel = SimulatedRaterPanel(truth, panel, seed=seed)

    @property
    def k(self) -> int:
        """Recommendation list length."""
        return self._k

    def run(
        self, system_lists: Mapping[str, Mapping[str, list[str]]]
    ) -> StudyResult:
        """Score each system's per-domain top-k lists.

        ``system_lists`` maps system name → {domain → blogger ids}.  A
        domain-blind system simply supplies the same list under every
        domain key.  Lists longer than k are truncated; shorter lists
        are an error (the study requires k recommendations).
        """
        result = StudyResult(domains=list(self._domains))
        for system, per_domain in system_lists.items():
            missing = set(self._domains) - set(per_domain)
            if missing:
                raise ParameterError(
                    f"system {system!r} has no list for domains "
                    f"{sorted(missing)}"
                )
            result.scores[system] = {}
            result.lists[system] = {}
            for domain in self._domains:
                bloggers = list(per_domain[domain])[: self._k]
                if len(bloggers) < self._k:
                    raise ParameterError(
                        f"system {system!r} supplied only {len(bloggers)} "
                        f"bloggers for {domain!r}; need {self._k}"
                    )
                result.lists[system][domain] = bloggers
                result.scores[system][domain] = self._panel.average_score(
                    bloggers, domain
                )
        return result
