"""Statistical analysis of user-study results.

The paper reports Table I as bare means.  With a simulated panel we can
do what the paper could not: test whether the Domain-Specific advantage
is statistically significant.  This module implements a paired
permutation test on the per-judgement score matrix — the appropriate
test here because judgements are paired by rater (each rater scores
every system) and the score distribution is a 5-point ordinal, so
normality assumptions are off the table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.synth.ground_truth import GroundTruth
from repro.userstudy.annotator import RaterPanelConfig, SimulatedRaterPanel

__all__ = ["PairedComparison", "compare_systems", "paired_permutation_test"]


def paired_permutation_test(
    left: list[float],
    right: list[float],
    rounds: int = 10_000,
    seed: int = 0,
) -> float:
    """Two-sided p-value that paired samples share a mean.

    Under the null, each pair's assignment to (left, right) is a coin
    flip; the test permutes signs of the paired differences and counts
    how often the permuted |mean difference| reaches the observed one.
    The +1/+1 correction keeps the p-value away from an impossible 0.
    """
    if len(left) != len(right):
        raise ParameterError(
            f"paired samples differ in length: {len(left)} vs {len(right)}"
        )
    if not left:
        raise ParameterError("need at least one pair")
    if rounds < 1:
        raise ParameterError(f"rounds must be >= 1, got {rounds}")
    differences = [a - b for a, b in zip(left, right)]
    observed = abs(sum(differences) / len(differences))
    rng = random.Random(seed)
    hits = 0
    count = len(differences)
    for _ in range(rounds):
        total = 0.0
        for difference in differences:
            total += difference if rng.random() < 0.5 else -difference
        if abs(total / count) >= observed - 1e-12:
            hits += 1
    return (hits + 1) / (rounds + 1)


@dataclass(frozen=True, slots=True)
class PairedComparison:
    """Outcome of comparing two systems on one domain."""

    domain: str
    system_a: str
    system_b: str
    mean_a: float
    mean_b: float
    p_value: float

    @property
    def difference(self) -> float:
        """Mean score advantage of system A over system B."""
        return self.mean_a - self.mean_b

    def significant(self, level: float = 0.05) -> bool:
        """Whether the difference clears the significance level."""
        return self.p_value < level


def compare_systems(
    truth: GroundTruth,
    lists_a: dict[str, list[str]],
    lists_b: dict[str, list[str]],
    system_a: str = "A",
    system_b: str = "B",
    domains: list[str] | None = None,
    panel: RaterPanelConfig | None = None,
    seed: int = 0,
    rounds: int = 10_000,
) -> list[PairedComparison]:
    """Per-domain paired comparison of two recommendation systems.

    ``lists_a`` / ``lists_b`` map domain → recommended blogger ids.
    Judgements are paired per (rater, list position): rater r's score
    of A's i-th recommendation pairs with their score of B's i-th.
    """
    if domains is None:
        domains = sorted(set(lists_a) & set(lists_b))
    if not domains:
        raise ParameterError("no common domains to compare on")
    rater_panel = SimulatedRaterPanel(truth, panel, seed=seed)
    results = []
    for domain in domains:
        bloggers_a = lists_a[domain]
        bloggers_b = lists_b[domain]
        if len(bloggers_a) != len(bloggers_b):
            raise ParameterError(
                f"lists for {domain!r} differ in length: "
                f"{len(bloggers_a)} vs {len(bloggers_b)}"
            )
        scores_a: list[float] = []
        scores_b: list[float] = []
        for rater in range(rater_panel.num_raters):
            for blogger_a, blogger_b in zip(bloggers_a, bloggers_b):
                scores_a.append(rater_panel.score(rater, blogger_a, domain))
                scores_b.append(rater_panel.score(rater, blogger_b, domain))
        p_value = paired_permutation_test(
            scores_a, scores_b, rounds=rounds, seed=seed
        )
        results.append(
            PairedComparison(
                domain=domain,
                system_a=system_a,
                system_b=system_b,
                mean_a=sum(scores_a) / len(scores_a),
                mean_b=sum(scores_b) / len(scores_b),
                p_value=p_value,
            )
        )
    return results
