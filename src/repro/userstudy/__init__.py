"""Simulated user study reproducing the Table I protocol."""

from repro.userstudy.annotator import RaterPanelConfig, SimulatedRaterPanel
from repro.userstudy.stats import (
    PairedComparison,
    compare_systems,
    paired_permutation_test,
)
from repro.userstudy.study import TABLE1_DOMAINS, StudyResult, UserStudy

__all__ = [
    "RaterPanelConfig",
    "SimulatedRaterPanel",
    "UserStudy",
    "StudyResult",
    "TABLE1_DOMAINS",
    "paired_permutation_test",
    "compare_systems",
    "PairedComparison",
]
