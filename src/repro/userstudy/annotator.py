"""Simulated raters for the Table I user study.

The paper "invite[d] 10 users who are graduate student and always
write blogs" to score recommended bloggers 1–5 for a domain-specific
application scenario ("Suppose you are the sales manager in Nike,
which blogger will you choose to send advertisement to?").

A human rater shown a blogger's space judges, noisily, how strong and
how on-topic that blogger is — i.e. a noisy readout of the blogger's
*true domain applicability*, which the synthetic ground truth knows
exactly.  Raters also exhibit a *halo effect*: a clearly prominent
blogger earns partial credit even off-topic (which is why the paper's
General and Live Index rows still average around 3, not 1).  Each
simulated rater therefore scores

    fit  = (1 − halo) · applicability(b, domain)^sharpness
           + halo · general_applicability(b)^sharpness
    clip( 1 + 4 · fit + bias_r + ε , 1, 5 )

with a per-rater bias (some people grade harder) and per-judgement
noise.  Scores are deterministic in (seed, rater, blogger, domain), so
studies are exactly reproducible while still averaging over rater
disagreement the way the paper's table did.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.synth.ground_truth import GroundTruth

__all__ = ["RaterPanelConfig", "SimulatedRaterPanel"]


@dataclass(frozen=True, slots=True)
class RaterPanelConfig:
    """Panel composition and noise model."""

    num_raters: int = 10
    noise_std: float = 0.45
    bias_std: float = 0.25
    sharpness: float = 0.6
    halo: float = 0.4

    def __post_init__(self) -> None:
        if self.num_raters < 1:
            raise ParameterError(
                f"num_raters must be >= 1, got {self.num_raters}"
            )
        if self.noise_std < 0 or self.bias_std < 0:
            raise ParameterError("noise_std and bias_std must be >= 0")
        if self.sharpness <= 0:
            raise ParameterError(
                f"sharpness must be > 0, got {self.sharpness}"
            )
        if not 0.0 <= self.halo < 1.0:
            raise ParameterError(f"halo must be in [0, 1), got {self.halo}")


class SimulatedRaterPanel:
    """A reproducible panel of graduate-student stand-ins."""

    def __init__(
        self,
        truth: GroundTruth,
        config: RaterPanelConfig | None = None,
        seed: int = 0,
    ) -> None:
        self._truth = truth
        self._config = config or RaterPanelConfig()
        self._seed = seed
        bias_rng = random.Random(f"panel-bias:{seed}")
        self._biases = [
            bias_rng.gauss(0.0, self._config.bias_std)
            for _ in range(self._config.num_raters)
        ]

    @property
    def num_raters(self) -> int:
        """Panel size."""
        return self._config.num_raters

    # ------------------------------------------------------------------
    def score(self, rater: int, blogger_id: str, domain: str) -> int:
        """One rater's 1–5 applicability score for one blogger."""
        if not 0 <= rater < self._config.num_raters:
            raise ParameterError(
                f"rater must be in [0, {self._config.num_raters}), got {rater}"
            )
        domain_fit = (
            self._truth.applicability(blogger_id, domain)
            ** self._config.sharpness
        )
        prominence = (
            self._truth.general_applicability(blogger_id)
            ** self._config.sharpness
        )
        fit = (
            (1.0 - self._config.halo) * domain_fit
            + self._config.halo * prominence
        )
        base = 1.0 + 4.0 * fit
        noise_rng = random.Random(
            f"judgement:{self._seed}:{rater}:{blogger_id}:{domain}"
        )
        value = base + self._biases[rater] + noise_rng.gauss(
            0.0, self._config.noise_std
        )
        return int(min(5, max(1, round(value))))

    def average_score(self, blogger_ids: list[str], domain: str) -> float:
        """Panel-average score of a recommendation list.

        This is the Table I cell: every rater scores every recommended
        blogger; the cell is the grand mean.
        """
        if not blogger_ids:
            raise ParameterError("cannot score an empty recommendation list")
        total = 0
        count = 0
        for rater in range(self._config.num_raters):
            for blogger_id in blogger_ids:
                total += self.score(rater, blogger_id, domain)
                count += 1
        return total / count
