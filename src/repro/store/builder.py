"""Append-friendly construction of columnar corpus files.

:class:`ColumnarBuilder` accepts entities one at a time — in ascending
id order per kind, the order the store keeps them in — and writes a
``.mcol`` file whose memory footprint is bounded by the *fixed-width*
columns only: every variable-length string is spooled straight to a
scratch file, so a 10^6-blogger corpus builds in a few hundred MB of
RSS while its text streams through to disk.

Referential integrity is enforced at append time (an author must
already be a blogger, a comment's post must exist, link endpoints must
exist), exactly mirroring :class:`~repro.data.corpus.BlogCorpus` — a
finished file never needs a validation pass.  Parallel links merge
additively in first-occurrence position, the same semantics as
``BlogCorpus.add_link``.

:func:`write_corpus` is the one-shot path: anything implementing the
corpus read protocol (a ``BlogCorpus``, a
:class:`~repro.store.columnar.ColumnarCorpus`) serializes through the
builder in sorted-id order, which is what makes columnar-fed solves
bit-identical to object-corpus solves.
"""

from __future__ import annotations

import math
import shutil
import tempfile
from array import array
from pathlib import Path

from repro.errors import CorpusError
from repro.nlp.tokenize import tokenize
from repro.store.format import StoreWriter

__all__ = ["ColumnarBuilder", "write_corpus"]

_CHUNK = 1 << 20


class _Pool:
    """A string pool spooled to scratch: offsets in memory, bytes on disk."""

    def __init__(self, scratch: Path, name: str) -> None:
        self.name = name
        self.offsets = array("q", [0])
        self._fh = open(scratch / f"{name}.pool", "w+b", buffering=_CHUNK)
        self._size = 0

    def add(self, text: str) -> None:
        data = text.encode("utf-8")
        if data:
            self._fh.write(data)
            self._size += len(data)
        self.offsets.append(self._size)

    def _blob_chunks(self):
        self._fh.flush()
        self._fh.seek(0)
        while True:
            chunk = self._fh.read(_CHUNK)
            if not chunk:
                break
            yield chunk

    def write(self, writer: StoreWriter) -> None:
        writer.add_section(f"{self.name}_off", "i64", [self.offsets.tobytes()])
        writer.add_section(f"{self.name}_blob", "raw", self._blob_chunks())

    def close(self) -> None:
        self._fh.close()


def _require_id(value: str, what: str) -> None:
    if not isinstance(value, str) or not value:
        raise CorpusError(f"{what} must be a non-empty string, got {value!r}")


def _require_day(value: int, what: str) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise CorpusError(
            f"{what} must be a non-negative integer, got {value!r}"
        )


def _group(keys: array, n_groups: int) -> tuple[array, array]:
    """Counting-sort row numbers by group key → (ptr, rows) CSR arrays.

    Rows keep ascending order within each group, so grouped views come
    back in sorted-id order (the stored row order *is* id order).
    """
    ptr = array("q", bytes(8 * (n_groups + 1)))
    for key in keys:
        ptr[key + 1] += 1
    for i in range(n_groups):
        ptr[i + 1] += ptr[i]
    rows = array("q", bytes(8 * len(keys)))
    cursor = array("q", ptr[:n_groups])
    for row, key in enumerate(keys):
        rows[cursor[key]] = row
        cursor[key] += 1
    return ptr, rows


class ColumnarBuilder:
    """Stream entities into a ``.mcol`` columnar corpus file.

    Entities of each kind must arrive in strictly ascending id order
    (the stored row order is id order; enforcing it at append time is
    what lets grouped indexes be built with one counting sort and no
    global sort buffer).  ``tokens=True`` additionally tokenizes every
    post into a shared vocabulary and stores per-post term-count
    vectors — the "interest vector" columns downstream interest mining
    can consume without re-tokenizing.
    """

    def __init__(
        self,
        *,
        tokens: bool = False,
        scratch_dir: str | Path | None = None,
    ) -> None:
        self._scratch = Path(tempfile.mkdtemp(
            prefix="mass-col-",
            dir=str(scratch_dir) if scratch_dir is not None else None,
        ))
        self._tokens = tokens
        self._finished = False

        self._blogger_id = _Pool(self._scratch, "blogger_id")
        self._blogger_name = _Pool(self._scratch, "blogger_name")
        self._blogger_profile = _Pool(self._scratch, "blogger_profile")
        self._blogger_joined = array("q")
        self._blogger_rows: dict[str, int] = {}
        self._last_blogger = ""

        self._post_id = _Pool(self._scratch, "post_id")
        self._post_title = _Pool(self._scratch, "post_title")
        self._post_body = _Pool(self._scratch, "post_body")
        self._post_author = array("q")
        self._post_created = array("q")
        self._post_rows: dict[str, int] = {}
        self._last_post = ""

        self._comment_id = _Pool(self._scratch, "comment_id")
        self._comment_text = _Pool(self._scratch, "comment_text")
        self._comment_post = array("q")
        self._comment_commenter = array("q")
        self._comment_created = array("q")
        self._num_comments = 0
        self._last_comment = ""

        self._link_source = array("q")
        self._link_target = array("q")
        self._link_weight = array("d")
        self._link_pos: dict[tuple[int, int], int] = {}

        self._vocab = _Pool(self._scratch, "vocab")
        self._vocab_ids: dict[str, int] = {}
        self._post_token_ptr = array("q", [0])
        self._post_token_id = array("q")
        self._post_token_count = array("q")

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._finished:
            raise CorpusError("builder is finished; create a new one")

    def _check_order(self, entity_id: str, last: str, kind: str) -> None:
        if entity_id <= last:
            raise CorpusError(
                f"{kind} ids must be added in strictly ascending order: "
                f"{entity_id!r} after {last!r}"
            )

    def add_blogger(
        self,
        blogger_id: str,
        name: str = "",
        profile_text: str = "",
        joined_day: int = 0,
    ) -> None:
        """Append one blogger row (ids strictly ascending)."""
        self._check_open()
        _require_id(blogger_id, "blogger_id")
        _require_day(joined_day, "joined_day")
        self._check_order(blogger_id, self._last_blogger, "blogger")
        self._blogger_rows[blogger_id] = len(self._blogger_joined)
        self._blogger_id.add(blogger_id)
        # Mirror the Blogger entity default: an empty name displays the id.
        self._blogger_name.add(name or blogger_id)
        self._blogger_profile.add(profile_text)
        self._blogger_joined.append(joined_day)
        self._last_blogger = blogger_id

    def add_post(
        self,
        post_id: str,
        author_id: str,
        title: str = "",
        body: str = "",
        created_day: int = 0,
    ) -> None:
        """Append one post row; its author must already be present."""
        self._check_open()
        _require_id(post_id, "post_id")
        _require_day(created_day, "created_day")
        self._check_order(post_id, self._last_post, "post")
        author_row = self._blogger_rows.get(author_id)
        if author_row is None:
            raise CorpusError(
                f"post {post_id!r} authored by unknown blogger {author_id!r}"
            )
        self._post_rows[post_id] = len(self._post_author)
        self._post_id.add(post_id)
        self._post_title.add(title)
        self._post_body.add(body)
        self._post_author.append(author_row)
        self._post_created.append(created_day)
        self._last_post = post_id
        if self._tokens:
            self._tokenize_post(title, body)

    def _tokenize_post(self, title: str, body: str) -> None:
        text = f"{title}\n{body}" if title and body else (title or body)
        counts: dict[str, int] = {}
        for token in tokenize(text):
            counts[token] = counts.get(token, 0) + 1
        for token, count in counts.items():
            token_id = self._vocab_ids.get(token)
            if token_id is None:
                token_id = len(self._vocab_ids)
                self._vocab_ids[token] = token_id
                self._vocab.add(token)
            self._post_token_id.append(token_id)
            self._post_token_count.append(count)
        self._post_token_ptr.append(len(self._post_token_id))

    def add_comment(
        self,
        comment_id: str,
        post_id: str,
        commenter_id: str,
        text: str = "",
        created_day: int = 0,
    ) -> None:
        """Append one comment row; post and commenter must exist."""
        self._check_open()
        _require_id(comment_id, "comment_id")
        _require_day(created_day, "created_day")
        self._check_order(comment_id, self._last_comment, "comment")
        post_row = self._post_rows.get(post_id)
        if post_row is None:
            raise CorpusError(
                f"comment {comment_id!r} targets unknown post {post_id!r}"
            )
        commenter_row = self._blogger_rows.get(commenter_id)
        if commenter_row is None:
            raise CorpusError(
                f"comment {comment_id!r} written by unknown blogger "
                f"{commenter_id!r}"
            )
        self._comment_id.add(comment_id)
        self._comment_text.add(text)
        self._comment_post.append(post_row)
        self._comment_commenter.append(commenter_row)
        self._comment_created.append(created_day)
        self._num_comments += 1
        self._last_comment = comment_id

    def add_link(
        self, source_id: str, target_id: str, weight: float = 1.0
    ) -> None:
        """Append (or additively merge) one blogger-to-blogger link."""
        self._check_open()
        if source_id == target_id:
            raise CorpusError(f"self-link for blogger {source_id!r}")
        if not isinstance(weight, (int, float)) or not math.isfinite(weight) \
                or weight <= 0:
            raise CorpusError(
                f"link weight must be positive, got {weight!r}"
            )
        source_row = self._blogger_rows.get(source_id)
        target_row = self._blogger_rows.get(target_id)
        if source_row is None or target_row is None:
            unknown = source_id if source_row is None else target_id
            raise CorpusError(
                f"link ({source_id!r} -> {target_id!r}) references unknown "
                f"blogger {unknown!r}"
            )
        key = (source_row, target_row)
        pos = self._link_pos.get(key)
        if pos is not None:
            # Parallel links add up, in first-occurrence position —
            # the BlogCorpus.add_link merge semantics.
            self._link_weight[pos] += float(weight)
            return
        self._link_pos[key] = len(self._link_weight)
        self._link_source.append(source_row)
        self._link_target.append(target_row)
        self._link_weight.append(float(weight))

    # ------------------------------------------------------------------
    @property
    def counts(self) -> dict[str, int]:
        """Entity counts appended so far."""
        return {
            "bloggers": len(self._blogger_joined),
            "posts": len(self._post_author),
            "comments": self._num_comments,
            "links": len(self._link_weight),
        }

    def finish(self, path: str | Path) -> Path:
        """Build grouped indexes, write the file, release scratch space."""
        self._check_open()
        self._finished = True
        n_bloggers = len(self._blogger_joined)
        writer = StoreWriter(path)
        try:
            for pool in (
                self._blogger_id, self._blogger_name, self._blogger_profile,
                self._post_id, self._post_title, self._post_body,
                self._comment_id, self._comment_text,
            ):
                pool.write(writer)
            for name, column in (
                ("blogger_joined", self._blogger_joined),
                ("post_author", self._post_author),
                ("post_created", self._post_created),
                ("comment_post", self._comment_post),
                ("comment_commenter", self._comment_commenter),
                ("comment_created", self._comment_created),
                ("link_source", self._link_source),
                ("link_target", self._link_target),
            ):
                writer.add_section(name, "i64", [column.tobytes()])
            writer.add_section(
                "link_weight", "f64", [self._link_weight.tobytes()]
            )
            for name, keys, n_groups in (
                ("author_posts", self._post_author, n_bloggers),
                ("post_comments", self._comment_post,
                 len(self._post_author)),
                ("commenter_comments", self._comment_commenter, n_bloggers),
                ("out_links", self._link_source, n_bloggers),
                ("in_links", self._link_target, n_bloggers),
            ):
                ptr, rows = _group(keys, n_groups)
                writer.add_section(f"{name}_ptr", "i64", [ptr.tobytes()])
                writer.add_section(name, "i64", [rows.tobytes()])
            if self._tokens:
                self._vocab.write(writer)
                writer.add_section(
                    "post_token_ptr", "i64", [self._post_token_ptr.tobytes()]
                )
                writer.add_section(
                    "post_token_id", "i64", [self._post_token_id.tobytes()]
                )
                writer.add_section(
                    "post_token_count", "i64",
                    [self._post_token_count.tobytes()],
                )
            counts = self.counts
            if self._tokens:
                counts["vocab"] = len(self._vocab_ids)
            result = writer.finish(counts, flags={"tokens": self._tokens})
        except BaseException:
            writer.abort()
            raise
        finally:
            self.close()
        return result

    def close(self) -> None:
        """Release scratch files (idempotent; finish calls it)."""
        for pool in (
            self._blogger_id, self._blogger_name, self._blogger_profile,
            self._post_id, self._post_title, self._post_body,
            self._comment_id, self._comment_text, self._vocab,
        ):
            pool.close()
        shutil.rmtree(self._scratch, ignore_errors=True)


def write_corpus(
    corpus,
    path: str | Path,
    *,
    tokens: bool = False,
    scratch_dir: str | Path | None = None,
) -> Path:
    """Serialize any corpus-protocol object to a columnar file.

    Entities are emitted in sorted-id order (links in corpus order,
    already parallel-merged), so a round trip through
    :class:`~repro.store.columnar.ColumnarCorpus` reproduces the exact
    iteration orders the solve path sees on a ``BlogCorpus``.
    """
    builder = ColumnarBuilder(tokens=tokens, scratch_dir=scratch_dir)
    try:
        for blogger_id in corpus.blogger_ids():
            blogger = corpus.blogger(blogger_id)
            builder.add_blogger(
                blogger_id,
                name=blogger.name,
                profile_text=blogger.profile_text,
                joined_day=blogger.joined_day,
            )
        for post_id in sorted(corpus.posts):
            post = corpus.post(post_id)
            builder.add_post(
                post_id,
                post.author_id,
                title=post.title,
                body=post.body,
                created_day=post.created_day,
            )
        for comment_id in sorted(corpus.comments):
            comment = corpus.comments[comment_id]
            builder.add_comment(
                comment_id,
                comment.post_id,
                comment.commenter_id,
                text=comment.text,
                created_day=comment.created_day,
            )
        for link in corpus.links:
            builder.add_link(link.source_id, link.target_id, link.weight)
        return builder.finish(path)
    finally:
        builder.close()
