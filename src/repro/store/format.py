"""The ``.mcol`` container: named, CRC-framed sections over one mmap.

A columnar corpus file is a flat container of typed sections::

    [magic 8B] [section 0] [pad] [section 1] [pad] ... [manifest JSON]
    [footer: manifest offset u64 | manifest length u64 | manifest crc32
     u32 | footer magic 8B]

Sections are 8-byte aligned so ``i64``/``f64`` columns can be viewed in
place with :class:`memoryview` casts — opening a store is an ``mmap``
plus a manifest parse, never a deserialization pass.  The manifest
(JSON) records every section's name, kind, byte range and CRC32, plus
entity counts and builder flags; the footer sits at the *end* of the
file so the writer can stream sections of unknown size in one pass.

Integrity model, mirroring the WAL's torn-tail discipline:

- a truncated file loses the footer magic → rejected;
- a damaged manifest fails its CRC → rejected;
- a section whose recorded range falls outside the file → rejected;
- flipped bytes inside a section fail the per-section CRC (checked at
  open unless ``verify=False``) → rejected.

All failures raise :class:`~repro.errors.StoreFormatError`; a file that
opens cleanly is structurally sound.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import zlib
from collections.abc import Iterable
from pathlib import Path

from repro.errors import StoreFormatError

__all__ = ["FORMAT_VERSION", "StoreWriter", "StoreReader"]

FORMAT_VERSION = 1

MAGIC = b"MASSCOL\x01"
FOOTER_MAGIC = b"\x01LOCSSAM"
_FOOTER = struct.Struct("<QQI")  # manifest offset, length, crc32
FOOTER_SIZE = _FOOTER.size + len(FOOTER_MAGIC)

#: Section kinds and the memoryview format they cast to ("raw" = bytes).
_KINDS = {"i64": "q", "f64": "d", "raw": None}

_ALIGN = 8
_COPY_CHUNK = 1 << 20


class StoreWriter:
    """Single-pass streaming writer for one ``.mcol`` file.

    Sections are appended via :meth:`add_section` (chunked, so blobs
    spooled to scratch files never need to fit in memory), then
    :meth:`finish` seals the manifest and footer and atomically moves
    the file into place (write to ``<path>.tmp`` + ``os.replace``).
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._tmp = self._path.with_name(self._path.name + ".tmp")
        self._fh = open(self._tmp, "wb", buffering=_COPY_CHUNK)
        self._fh.write(MAGIC)
        self._pos = len(MAGIC)
        self._sections: dict[str, dict] = {}
        self._finished = False

    def add_section(
        self, name: str, kind: str, chunks: Iterable[bytes]
    ) -> None:
        """Append one named section from an iterable of byte chunks."""
        if name in self._sections:
            raise StoreFormatError(f"duplicate section {name!r}")
        if kind not in _KINDS:
            raise StoreFormatError(f"unknown section kind {kind!r}")
        pad = (-self._pos) % _ALIGN
        if pad:
            self._fh.write(b"\x00" * pad)
            self._pos += pad
        offset = self._pos
        crc = 0
        length = 0
        for chunk in chunks:
            if not chunk:
                continue
            self._fh.write(chunk)
            crc = zlib.crc32(chunk, crc)
            length += len(chunk)
        self._pos += length
        self._sections[name] = {
            "kind": kind, "offset": offset, "length": length, "crc": crc,
        }

    def finish(self, counts: dict, flags: dict | None = None) -> Path:
        """Write manifest + footer, fsync, and move the file into place."""
        if self._finished:
            raise StoreFormatError("StoreWriter.finish called twice")
        self._finished = True
        manifest = json.dumps(
            {
                "format": FORMAT_VERSION,
                "byteorder": sys.byteorder,
                "counts": counts,
                "flags": flags or {},
                "sections": self._sections,
            },
            sort_keys=True,
        ).encode("utf-8")
        manifest_offset = self._pos
        self._fh.write(manifest)
        self._fh.write(
            _FOOTER.pack(manifest_offset, len(manifest), zlib.crc32(manifest))
        )
        self._fh.write(FOOTER_MAGIC)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        os.replace(self._tmp, self._path)
        return self._path

    def abort(self) -> None:
        """Discard the partial file (safe after an exception)."""
        if not self._fh.closed:
            self._fh.close()
        self._tmp.unlink(missing_ok=True)


class StoreReader:
    """A verified, memory-mapped view of one ``.mcol`` file.

    ``verify=True`` (the default) checks every section CRC at open —
    one sequential pass over the mapping, cheap relative to any use of
    the data.  ``verify=False`` skips the per-section CRCs (the footer,
    manifest CRC and bounds checks always run) for latency-critical
    paths like checkpoint recovery that re-verify via content epochs.
    """

    def __init__(self, path: str | Path, *, verify: bool = True) -> None:
        self._path = Path(path)
        try:
            self._fh = open(self._path, "rb")
        except OSError as exc:
            raise StoreFormatError(f"cannot open store {path}: {exc}") from exc
        try:
            size = os.fstat(self._fh.fileno()).st_size
            if size < len(MAGIC) + FOOTER_SIZE:
                raise StoreFormatError(
                    f"{self._path.name}: file too short ({size} bytes) to be "
                    "a columnar store"
                )
            self._mm = mmap.mmap(
                self._fh.fileno(), 0, access=mmap.ACCESS_READ
            )
        except StoreFormatError:
            self._fh.close()
            raise
        except (OSError, ValueError) as exc:
            self._fh.close()
            raise StoreFormatError(
                f"cannot map store {path}: {exc}"
            ) from exc
        try:
            self._parse(size, verify)
        except StoreFormatError:
            self.close()
            raise

    def _parse(self, size: int, verify: bool) -> None:
        mm = self._mm
        if mm[: len(MAGIC)] != MAGIC:
            raise StoreFormatError(
                f"{self._path.name}: bad magic; not a columnar store"
            )
        if mm[size - len(FOOTER_MAGIC):] != FOOTER_MAGIC:
            raise StoreFormatError(
                f"{self._path.name}: footer magic missing; file is "
                "truncated or was not sealed"
            )
        manifest_offset, manifest_len, manifest_crc = _FOOTER.unpack(
            mm[size - FOOTER_SIZE: size - len(FOOTER_MAGIC)]
        )
        if manifest_offset + manifest_len > size - FOOTER_SIZE:
            raise StoreFormatError(
                f"{self._path.name}: manifest range out of bounds"
            )
        manifest_bytes = mm[manifest_offset: manifest_offset + manifest_len]
        if zlib.crc32(manifest_bytes) != manifest_crc:
            raise StoreFormatError(
                f"{self._path.name}: manifest CRC mismatch; file is corrupt"
            )
        try:
            manifest = json.loads(manifest_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StoreFormatError(
                f"{self._path.name}: manifest is not valid JSON: {exc}"
            ) from exc
        if manifest.get("format") != FORMAT_VERSION:
            raise StoreFormatError(
                f"{self._path.name}: unsupported store format "
                f"{manifest.get('format')!r} (this build reads "
                f"{FORMAT_VERSION})"
            )
        if manifest.get("byteorder") != sys.byteorder:
            raise StoreFormatError(
                f"{self._path.name}: store written on a "
                f"{manifest.get('byteorder')}-endian machine cannot be "
                f"read on a {sys.byteorder}-endian one"
            )
        self.counts: dict = manifest.get("counts", {})
        self.flags: dict = manifest.get("flags", {})
        self._sections: dict[str, dict] = manifest.get("sections", {})
        view = memoryview(mm)
        for name, spec in self._sections.items():
            offset, length = spec.get("offset"), spec.get("length")
            if (
                not isinstance(offset, int) or not isinstance(length, int)
                or offset < 0 or length < 0
                or offset + length > manifest_offset
            ):
                raise StoreFormatError(
                    f"{self._path.name}: section {name!r} range out of "
                    "bounds"
                )
            if spec.get("kind") not in _KINDS:
                raise StoreFormatError(
                    f"{self._path.name}: section {name!r} has unknown kind "
                    f"{spec.get('kind')!r}"
                )
            if verify and zlib.crc32(
                view[offset: offset + length]
            ) != spec.get("crc"):
                raise StoreFormatError(
                    f"{self._path.name}: section {name!r} CRC mismatch; "
                    "file is corrupt"
                )
        self._view = view

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """The backing file."""
        return self._path

    def has(self, name: str) -> bool:
        """Whether a section exists in this file."""
        return name in self._sections

    def _section(self, name: str, kind: str) -> memoryview:
        spec = self._sections.get(name)
        if spec is None:
            raise StoreFormatError(
                f"{self._path.name}: required section {name!r} is missing"
            )
        if spec["kind"] != kind:
            raise StoreFormatError(
                f"{self._path.name}: section {name!r} is {spec['kind']}, "
                f"expected {kind}"
            )
        view = self._view[spec["offset"]: spec["offset"] + spec["length"]]
        fmt = _KINDS[kind]
        return view.cast(fmt) if fmt else view

    def i64(self, name: str) -> memoryview:
        """An ``i64`` column as a zero-copy memoryview of the mapping."""
        return self._section(name, "i64")

    def f64(self, name: str) -> memoryview:
        """An ``f64`` column as a zero-copy memoryview of the mapping."""
        return self._section(name, "f64")

    def raw(self, name: str) -> memoryview:
        """A raw byte section (string-pool blobs)."""
        return self._section(name, "raw")

    def close(self) -> None:
        """Release the mapping and file handle.

        Any column view still held keeps the mapping alive (the kernel
        drops it when the last view dies); the file descriptor is
        always released.
        """
        self._fh.close()
        try:
            self._view.release()
        except AttributeError:
            pass
        try:
            self._mm.close()
        except BufferError:
            # Exported column views pin the mapping; it is unmapped
            # when they are garbage-collected.
            pass
