"""A memory-mapped corpus view implementing the BlogCorpus protocol.

:class:`ColumnarCorpus` opens a ``.mcol`` file written by
:class:`~repro.store.builder.ColumnarBuilder` and presents the exact
read surface the analysis stack consumes — ``bloggers`` / ``posts`` /
``comments`` mappings, ``links``, grouped lookups (``posts_by``,
``comments_on``, ``total_comments_by``, ``out_links`` …), ``stats()``,
``subset`` / ``time_slice`` — without ever materializing
:mod:`repro.data.entities` objects.  Row *views* (lightweight
``__slots__`` proxies that decode fields from the mapping on attribute
access) stand in for entities wherever the protocol hands one back.

Iteration-order contract, load-bearing for bit-identical solves: rows
are stored in ascending id order, so ``sorted(corpus.posts)``, grouped
lookups, and dict-insertion-order traversals all see precisely the
sequences a sorted-id ``BlogCorpus`` walk would produce; ``links``
preserve corpus order with parallel links pre-merged.

Entity-id lookups lazily build one dict per entity kind on first use;
column scans (stats, iteration, CSR assembly) never pay for them —
which is what keeps opening a million-blogger corpus at mmap cost.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from pathlib import Path

from repro.data.corpus import BlogCorpus, CorpusStats
from repro.data.entities import Blogger, Comment, Link, Post
from repro.errors import CorpusError, StoreFormatError
from repro.store.format import StoreReader

__all__ = ["ColumnarCorpus"]


class _StringColumn:
    """Decode-on-access view of one string pool (offsets + UTF-8 blob)."""

    __slots__ = ("_off", "_blob")

    def __init__(self, off, blob) -> None:
        self._off = off
        self._blob = blob

    def __len__(self) -> int:
        return len(self._off) - 1

    def __getitem__(self, row: int) -> str:
        return str(self._blob[self._off[row]: self._off[row + 1]], "utf-8")

    def __iter__(self) -> Iterator[str]:
        off, blob = self._off, self._blob
        for row in range(len(off) - 1):
            yield str(blob[off[row]: off[row + 1]], "utf-8")


class BloggerView:
    """One blogger row; attribute-compatible with ``entities.Blogger``."""

    __slots__ = ("_c", "_row")

    def __init__(self, corpus: "ColumnarCorpus", row: int) -> None:
        self._c = corpus
        self._row = row

    @property
    def blogger_id(self) -> str:
        return self._c._bid[self._row]

    @property
    def name(self) -> str:
        return self._c._bname[self._row]

    @property
    def profile_text(self) -> str:
        return self._c._bprofile[self._row]

    @property
    def joined_day(self) -> int:
        return self._c._bjoined[self._row]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BloggerView({self.blogger_id!r})"


class PostView:
    """One post row; attribute-compatible with ``entities.Post``."""

    __slots__ = ("_c", "_row")

    def __init__(self, corpus: "ColumnarCorpus", row: int) -> None:
        self._c = corpus
        self._row = row

    @property
    def post_id(self) -> str:
        return self._c._pid[self._row]

    @property
    def author_id(self) -> str:
        return self._c._bid[self._c._pauthor[self._row]]

    @property
    def title(self) -> str:
        return self._c._ptitle[self._row]

    @property
    def body(self) -> str:
        return self._c._pbody[self._row]

    @property
    def created_day(self) -> int:
        return self._c._pcreated[self._row]

    @property
    def text(self) -> str:
        title, body = self.title, self.body
        if title and body:
            return f"{title}\n{body}"
        return title or body

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PostView({self.post_id!r})"


class CommentView:
    """One comment row; attribute-compatible with ``entities.Comment``."""

    __slots__ = ("_c", "_row")

    def __init__(self, corpus: "ColumnarCorpus", row: int) -> None:
        self._c = corpus
        self._row = row

    @property
    def comment_id(self) -> str:
        return self._c._cid[self._row]

    @property
    def post_id(self) -> str:
        return self._c._pid[self._c._cpost[self._row]]

    @property
    def commenter_id(self) -> str:
        return self._c._bid[self._c._ccommenter[self._row]]

    @property
    def text(self) -> str:
        return self._c._ctext[self._row]

    @property
    def created_day(self) -> int:
        return self._c._ccreated[self._row]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CommentView({self.comment_id!r})"


class LinkView:
    """One link row; attribute-compatible with ``entities.Link``."""

    __slots__ = ("_c", "_row")

    def __init__(self, corpus: "ColumnarCorpus", row: int) -> None:
        self._c = corpus
        self._row = row

    @property
    def source_id(self) -> str:
        return self._c._bid[self._c._lsource[self._row]]

    @property
    def target_id(self) -> str:
        return self._c._bid[self._c._ltarget[self._row]]

    @property
    def weight(self) -> float:
        return self._c._lweight[self._row]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinkView({self.source_id!r} -> {self.target_id!r})"


class _RowMapping(Mapping):
    """id → row-view mapping over one entity kind (sorted-id order)."""

    __slots__ = ("_ids", "_index", "_make")

    def __init__(self, ids: _StringColumn, index, make) -> None:
        self._ids = ids
        self._index = index  # callable returning the lazy id→row dict
        self._make = make

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[str]:
        return iter(self._ids)

    def __getitem__(self, entity_id: str):
        row = self._index().get(entity_id)
        if row is None:
            raise KeyError(entity_id)
        return self._make(row)

    def __contains__(self, entity_id: object) -> bool:
        return entity_id in self._index()


class _LinkSequence(Sequence):
    """The ``links`` list: corpus order, parallel links pre-merged."""

    __slots__ = ("_c",)

    def __init__(self, corpus: "ColumnarCorpus") -> None:
        self._c = corpus

    def __len__(self) -> int:
        return len(self._c._lweight)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                LinkView(self._c, row)
                for row in range(*index.indices(len(self)))
            ]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return LinkView(self._c, index)


class ColumnarCorpus:
    """A frozen, validated corpus served straight from a mapped file.

    Open with :meth:`open` (or the constructor); close with
    :meth:`close` or a ``with`` block.  The view is always ``frozen`` —
    the file was integrity-checked at build time and CRC-verified at
    open, so ``validate()`` is a no-op.
    """

    def __init__(self, path: str | Path, *, verify: bool = True) -> None:
        reader = StoreReader(path, verify=verify)
        try:
            self._load(reader)
        except StoreFormatError:
            reader.close()
            raise
        self._reader = reader

    @classmethod
    def open(cls, path: str | Path, *, verify: bool = True) -> "ColumnarCorpus":
        """Map a ``.mcol`` file written by the columnar builder."""
        return cls(path, verify=verify)

    def _load(self, reader: StoreReader) -> None:
        def pool(name: str) -> _StringColumn:
            return _StringColumn(
                reader.i64(f"{name}_off"), reader.raw(f"{name}_blob")
            )

        self._bid = pool("blogger_id")
        self._bname = pool("blogger_name")
        self._bprofile = pool("blogger_profile")
        self._bjoined = reader.i64("blogger_joined")
        self._pid = pool("post_id")
        self._ptitle = pool("post_title")
        self._pbody = pool("post_body")
        self._pauthor = reader.i64("post_author")
        self._pcreated = reader.i64("post_created")
        self._cid = pool("comment_id")
        self._ctext = pool("comment_text")
        self._cpost = reader.i64("comment_post")
        self._ccommenter = reader.i64("comment_commenter")
        self._ccreated = reader.i64("comment_created")
        self._lsource = reader.i64("link_source")
        self._ltarget = reader.i64("link_target")
        self._lweight = reader.f64("link_weight")
        self._author_posts_ptr = reader.i64("author_posts_ptr")
        self._author_posts = reader.i64("author_posts")
        self._post_comments_ptr = reader.i64("post_comments_ptr")
        self._post_comments = reader.i64("post_comments")
        self._commenter_comments_ptr = reader.i64("commenter_comments_ptr")
        self._commenter_comments = reader.i64("commenter_comments")
        self._out_links_ptr = reader.i64("out_links_ptr")
        self._out_links_rows = reader.i64("out_links")
        self._in_links_ptr = reader.i64("in_links_ptr")
        self._in_links_rows = reader.i64("in_links")
        counts = reader.counts
        for kind, column in (
            ("bloggers", self._bjoined),
            ("posts", self._pauthor),
            ("comments", self._cpost),
            ("links", self._lweight),
        ):
            if counts.get(kind) != len(column):
                raise StoreFormatError(
                    f"{reader.path.name}: manifest says "
                    f"{counts.get(kind)} {kind}, columns hold {len(column)}"
                )
        self._blogger_index: dict[str, int] | None = None
        self._post_index: dict[str, int] | None = None
        self._comment_index: dict[str, int] | None = None
        self._bloggers_map = _RowMapping(
            self._bid, self._bindex, lambda row: BloggerView(self, row)
        )
        self._posts_map = _RowMapping(
            self._pid, self._pindex, lambda row: PostView(self, row)
        )
        self._comments_map = _RowMapping(
            self._cid, self._cindex, lambda row: CommentView(self, row)
        )
        self._links_seq = _LinkSequence(self)

    # ------------------------------------------------------------------
    # Lazy id → row indexes (column scans never build them)
    # ------------------------------------------------------------------
    def _bindex(self) -> dict[str, int]:
        if self._blogger_index is None:
            self._blogger_index = {
                blogger_id: row for row, blogger_id in enumerate(self._bid)
            }
        return self._blogger_index

    def _pindex(self) -> dict[str, int]:
        if self._post_index is None:
            self._post_index = {
                post_id: row for row, post_id in enumerate(self._pid)
            }
        return self._post_index

    def _cindex(self) -> dict[str, int]:
        if self._comment_index is None:
            self._comment_index = {
                comment_id: row for row, comment_id in enumerate(self._cid)
            }
        return self._comment_index

    # ------------------------------------------------------------------
    # Corpus protocol: lookups
    # ------------------------------------------------------------------
    @property
    def bloggers(self) -> Mapping:
        """Bloggers by id (sorted-id iteration order)."""
        return self._bloggers_map

    @property
    def posts(self) -> Mapping:
        """Posts by id (sorted-id iteration order)."""
        return self._posts_map

    @property
    def comments(self) -> Mapping:
        """Comments by id (sorted-id iteration order)."""
        return self._comments_map

    @property
    def links(self) -> Sequence:
        """All blogger-to-blogger links, parallel links pre-merged."""
        return self._links_seq

    def blogger(self, blogger_id: str) -> BloggerView:
        """Fetch one blogger or raise :class:`CorpusError`."""
        row = self._bindex().get(blogger_id)
        if row is None:
            raise CorpusError(f"unknown blogger {blogger_id!r}")
        return BloggerView(self, row)

    def post(self, post_id: str) -> PostView:
        """Fetch one post or raise :class:`CorpusError`."""
        row = self._pindex().get(post_id)
        if row is None:
            raise CorpusError(f"unknown post {post_id!r}")
        return PostView(self, row)

    def post_author_id(self, post_id: str) -> str:
        """The author id of one post, read straight off the columns.

        The CSR assembler uses this to skip row-view construction on
        its hottest lookup.
        """
        row = self._pindex().get(post_id)
        if row is None:
            raise CorpusError(f"unknown post {post_id!r}")
        return self._bid[self._pauthor[row]]

    def posts_by(self, blogger_id: str) -> list[PostView]:
        """All posts written by a blogger, ascending post id."""
        row = self._bindex().get(blogger_id)
        if row is None:
            return []
        ptr = self._author_posts_ptr
        return [
            PostView(self, post_row)
            for post_row in self._author_posts[ptr[row]: ptr[row + 1]]
        ]

    def comments_on(self, post_id: str) -> list[CommentView]:
        """All comments on a post, ascending comment id."""
        row = self._pindex().get(post_id)
        if row is None:
            return []
        ptr = self._post_comments_ptr
        return [
            CommentView(self, comment_row)
            for comment_row in self._post_comments[ptr[row]: ptr[row + 1]]
        ]

    def comments_by(self, blogger_id: str) -> list[CommentView]:
        """All comments written by a blogger, ascending comment id."""
        row = self._bindex().get(blogger_id)
        if row is None:
            return []
        ptr = self._commenter_comments_ptr
        return [
            CommentView(self, comment_row)
            for comment_row in self._commenter_comments[ptr[row]: ptr[row + 1]]
        ]

    def total_comments_by(self, blogger_id: str) -> int:
        """``TC(b_j)`` as one pointer-difference — no list built."""
        row = self._bindex().get(blogger_id)
        if row is None:
            return 0
        ptr = self._commenter_comments_ptr
        return ptr[row + 1] - ptr[row]

    def out_links(self, blogger_id: str) -> list[LinkView]:
        """Links the blogger makes to others, corpus order."""
        row = self._bindex().get(blogger_id)
        if row is None:
            return []
        ptr = self._out_links_ptr
        return [
            LinkView(self, link_row)
            for link_row in self._out_links_rows[ptr[row]: ptr[row + 1]]
        ]

    def in_links(self, blogger_id: str) -> list[LinkView]:
        """Links others make to the blogger, corpus order."""
        row = self._bindex().get(blogger_id)
        if row is None:
            return []
        ptr = self._in_links_ptr
        return [
            LinkView(self, link_row)
            for link_row in self._in_links_rows[ptr[row]: ptr[row + 1]]
        ]

    def blogger_ids(self) -> list[str]:
        """All blogger ids in deterministic (sorted) order."""
        return list(self._bid)

    def stats(self) -> CorpusStats:
        """Summary counts for reporting."""
        return CorpusStats(self)

    # ------------------------------------------------------------------
    # Corpus protocol: lifecycle
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """No-op: integrity was enforced at build and verified at open."""

    def freeze(self) -> "ColumnarCorpus":
        """Already frozen; returns ``self`` for protocol compatibility."""
        return self

    @property
    def frozen(self) -> bool:
        """Columnar corpora are always read-only."""
        return True

    # ------------------------------------------------------------------
    # Interest-vector columns (present when built with tokens=True)
    # ------------------------------------------------------------------
    @property
    def has_tokens(self) -> bool:
        """Whether tokenized interest-vector columns were stored."""
        return bool(self._reader.flags.get("tokens"))

    def vocabulary(self) -> list[str]:
        """The shared token vocabulary, in first-seen order."""
        self._require_tokens()
        return list(_StringColumn(
            self._reader.i64("vocab_off"), self._reader.raw("vocab_blob")
        ))

    def post_tokens(self, post_id: str) -> dict[str, int]:
        """One post's term-count vector from the stored token columns."""
        self._require_tokens()
        row = self._pindex().get(post_id)
        if row is None:
            raise CorpusError(f"unknown post {post_id!r}")
        vocab = _StringColumn(
            self._reader.i64("vocab_off"), self._reader.raw("vocab_blob")
        )
        ptr = self._reader.i64("post_token_ptr")
        token_ids = self._reader.i64("post_token_id")
        token_counts = self._reader.i64("post_token_count")
        return {
            vocab[token_ids[k]]: token_counts[k]
            for k in range(ptr[row], ptr[row + 1])
        }

    def _require_tokens(self) -> None:
        if not self.has_tokens:
            raise CorpusError(
                "store was built without token columns (tokens=False)"
            )

    # ------------------------------------------------------------------
    # Derived views (materialize real entities, like BlogCorpus does)
    # ------------------------------------------------------------------
    def _materialize_blogger(self, row: int) -> Blogger:
        return Blogger(
            self._bid[row],
            name=self._bname[row],
            profile_text=self._bprofile[row],
            joined_day=self._bjoined[row],
        )

    def _materialize_post(self, row: int) -> Post:
        return Post(
            self._pid[row],
            self._bid[self._pauthor[row]],
            title=self._ptitle[row],
            body=self._pbody[row],
            created_day=self._pcreated[row],
        )

    def _materialize_comment(self, row: int) -> Comment:
        return Comment(
            self._cid[row],
            self._pid[self._cpost[row]],
            self._bid[self._ccommenter[row]],
            text=self._ctext[row],
            created_day=self._ccreated[row],
        )

    def subset(self, blogger_ids: Iterable[str]) -> BlogCorpus:
        """Induced sub-corpus on a blogger set (a real ``BlogCorpus``)."""
        keep = set(blogger_ids)
        index = self._bindex()
        unknown = keep - index.keys()
        if unknown:
            raise CorpusError(
                f"subset references unknown bloggers: {sorted(unknown)}"
            )
        keep_rows = {index[blogger_id] for blogger_id in keep}
        sub = BlogCorpus()
        for blogger_id in sorted(keep):
            sub.add_blogger(self._materialize_blogger(index[blogger_id]))
        kept_posts: set[int] = set()
        for row in range(len(self._pauthor)):
            if self._pauthor[row] in keep_rows:
                sub.add_post(self._materialize_post(row))
                kept_posts.add(row)
        for row in range(len(self._cpost)):
            if self._ccommenter[row] in keep_rows \
                    and self._cpost[row] in kept_posts:
                sub.add_comment(self._materialize_comment(row))
        for row in range(len(self._lweight)):
            if self._lsource[row] in keep_rows \
                    and self._ltarget[row] in keep_rows:
                sub.add_link(Link(
                    self._bid[self._lsource[row]],
                    self._bid[self._ltarget[row]],
                    self._lweight[row],
                ))
        return sub

    def time_slice(self, start_day: int, end_day: int) -> BlogCorpus:
        """The corpus restricted to activity in ``[start_day, end_day)``."""
        if end_day <= start_day:
            raise CorpusError(
                f"empty window: start_day={start_day} end_day={end_day}"
            )
        sliced = BlogCorpus()
        for row in range(len(self._bjoined)):
            sliced.add_blogger(self._materialize_blogger(row))
        kept_posts: set[int] = set()
        for row in range(len(self._pauthor)):
            if start_day <= self._pcreated[row] < end_day:
                sliced.add_post(self._materialize_post(row))
                kept_posts.add(row)
        for row in range(len(self._cpost)):
            if self._cpost[row] in kept_posts \
                    and start_day <= self._ccreated[row] < end_day:
                sliced.add_comment(self._materialize_comment(row))
        for row in range(len(self._lweight)):
            sliced.add_link(Link(
                self._bid[self._lsource[row]],
                self._bid[self._ltarget[row]],
                self._lweight[row],
            ))
        return sliced

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """The backing ``.mcol`` file."""
        return self._reader.path

    def close(self) -> None:
        """Release the mapping (views handed out keep it alive)."""
        self._reader.close()

    def __enter__(self) -> "ColumnarCorpus":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._bjoined)

    def __iter__(self) -> Iterator[BloggerView]:
        for row in range(len(self._bjoined)):
            yield BloggerView(self, row)

    def __contains__(self, blogger_id: object) -> bool:
        return blogger_id in self._bindex()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (
            f"ColumnarCorpus(bloggers={stats.num_bloggers}, "
            f"posts={stats.num_posts}, comments={stats.num_comments}, "
            f"links={stats.num_links}, path={str(self.path)!r})"
        )
