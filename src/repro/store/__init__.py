"""Columnar corpus data plane: mmap-backed tables behind the corpus protocol.

The per-object :class:`~repro.data.corpus.BlogCorpus` tops out around
10^4 bloggers — every entity is a Python object and every load is a
full XML parse.  This package compiles a corpus into columns **once, at
the edge**: an append-friendly :class:`ColumnarBuilder` streams
entities into a ``.mcol`` file of typed, CRC-framed sections, and
:class:`ColumnarCorpus` memory-maps that file back as a drop-in corpus
(the full read protocol ``core/assemble.py`` and the solvers consume)
without materializing entity objects.  See ``docs/data.md`` for the
layout and memory model.
"""

from repro.errors import StoreFormatError
from repro.store.builder import ColumnarBuilder, write_corpus
from repro.store.columnar import ColumnarCorpus
from repro.store.format import FORMAT_VERSION, StoreReader, StoreWriter

__all__ = [
    "ColumnarBuilder",
    "ColumnarCorpus",
    "write_corpus",
    "StoreReader",
    "StoreWriter",
    "StoreFormatError",
    "FORMAT_VERSION",
]
