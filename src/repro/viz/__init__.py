"""Visualization: the Fig. 4 network model, XML persistence, ASCII render."""

from repro.viz.ascii import render_network, render_ranking
from repro.viz.network import VisualizationGraph, VizEdge, VizNode
from repro.viz.svg import render_svg, save_svg

__all__ = [
    "VisualizationGraph",
    "VizNode",
    "VizEdge",
    "render_network",
    "render_ranking",
    "render_svg",
    "save_svg",
]
