"""Terminal rendering of visualization graphs and rankings.

The demo's Swing canvas is out of scope for a library; what examples
and benches need is a way to *see* the network and the top-k panel in
a terminal.  :func:`render_network` draws nodes on a character canvas
at their layout positions; :func:`render_ranking` prints the
right-hand top-k panel.
"""

from __future__ import annotations

from repro.viz.network import VisualizationGraph

__all__ = ["render_network", "render_ranking"]


def render_network(
    graph: VisualizationGraph,
    width: int = 72,
    height: int = 24,
    max_labels: int = 12,
) -> str:
    """Draw the network as ASCII art.

    Nodes appear as ``*`` at their (scaled) layout positions; the
    ``max_labels`` most influential nodes get their names printed next
    to the marker.  Edges are summarized below the canvas (character
    canvases do not do justice to edge routing).
    """
    if width < 10 or height < 5:
        raise ValueError("canvas must be at least 10x5")
    canvas = [[" "] * width for _ in range(height)]
    nodes = graph.nodes
    if nodes:
        xs = [node.x for node in nodes]
        ys = [node.y for node in nodes]
        min_x, max_x = min(xs), max(xs)
        min_y, max_y = min(ys), max(ys)
        span_x = (max_x - min_x) or 1.0
        span_y = (max_y - min_y) or 1.0

        labeled = {
            node.blogger_id
            for node in sorted(
                nodes, key=lambda n: (-n.influence, n.blogger_id)
            )[:max_labels]
        }
        for node in nodes:
            col = int((node.x - min_x) / span_x * (width - 1))
            row = int((node.y - min_y) / span_y * (height - 1))
            canvas[row][col] = "*"
            if node.blogger_id in labeled:
                label = f" {node.name}"[: width - col - 1]
                for offset, char in enumerate(label):
                    position = col + 1 + offset
                    if position < width and canvas[row][position] == " ":
                        canvas[row][position] = char

    lines = ["".join(row).rstrip() for row in canvas]
    lines.append("-" * width)
    lines.append(
        f"{len(graph)} bloggers, {len(graph.edges)} post-reply edges, "
        f"{graph.total_comments()} comments"
    )
    heaviest = sorted(
        graph.edges, key=lambda e: (-e.comment_count, e.source, e.target)
    )[:5]
    for edge in heaviest:
        lines.append(
            f"  {edge.source} --{edge.comment_count}--> {edge.target}"
        )
    return "\n".join(lines)


def render_ranking(
    ranking: list[tuple[str, float]], title: str = "Top influential bloggers"
) -> str:
    """Print a top-k list the way the demo's right panel shows it."""
    lines = [title, "=" * len(title)]
    for position, (blogger_id, score) in enumerate(ranking, start=1):
        lines.append(f"{position:2d}. {blogger_id:<24s} {score:10.4f}")
    if not ranking:
        lines.append("(no bloggers)")
    return "\n".join(lines)
