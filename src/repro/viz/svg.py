"""SVG rendering of visualization graphs.

The demo drew the post-reply network on a Swing canvas; for a library,
a standalone SVG file is the equivalent artifact — viewable in any
browser, no dependencies.  Nodes are sized by influence, edges carry
their comment-count labels (Fig. 4's "number on the line"), and the
most influential nodes are labelled.
"""

from __future__ import annotations

import math
from pathlib import Path
from xml.sax.saxutils import escape

from repro.graph.layout import scale_positions
from repro.viz.network import VisualizationGraph

__all__ = ["render_svg", "save_svg"]

_STYLE = """
  .edge { stroke: #9aa7b5; stroke-opacity: 0.55; }
  .edge-label { font: 9px sans-serif; fill: #5b6875; }
  .node { fill: #2f6db3; stroke: #ffffff; stroke-width: 1; }
  .node-label { font: 11px sans-serif; fill: #1c2733; }
  .title { font: bold 14px sans-serif; fill: #1c2733; }
"""


def render_svg(
    graph: VisualizationGraph,
    width: int = 800,
    height: int = 600,
    max_labels: int = 10,
    title: str = "Post-reply network",
) -> str:
    """Render the graph as an SVG document string.

    Node radius scales with the square root of influence (area ∝
    influence); edge width with the log of its comment count; the
    ``max_labels`` most influential nodes get name labels.
    """
    if width < 100 or height < 100:
        raise ValueError("canvas must be at least 100x100")
    margin = 40
    nodes = graph.nodes
    positions = scale_positions(
        {node.blogger_id: (node.x, node.y) for node in nodes},
        width - 2 * margin,
        height - 2 * margin,
    )
    positions = {
        node_id: (x + margin, y + margin)
        for node_id, (x, y) in positions.items()
    }

    max_influence = max((node.influence for node in nodes), default=0.0)

    def radius(influence: float) -> float:
        if max_influence <= 0:
            return 4.0
        return 4.0 + 8.0 * math.sqrt(max(influence, 0.0) / max_influence)

    labelled = {
        node.blogger_id
        for node in sorted(nodes, key=lambda n: (-n.influence, n.blogger_id))[
            :max_labels
        ]
    }

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f"<style>{_STYLE}</style>",
        f'<text class="title" x="{margin}" y="22">{escape(title)} '
        f"&#8212; {len(nodes)} bloggers, {len(graph.edges)} edges</text>",
    ]

    for edge in graph.edges:
        x1, y1 = positions[edge.source]
        x2, y2 = positions[edge.target]
        stroke = 1.0 + math.log1p(edge.comment_count)
        parts.append(
            f'<line class="edge" x1="{x1:.1f}" y1="{y1:.1f}" '
            f'x2="{x2:.1f}" y2="{y2:.1f}" stroke-width="{stroke:.2f}"/>'
        )
        if edge.comment_count > 1:
            mid_x, mid_y = (x1 + x2) / 2, (y1 + y2) / 2
            parts.append(
                f'<text class="edge-label" x="{mid_x:.1f}" y="{mid_y:.1f}">'
                f"{edge.comment_count}</text>"
            )

    for node in nodes:
        x, y = positions[node.blogger_id]
        r = radius(node.influence)
        tooltip = (
            f"{node.name}: influence {node.influence:.3f}, "
            f"{node.num_posts} posts"
        )
        parts.append(
            f'<circle class="node" cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}">'
            f"<title>{escape(tooltip)}</title></circle>"
        )
        if node.blogger_id in labelled:
            parts.append(
                f'<text class="node-label" x="{x + r + 2:.1f}" '
                f'y="{y + 4:.1f}">{escape(node.name)}</text>'
            )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(
    graph: VisualizationGraph,
    path: str | Path,
    width: int = 800,
    height: int = 600,
    max_labels: int = 10,
    title: str = "Post-reply network",
) -> Path:
    """Write :func:`render_svg` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        render_svg(graph, width=width, height=height,
                   max_labels=max_labels, title=title),
        encoding="utf-8",
    )
    return path
