"""The visualization graph of Fig. 4.

The demo's left panel shows the post-reply network: "Each node
represents one blogger ... A line between two nodes represents the
post-reply relationship between two bloggers and the number on the
line records the total number comments of one blogger on the other
blogger's posts."  Double-clicking a node pops up the blogger's
influence properties; "The visualization graph can be saved as an XML
file and be loaded in future."

:class:`VisualizationGraph` is that artifact: positioned nodes
annotated with influence properties, comment-count edges, and a
lossless XML round trip.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.report import InfluenceReport
from repro.data.xml_store import sanitize_xml_text
from repro.errors import XmlFormatError
from repro.graph.influence_graph import ego_network, post_reply_graph
from repro.graph.layout import force_layout

__all__ = ["VizNode", "VizEdge", "VisualizationGraph"]


@dataclass(frozen=True, slots=True)
class VizNode:
    """One blogger node with its pop-up properties."""

    blogger_id: str
    name: str
    x: float
    y: float
    influence: float = 0.0
    num_posts: int = 0
    domain_scores: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class VizEdge:
    """A post-reply edge: ``source`` commented on ``target``'s posts."""

    source: str
    target: str
    comment_count: int


class VisualizationGraph:
    """Positioned, annotated post-reply network with XML persistence."""

    def __init__(self, nodes: list[VizNode], edges: list[VizEdge]) -> None:
        self._nodes = {node.blogger_id: node for node in nodes}
        if len(self._nodes) != len(nodes):
            raise ValueError("duplicate node ids in visualization graph")
        for edge in edges:
            for endpoint in (edge.source, edge.target):
                if endpoint not in self._nodes:
                    raise ValueError(
                        f"edge references unknown node {endpoint!r}"
                    )
        self._edges = list(edges)

    # ------------------------------------------------------------------
    # Construction from analysis results
    # ------------------------------------------------------------------
    @classmethod
    def from_report(
        cls,
        report: InfluenceReport,
        center: str | None = None,
        radius: int = 1,
        layout_seed: int = 0,
        layout_iterations: int = 60,
    ) -> "VisualizationGraph":
        """Build the Fig. 4 view from an influence report.

        With ``center`` given, shows the ego network within ``radius``
        hops (the double-click view); otherwise the whole post-reply
        network.
        """
        corpus = report.corpus
        if center is not None:
            graph = ego_network(corpus, center, radius)
        else:
            graph = post_reply_graph(corpus)
        positions = force_layout(
            graph, iterations=layout_iterations, seed=layout_seed
        )
        nodes = []
        for blogger_id in graph.nodes():
            blogger = corpus.blogger(blogger_id)
            x, y = positions[blogger_id]
            nodes.append(
                VizNode(
                    blogger_id,
                    blogger.name,
                    x,
                    y,
                    influence=report.scores.influence[blogger_id],
                    num_posts=len(corpus.posts_by(blogger_id)),
                    domain_scores=report.domain_influence.vector(blogger_id),
                )
            )
        edges = [
            VizEdge(source, target, int(weight))
            for source, target, weight in graph.edges()
        ]
        return cls(nodes, edges)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[VizNode]:
        """All nodes, sorted by id."""
        return [self._nodes[node_id] for node_id in sorted(self._nodes)]

    @property
    def edges(self) -> list[VizEdge]:
        """All edges in insertion order."""
        return list(self._edges)

    def node(self, blogger_id: str) -> VizNode:
        """One node (the double-click pop-up source) or KeyError."""
        return self._nodes[blogger_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def total_comments(self) -> int:
        """Sum of edge comment counts."""
        return sum(edge.comment_count for edge in self._edges)

    # ------------------------------------------------------------------
    # XML persistence
    # ------------------------------------------------------------------
    def to_element(self) -> ET.Element:
        """Encode as a ``<visualization>`` element."""
        root = ET.Element("visualization", {"version": "1.0"})
        nodes_el = ET.SubElement(root, "nodes")
        for node in self.nodes:
            node_el = ET.SubElement(
                nodes_el,
                "node",
                {
                    "id": node.blogger_id,
                    "name": sanitize_xml_text(node.name),
                    "x": repr(node.x),
                    "y": repr(node.y),
                    "influence": repr(node.influence),
                    "posts": str(node.num_posts),
                },
            )
            for domain in sorted(node.domain_scores):
                ET.SubElement(
                    node_el,
                    "domain",
                    {"name": domain, "score": repr(node.domain_scores[domain])},
                )
        edges_el = ET.SubElement(root, "edges")
        for edge in self._edges:
            ET.SubElement(
                edges_el,
                "edge",
                {
                    "from": edge.source,
                    "to": edge.target,
                    "comments": str(edge.comment_count),
                },
            )
        return root

    @classmethod
    def from_element(cls, root: ET.Element) -> "VisualizationGraph":
        """Decode a ``<visualization>`` element."""
        if root.tag != "visualization":
            raise XmlFormatError(f"expected <visualization>, got <{root.tag}>")
        nodes = []
        nodes_el = root.find("nodes")
        if nodes_el is None:
            raise XmlFormatError("<visualization> has no <nodes>")
        for node_el in nodes_el.findall("node"):
            try:
                nodes.append(
                    VizNode(
                        node_el.attrib["id"],
                        node_el.get("name", ""),
                        float(node_el.attrib["x"]),
                        float(node_el.attrib["y"]),
                        influence=float(node_el.get("influence", "0")),
                        num_posts=int(node_el.get("posts", "0")),
                        domain_scores={
                            d.attrib["name"]: float(d.attrib["score"])
                            for d in node_el.findall("domain")
                        },
                    )
                )
            except (KeyError, ValueError) as exc:
                raise XmlFormatError(f"bad <node> element: {exc}") from exc
        edges = []
        edges_el = root.find("edges")
        if edges_el is not None:
            for edge_el in edges_el.findall("edge"):
                try:
                    edges.append(
                        VizEdge(
                            edge_el.attrib["from"],
                            edge_el.attrib["to"],
                            int(edge_el.attrib["comments"]),
                        )
                    )
                except (KeyError, ValueError) as exc:
                    raise XmlFormatError(f"bad <edge> element: {exc}") from exc
        return cls(nodes, edges)

    def save_xml(self, path: str | Path) -> Path:
        """Write the graph to an XML file; returns the path."""
        path = Path(path)
        element = self.to_element()
        ET.indent(element)
        path.write_text(ET.tostring(element, encoding="unicode"),
                        encoding="utf-8")
        return path

    @classmethod
    def load_xml(cls, path: str | Path) -> "VisualizationGraph":
        """Read a graph previously written by :meth:`save_xml`."""
        try:
            root = ET.fromstring(Path(path).read_text(encoding="utf-8"))
        except ET.ParseError as exc:
            raise XmlFormatError(f"invalid visualization XML: {exc}") from exc
        return cls.from_element(root)
