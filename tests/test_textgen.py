"""Unit tests for the synthetic text generator."""

import random

import pytest

from repro.nlp import Sentiment, SentimentClassifier, tokenize, word_count
from repro.core import LexiconNoveltyDetector
from repro.data import Post
from repro.synth import DOMAIN_VOCABULARIES, TextGenerator


@pytest.fixture()
def gen() -> TextGenerator:
    return TextGenerator(random.Random(42))


class TestPostGeneration:
    def test_body_length_close_to_target(self, gen):
        body = gen.post_body({"Sports": 1.0}, words=100)
        assert 90 <= word_count(body) <= 110

    def test_domain_words_dominate(self, gen):
        body = gen.post_body({"Sports": 1.0}, words=300)
        tokens = set(tokenize(body))
        sports_hits = tokens & set(DOMAIN_VOCABULARIES["Sports"])
        art_hits = tokens & set(DOMAIN_VOCABULARIES["Art"])
        assert len(sports_hits) > len(art_hits)

    def test_mixture_weights_respected(self, gen):
        weights = {"Sports": 0.9, "Art": 0.1}
        body = gen.post_body(weights, words=500)
        tokens = tokenize(body)
        sports = sum(1 for t in tokens if t in DOMAIN_VOCABULARIES["Sports"])
        art = sum(1 for t in tokens if t in DOMAIN_VOCABULARIES["Art"])
        assert sports > art

    def test_zero_weights_fall_back(self, gen):
        body = gen.post_body({"Sports": 0.0}, words=50)
        assert word_count(body) >= 45

    def test_invalid_words(self, gen):
        with pytest.raises(ValueError):
            gen.post_body({"Sports": 1.0}, words=0)

    def test_title_from_domain(self, gen):
        title = gen.post_title("Travel")
        assert any(
            token in DOMAIN_VOCABULARIES["Travel"]
            for token in tokenize(title)
        )

    def test_deterministic_for_same_rng_seed(self):
        gen1 = TextGenerator(random.Random(7))
        gen2 = TextGenerator(random.Random(7))
        assert gen1.post_body({"Art": 1.0}, 60) == gen2.post_body(
            {"Art": 1.0}, 60
        )


class TestCopiedBody:
    def test_copy_marker_detected(self, gen):
        original = gen.post_body({"Travel": 1.0}, 60)
        copied = gen.copied_body(original)
        detector = LexiconNoveltyDetector()
        assert detector.is_copy(Post("p", "a", body=copied))
        assert original in copied


class TestComments:
    @pytest.mark.parametrize("sentiment", list(Sentiment))
    def test_sentiment_recoverable(self, gen, sentiment):
        classifier = SentimentClassifier()
        for _ in range(25):
            text = gen.comment_text(sentiment, "Sports")
            assert classifier.classify(text) is sentiment, text


class TestAdsAndProfiles:
    def test_advertisement_concentrated(self, gen):
        ad = gen.advertisement("Medicine", words=80)
        tokens = set(tokenize(ad))
        assert tokens & set(DOMAIN_VOCABULARIES["Medicine"])
        assert not tokens & set(DOMAIN_VOCABULARIES["Military"])

    def test_profile_reflects_weights(self, gen):
        profile = gen.profile({"Politics": 1.0}, words=60)
        assert set(tokenize(profile)) & set(DOMAIN_VOCABULARIES["Politics"])


class TestValidation:
    def test_bad_domain_mix(self):
        with pytest.raises(ValueError, match="domain_mix"):
            TextGenerator(random.Random(0), domain_mix=1.5)

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(ValueError, match="empty vocabulary"):
            TextGenerator(random.Random(0), domains={"X": []})
