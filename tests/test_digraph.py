"""Unit and property tests for the weighted digraph."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import Digraph

node = st.sampled_from(list("abcdefgh"))
edge = st.tuples(node, node)


def diamond() -> Digraph:
    graph = Digraph()
    graph.add_edges([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
    return graph


class TestConstruction:
    def test_add_edge_adds_nodes(self):
        graph = Digraph()
        graph.add_edge("x", "y")
        assert "x" in graph and "y" in graph
        assert graph.has_edge("x", "y")
        assert not graph.has_edge("y", "x")

    def test_parallel_edges_accumulate(self):
        graph = Digraph()
        graph.add_edge("x", "y", 1.0)
        graph.add_edge("x", "y", 2.5)
        assert graph.weight("x", "y") == 3.5
        assert graph.num_edges() == 1

    def test_nonpositive_weight_rejected(self):
        graph = Digraph()
        with pytest.raises(ValueError):
            graph.add_edge("x", "y", 0.0)
        with pytest.raises(ValueError):
            graph.add_edge("x", "y", -1.0)

    def test_add_node_idempotent(self):
        graph = Digraph()
        graph.add_node("x")
        graph.add_node("x")
        assert len(graph) == 1


class TestQueries:
    def test_nodes_sorted(self):
        graph = Digraph()
        for n in ["z", "a", "m"]:
            graph.add_node(n)
        assert graph.nodes() == ["a", "m", "z"]
        assert list(graph) == ["a", "m", "z"]

    def test_degrees(self):
        graph = diamond()
        assert graph.out_degree("a") == 2
        assert graph.in_degree("d") == 2
        assert graph.out_degree("d") == 0
        graph.add_edge("a", "b", 3.0)
        assert graph.out_degree("a", weighted=True) == 5.0

    def test_successors_predecessors_are_copies(self):
        graph = diamond()
        successors = graph.successors("a")
        successors["zzz"] = 1.0
        assert "zzz" not in graph.successors("a")

    def test_missing_node_queries(self):
        graph = Digraph()
        assert graph.successors("nope") == {}
        assert graph.weight("a", "b") == 0.0
        assert graph.out_degree("nope") == 0.0

    def test_edges_sorted(self):
        graph = diamond()
        assert graph.edges() == [
            ("a", "b", 1.0),
            ("a", "c", 1.0),
            ("b", "d", 1.0),
            ("c", "d", 1.0),
        ]


class TestNeighborhood:
    def test_radius_zero(self):
        assert diamond().neighborhood("a", 0) == {"a"}

    def test_radius_one_undirected(self):
        # d's radius-1 includes predecessors b and c.
        assert diamond().neighborhood("d", 1) == {"b", "c", "d"}

    def test_radius_two_covers_diamond(self):
        assert diamond().neighborhood("a", 2) == {"a", "b", "c", "d"}

    def test_unknown_seed_rejected(self):
        with pytest.raises(KeyError):
            diamond().neighborhood("zz", 1)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            diamond().neighborhood("a", -1)


class TestDerived:
    def test_subgraph(self):
        sub = diamond().subgraph(["a", "b", "d"])
        assert sub.nodes() == ["a", "b", "d"]
        assert sub.has_edge("a", "b")
        assert sub.has_edge("b", "d")
        assert not sub.has_edge("a", "c")

    def test_subgraph_ignores_unknown(self):
        sub = diamond().subgraph(["a", "ghost"])
        assert sub.nodes() == ["a"]

    def test_reversed(self):
        rev = diamond().reversed()
        assert rev.has_edge("b", "a")
        assert not rev.has_edge("a", "b")
        assert rev.num_edges() == 4

    @given(st.lists(edge, max_size=30))
    def test_reverse_involution(self, edges):
        graph = Digraph()
        for source, target in edges:
            graph.add_edge(source, target)
        double = graph.reversed().reversed()
        assert double.edges() == graph.edges()

    @given(st.lists(edge, max_size=30))
    def test_degree_sums_match_edge_count(self, edges):
        graph = Digraph()
        for source, target in edges:
            graph.add_edge(source, target)
        total_out = sum(graph.out_degree(n) for n in graph)
        total_in = sum(graph.in_degree(n) for n in graph)
        assert total_out == total_in == graph.num_edges()
