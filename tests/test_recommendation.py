"""Unit tests for Scenario 2 (personalized recommendation)."""

import pytest

from repro.apps import RecommendationEngine
from repro.errors import ParameterError
from repro.nlp import NaiveBayesClassifier


@pytest.fixture(scope="module")
def engine(medium_model_and_report) -> RecommendationEngine:
    model, report = medium_model_and_report
    return RecommendationEngine(report, model.classifier)


class TestNewUserPath:
    def test_profile_drives_domain(self, engine, medium_blogosphere):
        _, truth = medium_blogosphere
        rec = engine.recommend_for_profile(
            "I love painting and sculpture, often visit the gallery "
            "and study the renaissance masters and impressionism",
            k=3,
        )
        assert rec.interest_vector.dominant_domain() == "Art"
        true_top = set(truth.top_true_influencers("Art", 5))
        assert set(rec.blogger_ids) & true_top

    def test_empty_profile_rejected(self, engine):
        with pytest.raises(ParameterError, match="empty"):
            engine.recommend_for_profile("")

    def test_exclude_honored(self, engine):
        baseline = engine.recommend_for_profile("travel flight hotel", k=1)
        top = baseline.blogger_ids[0]
        excluded = engine.recommend_for_profile(
            "travel flight hotel", k=1, exclude=top
        )
        assert top not in excluded.blogger_ids


class TestExistingBloggerPath:
    def test_domain_mode_excludes_self(self, engine, medium_report):
        domain_top = [
            b for b, _ in medium_report.top_influencers(1, "Sports")
        ]
        requester = domain_top[0]
        rec = engine.recommend_for_blogger(requester, k=3, domain="Sports")
        assert requester not in rec.blogger_ids
        assert len(rec.blogger_ids) == 3

    def test_unknown_domain_rejected(self, engine, medium_blogosphere):
        corpus, _ = medium_blogosphere
        blogger_id = corpus.blogger_ids()[0]
        with pytest.raises(ParameterError, match="unknown domain"):
            engine.recommend_for_blogger(blogger_id, domain="Astrology")

    def test_profile_mode_mines_interests(self, engine, medium_blogosphere):
        corpus, truth = medium_blogosphere
        # Pick a blogger with a strong primary domain.
        blogger_id = truth.planted_influencers("Travel")[0]
        rec = engine.recommend_for_blogger(blogger_id, k=3)
        assert blogger_id not in rec.blogger_ids
        assert rec.interest_vector.dominant_domain() == "Travel"

    def test_unknown_blogger_rejected(self, engine):
        from repro.errors import CorpusError

        with pytest.raises(CorpusError):
            engine.recommend_for_blogger("ghost")

    def test_blogger_without_text_rejected(self, medium_model_and_report):
        from repro.core import MassModel
        from repro.data import CorpusBuilder
        from repro.synth import DOMAIN_VOCABULARIES

        builder = CorpusBuilder()
        builder.blogger("silent")  # no profile, no posts
        builder.blogger("other")
        builder.post("other", body="sports game match")
        corpus = builder.build()
        model = MassModel(domain_seed_words=DOMAIN_VOCABULARIES)
        report = model.fit(corpus)
        engine = RecommendationEngine(report, model.classifier)
        with pytest.raises(ParameterError, match="no profile or posts"):
            engine.recommend_for_blogger("silent")


class TestConstruction:
    def test_domain_mismatch_rejected(self, medium_report):
        other = NaiveBayesClassifier.from_seed_vocabulary(
            {"X": ["x"], "Y": ["y"]}
        )
        with pytest.raises(ParameterError, match="do not match"):
            RecommendationEngine(medium_report, other)
