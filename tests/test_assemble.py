"""Unit tests for the corpus → CSR compilation layer.

Covers the flat-array invariants of :class:`CompiledSystem`, the
constant-term formula, the citation ablation folding, and the
:class:`AssemblyCache` dirty-row refresh semantics the incremental
analyzer relies on.
"""

from __future__ import annotations

import pytest

from repro.core import AssemblyCache, CommentModel, MassParameters, compile_system
from repro.core.quality import QualityScorer
from repro.core.solver import compute_gl_scores
from repro.data import CorpusBuilder


def quality_scores(corpus, params):
    scorer = QualityScorer(params, posts=corpus.posts.values())
    return {
        post_id: scorer.score(corpus.post(post_id))
        for post_id in sorted(corpus.posts)
    }


def compiled_for(corpus, params=None):
    params = params or MassParameters()
    comment_model = CommentModel(corpus, params)
    quality = quality_scores(corpus, params)
    gl = compute_gl_scores(corpus, params)
    return compile_system(corpus, params, comment_model, quality, gl), (
        params, comment_model, quality, gl
    )


class TestCompiledSystem:
    def test_csr_shape_invariants(self, fig1_corpus):
        compiled, _ = compiled_for(fig1_corpus)
        n = compiled.num_bloggers
        assert n == len(fig1_corpus.bloggers)
        assert len(compiled.row_ptr) == n + 1
        assert compiled.row_ptr[0] == 0
        assert compiled.row_ptr[-1] == compiled.nnz
        assert len(compiled.col_idx) == compiled.nnz
        assert list(compiled.row_ptr) == sorted(compiled.row_ptr)
        assert all(0 <= col < n for col in compiled.col_idx)
        assert len(compiled.post_ids) == len(fig1_corpus.posts)
        assert len(compiled.post_row_ptr) == len(compiled.post_ids) + 1

    def test_index_inverts_row_order(self, fig1_corpus):
        compiled, _ = compiled_for(fig1_corpus)
        for row, blogger_id in enumerate(compiled.blogger_ids):
            assert compiled.index[blogger_id] == row

    def test_rows_match_comment_model(self, fig1_corpus):
        compiled, (params, comment_model, _, _) = compiled_for(fig1_corpus)
        for blogger_id in compiled.blogger_ids:
            expected = []
            for post in sorted(
                fig1_corpus.posts_by(blogger_id), key=lambda p: p.post_id
            ):
                for term in comment_model.terms_for(post.post_id):
                    expected.append(
                        (term.commenter_id, term.citation_weight)
                    )
            actual = compiled.row_terms(blogger_id)
            assert [c for c, _ in actual] == [c for c, _ in expected]
            for (_, got), (_, want) in zip(actual, expected):
                assert got == pytest.approx(want, abs=1e-15)

    def test_constant_term_formula(self, fig1_corpus):
        compiled, (params, _, quality, gl) = compiled_for(fig1_corpus)
        for row, blogger_id in enumerate(compiled.blogger_ids):
            quality_sum = sum(
                quality[post.post_id]
                for post in fig1_corpus.posts_by(blogger_id)
            )
            expected = (
                params.alpha * params.beta * quality_sum
                + (1.0 - params.alpha) * gl.get(blogger_id, 0.0)
            )
            assert compiled.constant[row] == pytest.approx(
                expected, abs=1e-12
            )

    def test_citation_off_folds_into_constant(self, fig1_corpus):
        params = MassParameters(use_citation=False)
        compiled, (_, comment_model, _, _) = compiled_for(
            fig1_corpus, params
        )
        # The comment matrix vanishes: CommentScore is influence-free.
        assert compiled.nnz == 0
        # But the SF sums survive as the scatter-stage closed form.
        for k, post_id in enumerate(compiled.post_ids):
            assert compiled.post_sf_sum[k] == pytest.approx(
                sum(t.sf for t in comment_model.terms_for(post_id)),
                abs=1e-12,
            )

    def test_coupling_scalar(self, fig1_corpus):
        params = MassParameters(alpha=0.7, beta=0.4)
        compiled, _ = compiled_for(fig1_corpus, params)
        assert compiled.coupling == pytest.approx(0.7 * 0.6)


def grown_copy(corpus, *, bloggers=(), posts=(), comments=(), links=()):
    from repro.core.incremental import _copy_corpus

    grown = _copy_corpus(corpus)
    grown.extend(bloggers=bloggers, posts=posts, comments=comments,
                 links=links)
    return grown.freeze()


class TestAssemblyCache:
    def build_corpus(self):
        builder = CorpusBuilder()
        for name in ("ann", "ben", "cat", "dan"):
            builder.blogger(name)
        p1 = builder.post("ann", body="gardens and roses bloom " * 6)
        p2 = builder.post("ben", body="stadium games and scores " * 4)
        p3 = builder.post("cat", body="markets rise and fall " * 5)
        builder.comment(p1.post_id, "ben", text="I agree, wonderful")
        builder.comment(p1.post_id, "cat", text="boring and wrong")
        builder.comment(p2.post_id, "dan", text="great match report")
        builder.link("ben", "ann").link("cat", "ann").link("dan", "ben")
        return builder.build().freeze(), (p1, p2, p3)

    def compile_with(self, cache, corpus, params=None):
        params = params or MassParameters()
        comment_model = CommentModel(
            corpus, params, sentiment_cache=cache.sentiment_cache
        )
        quality = quality_scores(corpus, params)
        gl = compute_gl_scores(corpus, params)
        return cache.compile(corpus, params, comment_model, quality, gl)

    def test_first_compile_is_cold(self):
        corpus, _ = self.build_corpus()
        cache = AssemblyCache()
        compiled = self.compile_with(cache, corpus)
        assert cache.last_mode == "cold"
        assert cache.last_dirty_rows == compiled.num_bloggers

    def test_refresh_matches_cold_compile(self):
        from repro.data import Comment

        corpus, (p1, _, _) = self.build_corpus()
        cache = AssemblyCache()
        self.compile_with(cache, corpus)

        new_comment = Comment("c-new", p1.post_id, "dan",
                              text="excellent, I support this")
        grown = grown_copy(corpus, comments=[new_comment])
        cache.note_delta(comments=[(p1.post_id, "dan")])
        refreshed = self.compile_with(cache, grown)
        assert cache.last_mode == "refresh"
        assert cache.last_dirty_rows < refreshed.num_bloggers

        cold, _ = compiled_for(grown)
        assert refreshed.blogger_ids == cold.blogger_ids
        assert list(refreshed.row_ptr) == list(cold.row_ptr)
        assert list(refreshed.col_idx) == list(cold.col_idx)
        assert list(refreshed.weights) == pytest.approx(
            list(cold.weights), abs=1e-15
        )
        assert list(refreshed.constant) == pytest.approx(
            list(cold.constant), abs=1e-15
        )
        assert list(refreshed.post_weights) == pytest.approx(
            list(cold.post_weights), abs=1e-15
        )

    def test_tc_change_dirties_other_rows(self):
        from repro.data import Comment

        corpus, (p1, p2, p3) = self.build_corpus()
        cache = AssemblyCache()
        self.compile_with(cache, corpus)

        # ben already comments on ann's p1; a new ben comment on cat's
        # p3 changes TC(ben), so ann's row weights are stale too.
        new_comment = Comment("c-tc", p3.post_id, "ben",
                              text="interesting analysis")
        grown = grown_copy(corpus, comments=[new_comment])
        cache.note_delta(comments=[(p3.post_id, "ben")])
        refreshed = self.compile_with(cache, grown)
        assert cache.last_mode == "refresh"

        cold, _ = compiled_for(grown)
        assert list(refreshed.weights) == pytest.approx(
            list(cold.weights), abs=1e-15
        )

    def test_new_blogger_appends_rows(self):
        from repro.data import Blogger, Comment, Post

        corpus, _ = self.build_corpus()
        cache = AssemblyCache()
        old = self.compile_with(cache, corpus)

        post = Post("p-new", "eve", body="travel diary from the coast " * 3)
        comment = Comment("c-eve", post.post_id, "ann",
                          text="I agree, lovely trip")
        grown = grown_copy(
            corpus, bloggers=[Blogger("eve")], posts=[post],
            comments=[comment],
        )
        cache.note_delta(
            bloggers=["eve"], posts=["p-new"],
            comments=[(post.post_id, "ann")],
        )
        refreshed = self.compile_with(cache, grown)
        assert cache.last_mode == "refresh"
        # Old rows keep their positions; the new blogger is appended.
        assert refreshed.blogger_ids[: old.num_bloggers] == old.blogger_ids
        assert refreshed.blogger_ids[-1] == "eve"

    def test_param_change_forces_cold(self):
        corpus, _ = self.build_corpus()
        cache = AssemblyCache()
        self.compile_with(cache, corpus)
        self.compile_with(cache, corpus, MassParameters(alpha=0.7))
        assert cache.last_mode == "cold"

    def test_invalidate_forces_cold(self):
        corpus, _ = self.build_corpus()
        cache = AssemblyCache()
        self.compile_with(cache, corpus)
        cache.invalidate()
        self.compile_with(cache, corpus)
        assert cache.last_mode == "cold"

    def test_unrecorded_growth_forces_cold(self):
        from repro.data import Comment

        corpus, (p1, _, _) = self.build_corpus()
        cache = AssemblyCache()
        self.compile_with(cache, corpus)
        # Grow the corpus without note_delta: the shape guard trips.
        grown = grown_copy(
            corpus,
            comments=[Comment("c-x", p1.post_id, "dan", text="nice")],
        )
        self.compile_with(cache, grown)
        assert cache.last_mode == "cold"

    def test_sentiment_cache_reused(self):
        corpus, _ = self.build_corpus()
        cache = AssemblyCache()
        self.compile_with(cache, corpus)
        cached = dict(cache.sentiment_cache)
        assert cached  # every comment classified once
        self.compile_with(cache, corpus)
        assert cache.sentiment_cache == cached
