"""Unit tests for domain-specific influence (Eq. 5)."""

import math

import pytest

from repro.core import DomainInfluence, InfluenceSolver, MassParameters
from repro.errors import ParameterError
from repro.nlp import NaiveBayesClassifier


@pytest.fixture(scope="module")
def fig1_domain_influence(fig1_corpus, fig1_seed_words):
    scores = InfluenceSolver(fig1_corpus, MassParameters()).solve()
    classifier = NaiveBayesClassifier.from_seed_vocabulary(fig1_seed_words)
    return DomainInfluence.from_classifier(fig1_corpus, scores, classifier), scores


class TestEq5:
    def test_vector_sums_post_contributions(self, fig1_domain_influence,
                                            fig1_corpus):
        domain_influence, scores = fig1_domain_influence
        vector = domain_influence.vector("amery")
        # Eq. 5: sum over amery's posts of Inf(post) * iv(post, domain).
        for domain in ("Computer", "Economics"):
            expected = sum(
                scores.post_influence[post.post_id]
                * domain_influence.post_membership(post.post_id)[domain]
                for post in fig1_corpus.posts_by("amery")
            )
            assert math.isclose(vector[domain], expected, abs_tol=1e-12)

    def test_domain_split_matches_figure(self, fig1_domain_influence):
        domain_influence, _ = fig1_domain_influence
        # Amery: post1 CS, post2 Econ -> influence in both domains.
        vector = domain_influence.vector("amery")
        assert vector["Computer"] > 0.1
        assert vector["Economics"] > 0.1
        # Helen posts only CS.
        helen = domain_influence.vector("helen")
        assert helen["Computer"] > helen["Economics"] * 5

    def test_domain_totals_bounded_by_total_ap(self, fig1_domain_influence,
                                               fig1_corpus):
        domain_influence, scores = fig1_domain_influence
        for blogger_id in fig1_corpus.blogger_ids():
            vector = domain_influence.vector(blogger_id)
            # Memberships sum to 1 per post, so Σ_t Inf(b, C_t) = AP(b).
            assert math.isclose(
                sum(vector.values()), scores.ap[blogger_id], abs_tol=1e-9
            )


class TestRankings:
    def test_amery_tops_both_domains(self, fig1_domain_influence):
        domain_influence, _ = fig1_domain_influence
        assert domain_influence.ranking("Computer", 1)[0][0] == "amery"
        assert domain_influence.ranking("Economics", 1)[0][0] == "amery"

    def test_ranking_full_when_k_none(self, fig1_domain_influence):
        domain_influence, _ = fig1_domain_influence
        assert len(domain_influence.ranking("Computer")) == 9

    def test_unknown_domain_rejected(self, fig1_domain_influence):
        domain_influence, _ = fig1_domain_influence
        with pytest.raises(ParameterError, match="unknown domain"):
            domain_influence.ranking("Astrology")
        with pytest.raises(ParameterError, match="unknown domain"):
            domain_influence.score("amery", "Astrology")


class TestWeightedScores:
    def test_dot_product(self, fig1_domain_influence):
        domain_influence, _ = fig1_domain_influence
        interest = {"Computer": 1.0, "Economics": 0.0}
        weighted = domain_influence.weighted_scores(interest)
        assert math.isclose(
            weighted["amery"], domain_influence.score("amery", "Computer")
        )

    def test_unknown_interest_domain_rejected(self, fig1_domain_influence):
        domain_influence, _ = fig1_domain_influence
        with pytest.raises(ParameterError, match="unknown domains"):
            domain_influence.weighted_scores({"Astrology": 1.0})


class TestConstruction:
    def test_missing_memberships_rejected(self, fig1_corpus):
        scores = InfluenceSolver(fig1_corpus).solve()
        with pytest.raises(ParameterError, match="memberships missing"):
            DomainInfluence(fig1_corpus, scores, {}, ["Computer"])

    def test_empty_domains_rejected(self, fig1_corpus):
        scores = InfluenceSolver(fig1_corpus).solve()
        with pytest.raises(ParameterError, match="at least one domain"):
            DomainInfluence(fig1_corpus, scores, {}, [])
