"""Concurrency: readers hammer the engine while snapshots swap.

The serving contract under refresh is:

1. **No torn reads** — every response is internally consistent with
   exactly one epoch: its ``epoch`` stamp names a snapshot that really
   existed, and its payload is byte-identical to the batch answer of
   that epoch's analysis (a response mixing two analyses would match
   neither).
2. **No stale cache hits** — the result cache is keyed on the epoch, so
   after a swap a repeated query must be answered from (and stamped
   with) the new epoch, never from the old epoch's entry.
"""

import threading

import pytest

from repro.core import CorpusDelta, MassParameters, top_k
from repro.data import Blogger, Comment, Link, Post
from repro.serve import QueryEngine, SnapshotStore
from repro.synth import BlogosphereConfig, generate_blogosphere

WEIGHTS = {"Sports": 0.6, "Art": 0.4}
NUM_READERS = 4
NUM_SWAPS = 4


@pytest.fixture()
def store():
    corpus, _ = generate_blogosphere(
        BlogosphereConfig(num_bloggers=60, posts_per_blogger=3), seed=41
    )
    store = SnapshotStore(corpus, params=MassParameters())
    yield store
    store.close()


def make_delta(seq):
    anchor = "blogger-0000"
    new_id = f"hammer-{seq:02d}"
    post = Post(f"hammerpost-{seq:02d}", new_id,
                body="fresh thoughts on the stadium marathon game " * 3,
                created_day=200 + seq)
    comment = Comment(f"hammercomment-{seq:02d}", post.post_id, anchor,
                      text="what a wonderful insightful read",
                      created_day=201 + seq)
    return CorpusDelta(
        bloggers=[Blogger(new_id)],
        posts=[post],
        comments=[comment],
        links=[Link(anchor, new_id)],
    )


def expected_answers(report):
    """Ground-truth batch answers for the query mix the readers issue."""
    canonical = dict(sorted(WEIGHTS.items()))
    return {
        "top": tuple(report.top_influencers(5)),
        "top_sports": tuple(report.top_influencers(3, "Sports")),
        "weighted": tuple(top_k(
            report.domain_influence.weighted_scores(canonical), 5
        )),
    }


class TestHammering:
    def test_no_torn_reads_and_no_stale_cache(self, store):
        engine = QueryEngine(store, cache_size=64)
        truth = {store.snapshot.epoch: expected_answers(store.report)}
        observations = []
        observations_lock = threading.Lock()
        failures = []
        writer_done = threading.Event()

        def reader():
            local = []
            try:
                while not writer_done.is_set() or len(local) < 30:
                    for kind, result in (
                        ("top", engine.top(5)),
                        ("top_sports", engine.top(3, domain="Sports")),
                        ("weighted", engine.query(WEIGHTS, 5)),
                    ):
                        local.append((kind, result.epoch, result.results))
                    if len(local) > 3000:
                        break
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)
            with observations_lock:
                observations.extend(local)

        def writer():
            try:
                for seq in range(NUM_SWAPS):
                    store.submit(make_delta(seq))
                    fresh = store.refresh_now()
                    # store.report is the analysis `fresh` was compiled
                    # from; it only changes inside refresh_now, which
                    # this thread owns.
                    truth[fresh.epoch] = expected_answers(store.report)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)
            finally:
                writer_done.set()

        threads = [threading.Thread(target=reader)
                   for _ in range(NUM_READERS)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures

        assert len(truth) == NUM_SWAPS + 1  # every swap made a new epoch
        epochs_seen = {epoch for _, epoch, _ in observations}
        assert epochs_seen <= set(truth), "response stamped with a " \
            "never-existing epoch"
        for kind, epoch, results in observations:
            # Internally consistent with exactly the stamped epoch's
            # analysis — a torn or stale-cache read would mismatch.
            assert results == truth[epoch][kind], (
                f"{kind} response at epoch {epoch[:12]} does not match "
                f"that epoch's batch answer"
            )

    def test_cache_never_serves_a_previous_epoch(self, store):
        engine = QueryEngine(store, cache_size=64)
        first = engine.top(5)
        assert engine.top(5).cached  # primed at the first epoch

        store.submit(make_delta(99))
        fresh = store.refresh_now()
        assert fresh.epoch != first.epoch

        after = engine.top(5)
        assert after.epoch == fresh.epoch
        assert not after.cached  # the old entry is unreachable by key
        assert after.results == tuple(store.report.top_influencers(5))
        # And the new epoch primes its own entry.
        again = engine.top(5)
        assert again.cached and again.epoch == fresh.epoch
