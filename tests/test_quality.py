"""Unit tests for QualityScore (length × novelty, Eq. 2)."""

import math

from repro.core import MassParameters, QualityScorer
from repro.data import Post


def post(words: int, post_id: str = "p", body_word: str = "word") -> Post:
    return Post(post_id, "a", body=" ".join([body_word] * words))


class TestLengthMeasures:
    def test_raw_is_word_count(self):
        scorer = QualityScorer(MassParameters(length_normalization="raw"))
        assert scorer.length_value(post(17)) == 17.0

    def test_log_is_log1p(self):
        scorer = QualityScorer(MassParameters(length_normalization="log"))
        assert math.isclose(scorer.length_value(post(9)), math.log(10))

    def test_max_normalizes_to_unit(self):
        posts = [post(10, "p1"), post(40, "p2")]
        scorer = QualityScorer(MassParameters(), posts=posts)
        assert math.isclose(scorer.length_value(posts[1]), 1.0)
        assert math.isclose(scorer.length_value(posts[0]), 0.25)

    def test_max_with_empty_population(self):
        scorer = QualityScorer(MassParameters(), posts=[])
        assert scorer.length_value(post(10)) == 0.0

    def test_longer_never_scores_lower(self):
        posts = [post(n, f"p{n}") for n in (5, 20, 80)]
        for mode in ("raw", "log", "max"):
            scorer = QualityScorer(
                MassParameters(length_normalization=mode), posts=posts
            )
            values = [scorer.length_value(p) for p in posts]
            assert values == sorted(values)


class TestNovelty:
    def test_copied_post_penalized(self):
        posts = [post(30, "orig")]
        copied = Post("copy", "a", body="reposted from x. " + " ".join(["w"] * 30))
        scorer = QualityScorer(MassParameters(), posts=posts + [copied])
        assert scorer.novelty_value(copied) == MassParameters().novelty_copied
        assert scorer.score(copied) < scorer.score(posts[0])

    def test_novelty_facet_disabled(self):
        copied = Post("copy", "a", body="reposted from x. content")
        scorer = QualityScorer(
            MassParameters(use_novelty=False), posts=[copied]
        )
        assert scorer.novelty_value(copied) == 1.0

    def test_custom_detector_used(self):
        from repro.core import LexiconNoveltyDetector

        detector = LexiconNoveltyDetector(phrases=["zzz marker"],
                                          copied_value=0.01)
        flagged = Post("p", "a", body="zzz marker text here")
        scorer = QualityScorer(MassParameters(), novelty_detector=detector,
                               posts=[flagged])
        assert scorer.novelty_value(flagged) == 0.01


class TestScore:
    def test_score_is_product(self):
        posts = [post(50, "p1")]
        scorer = QualityScorer(
            MassParameters(length_normalization="raw"), posts=posts
        )
        assert scorer.score(posts[0]) == 50.0 * 1.0

    def test_title_not_counted_in_length(self):
        with_title = Post("p1", "a", title="long long long title",
                          body="two words")
        scorer = QualityScorer(
            MassParameters(length_normalization="raw"), posts=[with_title]
        )
        assert scorer.length_value(with_title) == 2.0
