"""Unit and property tests for vectorization utilities."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nlp import (
    TfidfVectorizer,
    bag_of_words,
    cosine_similarity,
    dot_product,
    normalize,
    term_frequencies,
    top_terms,
)

word = st.sampled_from(["apple", "banana", "cherry", "date", "elder"])
sparse_vec = st.dictionaries(word, st.floats(-5, 5, allow_nan=False), max_size=5)


class TestBagOfWords:
    def test_counts(self):
        assert bag_of_words("cat cat dog") == {"cat": 2, "dog": 1}

    def test_stopwords_removed_by_default(self):
        assert "the" not in bag_of_words("the cat")

    def test_stopwords_kept_when_disabled(self):
        assert bag_of_words("the cat", use_stopwords=False)["the"] == 1


class TestTermFrequencies:
    def test_normalized(self):
        tf = term_frequencies("cat cat dog")
        assert math.isclose(tf["cat"], 2 / 3)
        assert math.isclose(sum(tf.values()), 1.0)

    def test_empty(self):
        assert term_frequencies("") == {}


class TestSparseOps:
    def test_dot_product(self):
        assert dot_product({"a": 2.0}, {"a": 3.0, "b": 1.0}) == 6.0

    def test_dot_disjoint(self):
        assert dot_product({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_normalize_unit_norm(self):
        vec = normalize({"a": 3.0, "b": 4.0})
        assert math.isclose(vec["a"] ** 2 + vec["b"] ** 2, 1.0)

    def test_normalize_zero_vector(self):
        assert normalize({"a": 0.0}) == {"a": 0.0}

    def test_cosine_identical(self):
        assert math.isclose(cosine_similarity({"a": 2.0}, {"a": 5.0}), 1.0)

    def test_cosine_orthogonal(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_cosine_zero_vector(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0

    @given(sparse_vec, sparse_vec)
    def test_dot_symmetric(self, left, right):
        assert math.isclose(
            dot_product(left, right), dot_product(right, left), abs_tol=1e-9
        )

    @given(sparse_vec, sparse_vec)
    def test_cosine_bounded(self, left, right):
        value = cosine_similarity(left, right)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestTfidf:
    DOCS = ["cat dog", "cat fish", "cat bird bird"]

    def test_requires_fit(self):
        with pytest.raises(ValueError, match="not fitted"):
            TfidfVectorizer().transform("cat")
        with pytest.raises(ValueError, match="not fitted"):
            TfidfVectorizer().idf("cat")

    def test_fit_empty_rejected(self):
        with pytest.raises(ValueError, match="zero documents"):
            TfidfVectorizer().fit([])

    def test_common_term_low_idf(self):
        vectorizer = TfidfVectorizer().fit(self.DOCS)
        assert vectorizer.idf("cat") < vectorizer.idf("fish")

    def test_unseen_term_max_idf(self):
        vectorizer = TfidfVectorizer().fit(self.DOCS)
        assert vectorizer.idf("zebra") >= vectorizer.idf("fish")

    def test_transform_unit_norm(self):
        vectorizer = TfidfVectorizer().fit(self.DOCS)
        vec = vectorizer.transform("cat bird")
        norm = math.sqrt(sum(v * v for v in vec.values()))
        assert math.isclose(norm, 1.0)

    def test_fit_transform_shape(self):
        vectors = TfidfVectorizer().fit_transform(self.DOCS)
        assert len(vectors) == 3
        assert all(isinstance(v, dict) for v in vectors)


class TestTopTerms:
    def test_orders_by_weight_then_name(self):
        vec = {"b": 2.0, "a": 2.0, "c": 1.0}
        assert top_terms(vec, 2) == [("a", 2.0), ("b", 2.0)]
