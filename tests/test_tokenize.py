"""Unit and property tests for tokenization primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nlp import ngrams, sentences, shingles, tokenize, word_count


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello WORLD") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert tokenize("well, done!") == ["well", "done"]

    def test_keeps_contractions(self):
        assert tokenize("don't stop") == ["don't", "stop"]

    def test_numbers_kept(self):
        assert tokenize("42 reasons") == ["42", "reasons"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \n\t ") == []

    def test_unicode_stripped(self):
        # Non-ASCII letters are treated as separators by design.
        assert tokenize("café society") == ["caf", "society"]

    @given(st.text())
    def test_tokens_are_lowercase_nonempty(self, text):
        for token in tokenize(text):
            assert token
            assert token == token.lower()

    @given(st.text())
    def test_idempotent_on_joined_tokens(self, text):
        tokens = tokenize(text)
        assert tokenize(" ".join(tokens)) == tokens


class TestWordCount:
    def test_counts_tokens(self):
        assert word_count("one two three!") == 3

    def test_empty(self):
        assert word_count("") == 0

    @given(st.text())
    def test_matches_tokenize(self, text):
        assert word_count(text) == len(tokenize(text))


class TestSentences:
    def test_splits_on_terminators(self):
        assert sentences("One. Two! Three?") == ["One", "Two", "Three"]

    def test_no_terminator(self):
        assert sentences("no end") == ["no end"]

    def test_empty(self):
        assert sentences("") == []


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_n_longer_than_sequence(self):
        assert list(ngrams(["a"], 2)) == []

    def test_unigrams(self):
        assert list(ngrams(["a", "b"], 1)) == [("a",), ("b",)]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))

    @given(st.lists(st.text(min_size=1), max_size=20), st.integers(1, 5))
    def test_count_formula(self, tokens, n):
        expected = max(0, len(tokens) - n + 1)
        assert len(list(ngrams(tokens, n))) == expected


class TestShingles:
    def test_shared_shingles_detect_overlap(self):
        a = shingles("the quick brown fox jumps over the lazy dog", k=3)
        b = shingles("quick brown fox jumps", k=3)
        assert b <= a

    def test_short_text_no_shingles(self):
        assert shingles("too short", k=4) == set()
