"""Unit and property tests for top-k selection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import full_ranking, rank_of, top_k

scores_strategy = st.dictionaries(
    st.text(st.characters(categories=["Ll"]), min_size=1, max_size=4),
    st.floats(-100, 100, allow_nan=False),
    max_size=20,
)


class TestTopK:
    SCORES = {"a": 3.0, "b": 1.0, "c": 3.0, "d": 2.0}

    def test_orders_by_score_then_id(self):
        assert top_k(self.SCORES, 3) == [("a", 3.0), ("c", 3.0), ("d", 2.0)]

    def test_k_zero(self):
        assert top_k(self.SCORES, 0) == []

    def test_k_larger_than_population(self):
        assert len(top_k(self.SCORES, 99)) == 4

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            top_k(self.SCORES, -1)

    def test_exclude(self):
        result = top_k(self.SCORES, 2, exclude={"a", "c"})
        assert result == [("d", 2.0), ("b", 1.0)]

    def test_empty_scores(self):
        assert top_k({}, 3) == []

    @given(scores_strategy, st.integers(0, 25))
    def test_topk_is_prefix_of_full_ranking(self, scores, k):
        assert top_k(scores, k) == full_ranking(scores)[:k]

    @given(scores_strategy)
    def test_full_ranking_sorted_desc(self, scores):
        ranking = full_ranking(scores)
        values = [score for _, score in ranking]
        assert values == sorted(values, reverse=True)
        assert len(ranking) == len(scores)


class TestRankedScores:
    SCORES = {"a": 3.0, "b": 1.0, "c": 3.0, "d": 2.0}

    def _ranked(self, scores=None):
        from repro.core.topk import RankedScores

        return RankedScores(self.SCORES if scores is None else scores)

    def test_ranking_matches_full_ranking(self):
        assert self._ranked().ranking() == full_ranking(self.SCORES)

    def test_top_matches_top_k(self):
        ranked = self._ranked()
        for k in range(6):
            assert ranked.top(k) == top_k(self.SCORES, k)

    def test_exclude_matches_top_k(self):
        ranked = self._ranked()
        assert ranked.top(2, exclude={"a", "c"}) == top_k(
            self.SCORES, 2, exclude={"a", "c"}
        )

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            self._ranked().top(-1)

    def test_len_contains_score(self):
        ranked = self._ranked()
        assert len(ranked) == 4
        assert "a" in ranked and "zzz" not in ranked
        assert ranked.score("d") == 2.0

    def test_patched_repositions_changed_ids(self):
        ranked = self._ranked()
        patched = ranked.patched({"b": 9.0, "e": 2.5})
        expected = dict(self.SCORES, b=9.0, e=2.5)
        assert patched.ranking() == full_ranking(expected)
        # the receiver is untouched
        assert ranked.ranking() == full_ranking(self.SCORES)

    def test_patched_preserves_signed_zero(self):
        import math

        ranked = self._ranked({"a": 0.0}).patched({"a": -0.0})
        ((_, value),) = ranked.ranking()
        assert math.copysign(1.0, value) == -1.0

    @given(scores_strategy)
    def test_ranking_equals_full_ranking(self, scores):
        assert self._ranked(scores).ranking() == full_ranking(scores)

    @given(scores_strategy, scores_strategy)
    def test_patched_equals_rebuild(self, scores, changes):
        patched = self._ranked(scores).patched(changes)
        merged = dict(scores)
        merged.update(changes)
        assert patched.ranking() == full_ranking(merged)


class TestRankOf:
    def test_basic_ranks(self):
        scores = {"a": 3.0, "b": 1.0, "c": 2.0}
        assert rank_of(scores, "a") == 1
        assert rank_of(scores, "c") == 2
        assert rank_of(scores, "b") == 3

    def test_tie_breaks_by_id(self):
        scores = {"x": 2.0, "a": 2.0}
        assert rank_of(scores, "a") == 1
        assert rank_of(scores, "x") == 2

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            rank_of({"a": 1.0}, "zzz")

    @given(scores_strategy.filter(lambda d: len(d) >= 1))
    def test_rank_consistent_with_ranking(self, scores):
        ranking = full_ranking(scores)
        for position, (item_id, _) in enumerate(ranking, start=1):
            assert rank_of(scores, item_id) == position


@pytest.fixture(scope="module")
def validation_report(fig1_corpus, fig1_seed_words):
    from repro.core import MassModel

    return MassModel(domain_seed_words=fig1_seed_words).fit(fig1_corpus)


class TestTopInfluencersValidation:
    """k <= 0 and unknown domains raise instead of returning []."""

    @pytest.mark.parametrize("k", [0, -1, -7])
    def test_report_rejects_nonpositive_k(self, validation_report, k):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="k >= 1"):
            validation_report.top_influencers(k)

    @pytest.mark.parametrize("k", [0, -3])
    def test_report_rejects_nonpositive_k_in_domain(self, validation_report, k):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="k >= 1"):
            validation_report.top_influencers(k, domain="Computer")

    def test_report_rejects_unknown_domain(self, validation_report):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown domain"):
            validation_report.top_influencers(3, domain="Astrology")

    def test_system_path_raises_too(self, fig1_corpus, fig1_seed_words):
        from repro.errors import ReproError
        from repro.system import MassSystem

        system = MassSystem(domain_seed_words=fig1_seed_words)
        system.load_dataset(fig1_corpus)
        with pytest.raises(ReproError, match="k >= 1"):
            system.top_influencers(0)
        with pytest.raises(ReproError, match="unknown domain"):
            system.top_influencers(2, domain="Astrology")

    def test_valid_queries_unaffected(self, validation_report):
        assert len(validation_report.top_influencers(1)) == 1
        assert len(validation_report.top_influencers(2, "Computer")) == 2
