"""Tests for streaming blogosphere synthesis into columnar files."""

from __future__ import annotations

from repro.core import MassModel
from repro.store import ColumnarCorpus
from repro.synth import DOMAIN_VOCABULARIES, BlogosphereConfig
from repro.synth.stream import stream_blogosphere

_CONFIG = BlogosphereConfig(num_bloggers=60, posts_per_blogger=2)


class TestStreamBlogosphere:
    def test_same_seed_is_byte_identical(self, tmp_path):
        first = stream_blogosphere(tmp_path / "a.mcol", _CONFIG, seed=42)
        second = stream_blogosphere(tmp_path / "b.mcol", _CONFIG, seed=42)
        assert first.path.read_bytes() == second.path.read_bytes()
        different = stream_blogosphere(
            tmp_path / "c.mcol", _CONFIG, seed=43
        )
        assert different.path.read_bytes() != first.path.read_bytes()

    def test_summary_matches_the_stored_corpus(self, tmp_path):
        summary = stream_blogosphere(
            tmp_path / "sphere.mcol", _CONFIG, seed=7
        )
        assert summary.num_bloggers == _CONFIG.num_bloggers
        with ColumnarCorpus.open(summary.path) as view:
            stats = view.stats()
            assert stats.num_bloggers == summary.num_bloggers
            assert stats.num_posts == summary.num_posts
            assert stats.num_comments == summary.num_comments
            assert stats.num_links == summary.num_links
            # Planted influencers exist and write in their domain.
            assert summary.planted
            for blogger_id in summary.planted:
                assert blogger_id in view
                assert view.posts_by(blogger_id)

    def test_streamed_corpus_is_solvable(self, tmp_path):
        summary = stream_blogosphere(
            tmp_path / "sphere.mcol", _CONFIG, seed=11
        )
        with ColumnarCorpus.open(summary.path) as view:
            report = MassModel(
                domain_seed_words=DOMAIN_VOCABULARIES
            ).fit(view)
            scores = report.general_scores()
        assert set(scores) == {
            f"blogger-{i:04d}" for i in range(_CONFIG.num_bloggers)
        }

    def test_token_columns_stream_too(self, tmp_path):
        summary = stream_blogosphere(
            tmp_path / "tokens.mcol",
            BlogosphereConfig(
                num_bloggers=40, posts_per_blogger=1, planted_per_domain=1
            ),
            seed=3,
            tokens=True,
        )
        with ColumnarCorpus.open(summary.path) as view:
            assert view.has_tokens
            assert view.vocabulary()
            post_id = next(iter(view.posts))
            assert view.post_tokens(post_id)
