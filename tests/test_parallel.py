"""Shard-parallel solve pipeline: partitioner, executors, equivalence.

The parallel backend must reproduce the serial sparse sweep per row
bit-for-bit; only the cross-shard residual reduction (ascending shard
index) may differ in float association, so iteration counts are never
asserted equal — scores are held to the same 1e-9 bound as the other
backend pairs, and to exact equality whenever the counts happen to
agree.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest
from hypothesis import given, settings

from repro.core import (
    CorpusDelta,
    IncrementalAnalyzer,
    InfluenceSolver,
    MassModel,
    MassParameters,
)
from repro.core.assemble import compile_system
from repro.core.parallel import (
    default_row_weights,
    parallel_solve,
    plan_shards,
    resolve_num_workers,
    resolve_shard_count,
)
from repro.core.solver import compute_gl_scores
from repro.core.sparse_solver import jacobi_solve
from repro.data import Comment, CorpusBuilder
from repro.errors import ParameterError, ReproError
from repro.nlp import NaiveBayesClassifier
from repro.synth import DOMAIN_VOCABULARIES
from tests.test_backend_equivalence import (
    KERNELS,
    PARAM_GRID,
    TOL,
    assert_scores_match,
)
from tests.test_golden import CASES, GOLDEN_DIR, scores_to_dict
from tests.test_properties import corpora

MODES = ["serial", "thread", "process"]


@pytest.fixture(scope="module")
def classifier():
    return NaiveBayesClassifier.from_seed_vocabulary(DOMAIN_VOCABULARIES)


def compile_for(corpus, params=None):
    """Compile a corpus into CSR arrays the way the solver does."""
    params = params or MassParameters()
    solver = InfluenceSolver(corpus, params)
    gl = compute_gl_scores(corpus, params)
    quality = {
        post_id: solver._quality_scorer.score(corpus.post(post_id))
        for post_id in sorted(corpus.posts)
    }
    return compile_system(corpus, params, solver.comment_model, quality, gl)


def solve_parallel(corpus, params, kernel, monkeypatch, initial=None):
    monkeypatch.setenv("REPRO_SPARSE_KERNEL", kernel)
    scores = InfluenceSolver(
        corpus,
        params.with_overrides(
            solver_backend="parallel", num_workers=2, shard_count=3
        ),
    ).solve(initial=initial)
    assert scores.backend == "parallel"
    return scores


class TestPartitioner:
    def test_covers_all_rows_contiguously(self):
        plan = plan_shards([1.0] * 10, 3)
        assert plan.num_rows == 10
        assert plan.bounds[0][0] == 0
        assert plan.bounds[-1][1] == 10
        for (_, prev_end), (start, end) in zip(plan.bounds, plan.bounds[1:]):
            assert start == prev_end
        assert all(end > start for start, end in plan.bounds)

    def test_deterministic(self):
        weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert plan_shards(weights, 3) == plan_shards(weights, 3)

    def test_clamps_shard_count_to_rows(self):
        assert plan_shards([1.0, 1.0], 8).shard_count == 2
        assert plan_shards([2.0], 4).bounds == ((0, 1),)

    def test_balances_by_weight(self):
        # Post-heavy rows up front: the split must land on equal halves
        # of total weight, not equal row counts.
        plan = plan_shards([5.0, 1.0, 1.0, 1.0, 5.0, 1.0, 1.0, 1.0], 2)
        assert plan.bounds == ((0, 4), (4, 8))
        assert plan.weights == (8.0, 8.0)

    def test_shard_of_and_dirty_shards(self):
        plan = plan_shards([1.0] * 9, 3)
        for shard, (start, end) in enumerate(plan.bounds):
            for row in range(start, end):
                assert plan.shard_of(row) == shard
        assert plan.dirty_shards([0, 8]) == {0, plan.shard_count - 1}
        # Rows outside the plan (relabeled away) are ignored, not errors.
        assert plan.dirty_shards([-3, 99]) == set()

    def test_default_row_weights_count_posts(self, fig1_corpus):
        compiled = compile_for(fig1_corpus)
        weights = default_row_weights(compiled)
        assert len(weights) == compiled.num_bloggers
        assert all(weight >= 1.0 for weight in weights)
        assert sum(weights) == compiled.num_bloggers + len(fig1_corpus.posts)


class TestResolution:
    def test_shard_count_auto_scales_with_workers(self):
        assert resolve_shard_count("auto", 100, 2) == 8
        assert resolve_shard_count("auto", 3, 2) == 3

    def test_shard_count_explicit_clamped(self):
        assert resolve_shard_count(5, 3, 2) == 3
        assert resolve_shard_count(1, 100, 4) == 1

    def test_workers_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "7")
        assert resolve_num_workers(3) == 3

    def test_workers_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "2")
        assert resolve_num_workers(0) == 2

    def test_workers_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "zebra")
        with pytest.raises(ReproError):
            resolve_num_workers(0)

    def test_params_validate_new_fields(self):
        with pytest.raises(ParameterError):
            MassParameters(num_workers=-1)
        with pytest.raises(ParameterError):
            MassParameters(shard_count=0)
        with pytest.raises(ParameterError):
            MassParameters(shard_count="many")


class TestDirectModes:
    """parallel_solve against jacobi_solve on the same compiled system."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("mode", MODES)
    def test_mode_matches_serial_sweep(self, fig1_corpus, mode, kernel,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_KERNEL", kernel)
        params = MassParameters()
        compiled = compile_for(fig1_corpus, params)
        serial = jacobi_solve(
            compiled, params.tolerance, params.max_iterations
        )
        solution = parallel_solve(
            compiled, params.tolerance, params.max_iterations,
            kernel=kernel, num_workers=2, shard_count=3, mode=mode,
        )
        assert solution.converged
        assert solution.mode == mode
        assert solution.plan.shard_count == 3
        assert len(solution.shard_seconds) == 3
        for got, want in zip(solution.influence, serial.influence):
            assert got == pytest.approx(want, abs=TOL)
        if solution.iterations == serial.iterations:
            # Same sweep count -> per-row bit-identical, not just close.
            assert solution.influence == list(serial.influence)

    def test_on_iteration_reports_merged_residuals(self, fig1_corpus):
        params = MassParameters()
        compiled = compile_for(fig1_corpus, params)
        seen = []
        solution = parallel_solve(
            compiled, params.tolerance, params.max_iterations,
            num_workers=2, shard_count=3, mode="serial",
            on_iteration=lambda i, r: seen.append((i, r)),
        )
        assert [i for i, _ in seen] == list(range(1, solution.iterations + 1))
        assert seen[-1][1] == solution.residual
        assert all(r >= 0.0 for _, r in seen)

    def test_plan_row_mismatch_rejected(self, fig1_corpus):
        params = MassParameters()
        compiled = compile_for(fig1_corpus, params)
        wrong = plan_shards([1.0] * (compiled.num_bloggers + 1), 2)
        with pytest.raises(ReproError, match="shard plan covers"):
            parallel_solve(
                compiled, params.tolerance, params.max_iterations,
                plan=wrong,
            )

    def test_entry_free_system_closed_form(self):
        # No cross-blogger comments -> nnz == 0 -> the constant term is
        # the exact answer and no pool is ever spun up.
        builder = CorpusBuilder()
        builder.blogger("solo").blogger("other")
        builder.post("solo", body="a quiet post about the harbour")
        corpus = builder.build().freeze()
        params = MassParameters()
        compiled = compile_for(corpus, params)
        assert compiled.nnz == 0
        solution = parallel_solve(
            compiled, params.tolerance, params.max_iterations,
            num_workers=4, shard_count=8, mode="process",
        )
        assert solution.iterations == 0
        assert solution.converged
        assert solution.mode == "serial"
        assert solution.num_workers == 0
        assert solution.influence == list(compiled.constant)

    def test_process_pool_tears_down(self, fig1_corpus):
        params = MassParameters()
        compiled = compile_for(fig1_corpus, params)
        solution = parallel_solve(
            compiled, params.tolerance, params.max_iterations,
            num_workers=2, shard_count=4, mode="process",
        )
        assert solution.converged
        assert multiprocessing.active_children() == []


class TestBackendEquivalence:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_tiny_corpus(self, tiny_corpus, kernel, monkeypatch):
        corpus = tiny_corpus.freeze()
        reference = InfluenceSolver(
            corpus, MassParameters(solver_backend="reference")
        ).solve()
        assert_scores_match(
            reference,
            solve_parallel(corpus, MassParameters(), kernel, monkeypatch),
        )

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("params", PARAM_GRID, ids=lambda p: "grid")
    def test_fig1_parameter_grid(self, fig1_corpus, kernel, params,
                                 monkeypatch):
        reference = InfluenceSolver(
            fig1_corpus, params.with_overrides(solver_backend="reference")
        ).solve()
        assert_scores_match(
            reference,
            solve_parallel(fig1_corpus, params, kernel, monkeypatch),
        )

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_small_blogosphere_vs_sparse(self, small_blogosphere, kernel,
                                         monkeypatch):
        corpus, _ = small_blogosphere
        monkeypatch.setenv("REPRO_SPARSE_KERNEL", kernel)
        sparse = InfluenceSolver(
            corpus, MassParameters(solver_backend="sparse")
        ).solve()
        assert_scores_match(
            sparse,
            solve_parallel(corpus, MassParameters(), kernel, monkeypatch),
        )

    def test_shard_count_exceeds_bloggers(self, fig1_corpus, monkeypatch):
        reference = InfluenceSolver(
            fig1_corpus, MassParameters(solver_backend="reference")
        ).solve()
        scores = InfluenceSolver(
            fig1_corpus,
            MassParameters(
                solver_backend="parallel", num_workers=2, shard_count=64
            ),
        ).solve()
        assert_scores_match(reference, scores)

    def test_single_blogger(self, monkeypatch):
        builder = CorpusBuilder()
        builder.blogger("hermit")
        post = builder.post("hermit", body="notes to myself " * 5)
        builder.comment(post.post_id, "hermit", text="I agree with myself")
        corpus = builder.build().freeze()
        params = MassParameters(include_self_comments=True)
        reference = InfluenceSolver(
            corpus, params.with_overrides(solver_backend="reference")
        ).solve()
        assert_scores_match(
            reference,
            solve_parallel(corpus, params, KERNELS[0], monkeypatch),
        )

    @settings(max_examples=20, deadline=None)
    @given(corpus=corpora())
    def test_parallel_matches_serial_on_random_corpora(self, corpus):
        params = MassParameters()
        compiled = compile_for(corpus, params)
        serial = jacobi_solve(
            compiled, params.tolerance, params.max_iterations
        )
        solution = parallel_solve(
            compiled, params.tolerance, params.max_iterations,
            num_workers=2, shard_count=3, mode="serial",
        )
        assert solution.converged == serial.converged
        for got, want in zip(solution.influence, serial.influence):
            assert got == pytest.approx(want, abs=TOL)


class TestGoldenParallel:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_parallel_matches_golden(self, name):
        build_corpus, params = CASES[name]
        scores = InfluenceSolver(
            build_corpus(),
            params.with_overrides(solver_backend="parallel", num_workers=2),
        ).solve()
        payload = scores_to_dict(scores)
        expected = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        for key, want in expected.items():
            if key == "iterations":
                # The cross-shard residual merge may shift the stopping
                # sweep by one; the scores themselves may not move.
                continue
            got = payload[key]
            if isinstance(want, dict):
                assert got.keys() == want.keys(), f"{name}.{key} keys"
                for entry, value in want.items():
                    assert got[entry] == pytest.approx(value, abs=TOL), (
                        f"{name}.{key}[{entry}] drifted"
                    )
            else:
                assert got == want, f"{name}.{key} changed"


class TestIncrementalParallel:
    def make_hub_corpus(self):
        """Four authors, one commenter touching every post.

        Any delta that changes the hub commenter's TC dirties every
        row that has entries — the all-shards-dirty worst case.
        """
        builder = CorpusBuilder()
        for name in ("a", "b", "c", "d", "z"):
            builder.blogger(name)
        posts = [
            builder.post(name, body=f"a long post about topic {name} " * 4)
            for name in ("a", "b", "c", "d")
        ]
        for post in posts:
            builder.comment(post.post_id, "z", text="I agree, wonderful")
        return builder.build().freeze(), posts

    def test_all_dirty_refresh_matches_cold_solve(self, classifier):
        corpus, posts = self.make_hub_corpus()
        params = MassParameters(
            solver_backend="parallel", num_workers=2, shard_count=3
        )
        analyzer = IncrementalAnalyzer(classifier, params)
        analyzer.fit(corpus)
        cache = analyzer.assembly_cache
        assert cache.last_mode == "cold"
        assert cache.shard_plan is not None

        delta = CorpusDelta(comments=[
            Comment("extra-z", posts[0].post_id, "z",
                    text="even more praise for this"),
        ])
        report = analyzer.apply(delta)
        assert cache.last_mode == "refresh"
        # z's TC changed, so every post z commented on was reweighted:
        # all four author rows are dirty and every shard is touched.
        assert len(cache.last_dirty_row_ids) >= 4

        from repro.core.incremental import _copy_corpus

        grown = _copy_corpus(corpus)
        grown.extend(comments=delta.comments)
        grown.freeze()
        cold = MassModel(classifier=classifier, params=params).fit(grown)
        for blogger_id, value in cold.general_scores().items():
            assert report.general_scores()[blogger_id] == pytest.approx(
                value, abs=1e-9
            )

    def test_shard_plan_reused_across_refreshes(self, classifier,
                                                small_blogosphere):
        corpus, _ = small_blogosphere
        params = MassParameters(
            solver_backend="parallel", num_workers=2, shard_count=4
        )
        analyzer = IncrementalAnalyzer(classifier, params)
        analyzer.fit(corpus)
        cache = analyzer.assembly_cache
        first_plan = cache.shard_plan._plan

        existing = corpus.blogger_ids()[0]
        target = next(iter(sorted(corpus.posts)))
        delta = CorpusDelta(comments=[
            Comment("extra-00", target, existing, text="useful note"),
        ])
        report = analyzer.apply(delta)
        assert cache.last_mode == "refresh"
        # Same row count -> the cached partition is reused verbatim.
        assert cache.shard_plan._plan is first_plan

        cold = MassModel(
            classifier=classifier,
            params=MassParameters(solver_backend="sparse"),
        ).fit(report.corpus)
        for blogger_id, value in cold.general_scores().items():
            assert report.general_scores()[blogger_id] == pytest.approx(
                value, abs=1e-9
            )
