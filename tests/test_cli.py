"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data import figure1_corpus, save_corpus


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    """An XML store backing the CLI's --store / --data options."""
    path = tmp_path_factory.mktemp("clistore")
    assert main(["generate", "--out", str(path), "--bloggers", "120",
                 "--seed", "6"]) == 0
    return path


class TestGenerate:
    def test_generate_writes_store(self, tmp_path, capsys):
        code = main(["generate", "--out", str(tmp_path / "g"),
                     "--bloggers", "30", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "30 bloggers" in out
        assert (tmp_path / "g" / "index.xml").exists()


class TestCrawl:
    def test_crawl_from_store(self, store_dir, tmp_path, capsys):
        code = main([
            "crawl", "--store", str(store_dir),
            "--seed-blogger", "blogger-0000", "--radius", "1",
            "--out", str(tmp_path / "c"),
        ])
        assert code == 0
        assert "crawled" in capsys.readouterr().out
        assert (tmp_path / "c" / "index.xml").exists()

    def test_crawl_bad_seed_errors(self, store_dir, tmp_path, capsys):
        code = main([
            "crawl", "--store", str(store_dir),
            "--seed-blogger", "ghost", "--out", str(tmp_path / "c2"),
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestAnalyze:
    def test_general_ranking(self, store_dir, capsys):
        assert main(["analyze", "--data", str(store_dir), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "Top 2 overall" in out
        assert "1. blogger-" in out

    def test_domain_ranking(self, store_dir, capsys):
        assert main([
            "analyze", "--data", str(store_dir), "--domain", "Art",
            "--top", "3",
        ]) == 0
        assert "Top 3 in Art" in capsys.readouterr().out

    def test_toolbar_parameters(self, store_dir, capsys):
        assert main([
            "analyze", "--data", str(store_dir), "--alpha", "1.0",
            "--beta", "0.2", "--top", "1",
        ]) == 0


class TestAdvertise:
    def test_text_mode(self, store_dir, capsys):
        assert main([
            "advertise", "--data", str(store_dir),
            "--text", "a marathon stadium game for every athlete",
            "--top", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "mined interest vector" in out
        assert "Recommended bloggers" in out

    def test_dropdown_mode(self, store_dir, capsys):
        assert main([
            "advertise", "--data", str(store_dir),
            "--domain", "Sports", "--domain", "Travel", "--top", "2",
        ]) == 0
        assert "mode: domains" in capsys.readouterr().out

    def test_general_fallback(self, store_dir, capsys):
        assert main(["advertise", "--data", str(store_dir)]) == 0
        assert "mode: general" in capsys.readouterr().out


class TestRecommend:
    def test_profile_mode(self, store_dir, capsys):
        assert main([
            "recommend", "--data", str(store_dir),
            "--profile", "painting sculpture gallery museum art",
        ]) == 0
        out = capsys.readouterr().out
        assert "mined interests" in out
        assert "Bloggers to follow" in out

    def test_blogger_mode(self, store_dir, capsys):
        assert main([
            "recommend", "--data", str(store_dir),
            "--blogger", "blogger-0000", "--domain", "Travel",
        ]) == 0
        out = capsys.readouterr().out
        assert "blogger-0000" not in out.split("Bloggers to follow")[1]


class TestDetailAndVisualize:
    def test_detail(self, store_dir, capsys):
        assert main([
            "detail", "--data", str(store_dir), "--blogger", "blogger-0001",
        ]) == 0
        out = capsys.readouterr().out
        assert "total influence" in out
        assert "domain scores" in out

    def test_detail_unknown_blogger(self, store_dir, capsys):
        assert main([
            "detail", "--data", str(store_dir), "--blogger", "ghost",
        ]) == 1

    def test_visualize_with_save(self, store_dir, tmp_path, capsys):
        out_file = tmp_path / "net.xml"
        assert main([
            "visualize", "--data", str(store_dir),
            "--center", "blogger-0001", "--out", str(out_file),
        ]) == 0
        assert out_file.exists()
        assert "bloggers" in capsys.readouterr().out


class TestTable1:
    def test_table1_runs(self, capsys):
        assert main(["table1", "--bloggers", "150", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Average Applicable Scores" in out
        assert "Domain Specific" in out


class TestFig1Data:
    def test_analyze_fig1_store(self, tmp_path, capsys):
        # The CLI works on any XML store, including the Fig. 1 sample.
        save_corpus(figure1_corpus(), tmp_path)
        assert main(["analyze", "--data", str(tmp_path), "--top", "1"]) == 0
        assert "amery" in capsys.readouterr().out


class TestCampaign:
    def test_domain_mode(self, store_dir, capsys):
        assert main([
            "campaign", "--data", str(store_dir), "--domain", "Sports",
            "--top", "2", "--coverage-weight", "0.7",
        ]) == 0
        out = capsys.readouterr().out
        assert "Campaign selection" in out
        assert "audience covered" in out

    def test_text_mode(self, store_dir, capsys):
        assert main([
            "campaign", "--data", str(store_dir),
            "--text", "the stadium game and marathon",
        ]) == 0
        assert "target interests" in capsys.readouterr().out


class TestTrend:
    def test_trend_output(self, store_dir, capsys):
        assert main([
            "trend", "--data", str(store_dir),
            "--window-days", "120", "--step-days", "120", "--top", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "rising bloggers" in out
        assert "slope" in out


class TestDiscover:
    def test_discover_topics(self, store_dir, capsys):
        assert main([
            "discover", "--data", str(store_dir), "--k", "4",
            "--max-posts", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "discovered 4 topics" in out
        assert "posts]" in out


class TestStats:
    def test_stats_output(self, store_dir, capsys):
        assert main(["stats", "--data", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "post-reply network" in out
        assert "in-degree Gini" in out


class TestVisualizeSvg:
    def test_svg_written(self, store_dir, tmp_path, capsys):
        svg_path = tmp_path / "net.svg"
        assert main([
            "visualize", "--data", str(store_dir),
            "--center", "blogger-0001", "--svg", str(svg_path),
        ]) == 0
        assert svg_path.exists()
        assert svg_path.read_text().startswith("<svg")


class TestErrorHandling:
    def test_invalid_toolbar_value_exits_nonzero(self, store_dir, capsys):
        code = main(["analyze", "--data", str(store_dir), "--alpha", "7"])
        assert code == 1
        assert "alpha" in capsys.readouterr().err

    def test_missing_data_directory(self, tmp_path, capsys):
        code = main(["analyze", "--data", str(tmp_path / "nowhere")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_visualize_unknown_center(self, store_dir, capsys):
        code = main([
            "visualize", "--data", str(store_dir), "--center", "ghost",
        ])
        assert code == 1


class TestObservabilityFlags:
    @pytest.fixture(autouse=True)
    def _restore_repro_logger(self):
        """main(--log-level …) reconfigures the repro logger; undo it."""
        import logging

        logger = logging.getLogger("repro")
        saved = (list(logger.handlers), logger.level, logger.propagate)
        yield
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        for handler in saved[0]:
            logger.addHandler(handler)
        logger.setLevel(saved[1])
        logger.propagate = saved[2]

    def test_analyze_writes_metrics_and_trace(self, store_dir, tmp_path,
                                              capsys):
        import json

        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.json"
        code = main([
            "analyze", "--data", str(store_dir),
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["repro_solver_solves_total"]["value"] == 1
        assert metrics["repro_solver_iterations_total"]["value"] > 0
        assert metrics["repro_analyze_seconds"]["count"] == 1

        trace = json.loads(trace_path.read_text())
        names = [span["name"] for span in trace["spans"]]
        assert "analyze" in names
        analyze = trace["spans"][names.index("analyze")]
        children = [child["name"] for child in analyze["children"]]
        for stage in ("classify", "quality", "gl", "solver"):
            assert stage in children, children
        solver = analyze["children"][children.index("solver")]
        assert solver["events"][0]["iteration"] == 1

    def test_log_level_debug_emits_solver_iterations(self, store_dir,
                                                     tmp_path, capsys):
        code = main([
            "analyze", "--data", str(store_dir), "--log-level", "DEBUG",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "repro.solver" in err
        assert "iteration 1: residual" in err

    def test_log_json_lines(self, store_dir, capsys):
        import json

        code = main([
            "analyze", "--data", str(store_dir),
            "--log-level", "INFO", "--log-json",
        ])
        assert code == 0
        lines = [line for line in capsys.readouterr().err.splitlines()
                 if line.strip()]
        records = [json.loads(line) for line in lines]
        assert any(record["logger"].startswith("repro") for record in records)

    def test_diagnostics_flag_prints_solver_telemetry(self, store_dir,
                                                      capsys):
        import json

        code = main([
            "analyze", "--data", str(store_dir), "--diagnostics",
        ])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["solver"]["converged"] is True
        assert payload["solver"]["iterations"] > 0
        assert payload["corpus"]["bloggers"] > 0

    def test_telemetry_written_even_on_error(self, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "m.json"
        code = main([
            "analyze", "--data", str(tmp_path / "nowhere"),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 1
        assert json.loads(metrics_path.read_text()) == {}

    def test_crawl_with_metrics(self, store_dir, tmp_path):
        import json

        metrics_path = tmp_path / "m.json"
        code = main([
            "crawl", "--store", str(store_dir),
            "--seed-blogger", "blogger-0000", "--radius", "1",
            "--out", str(tmp_path / "c"),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["repro_crawler_pages_fetched_total"]["value"] > 0
        assert "repro_crawler_frontier_size" in metrics
