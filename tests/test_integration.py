"""End-to-end integration tests: the pipeline the paper demonstrates.

These exercise the full Fig. 2 flow — generate → crawl → XML storage →
analyze → recommend / visualize — and assert the scientific claims the
reproduction must uphold: MASS's domain-specific rankings recover the
planted influencers better than domain-blind baselines.
"""

import pytest

from repro.baselines import (
    GeneralInfluenceBaseline,
    HitsBaseline,
    IFinderBaseline,
    LiveIndexBaseline,
    PageRankBaseline,
)
from repro.core import MassModel
from repro.crawler import BlogCrawler, CrawlConfig, SimulatedBlogService
from repro.data import load_corpus
from repro.evaluation import precision_at_k
from repro.synth import DOMAIN_VOCABULARIES
from repro.userstudy import TABLE1_DOMAINS, UserStudy


class TestFullPipeline:
    def test_crawl_store_analyze_recommend(self, medium_blogosphere, tmp_path):
        corpus, truth = medium_blogosphere
        service = SimulatedBlogService(corpus, failure_rate=0.1, seed=2)
        crawler = BlogCrawler(
            service, CrawlConfig(radius=2, num_threads=4, max_retries=3)
        )
        seed = truth.planted_influencers("Travel")[0]
        crawler.crawl_to_directory([seed], tmp_path)

        crawled = load_corpus(tmp_path)
        assert len(crawled) > 50

        model = MassModel(domain_seed_words=DOMAIN_VOCABULARIES)
        report = model.fit(crawled)
        assert report.converged

        # The seed is a planted Travel influencer; within its own crawl
        # neighbourhood it must rank near the top of the Travel list.
        from repro.core import rank_of

        travel_scores = report.domain_influence.domain_scores("Travel")
        assert rank_of(travel_scores, seed) <= 10

    def test_analysis_runs_on_crawl_subset(self, medium_blogosphere):
        corpus, truth = medium_blogosphere
        members = corpus.blogger_ids()[:80]
        subset = corpus.subset(members).freeze()
        report = MassModel(domain_seed_words=DOMAIN_VOCABULARIES).fit(subset)
        assert set(report.general_scores()) == set(members)


class TestScientificClaims:
    @pytest.fixture(scope="class")
    def evaluation(self, medium_blogosphere):
        corpus, truth = medium_blogosphere
        report = MassModel(domain_seed_words=DOMAIN_VOCABULARIES).fit(corpus)
        return corpus, truth, report

    def test_mass_recovers_planted_influencers(self, evaluation):
        corpus, truth, report = evaluation
        total_hits = 0
        for domain in truth.domains:
            mass_top = [b for b, _ in report.top_influencers(3, domain)]
            true_top = set(truth.top_true_influencers(domain, 5))
            total_hits += len(set(mass_top) & true_top)
        # On average at least 2 of top-3 per domain are truly top-5.
        assert total_hits >= 2 * len(truth.domains)

    def test_domain_specific_beats_domain_blind_baselines(self, evaluation):
        corpus, truth, report = evaluation
        baselines = [
            GeneralInfluenceBaseline(),
            LiveIndexBaseline(),
            PageRankBaseline(),
            HitsBaseline(),
            IFinderBaseline(),
        ]
        baseline_lists = {
            ranker.name: ranker.top_ids(corpus, 3) for ranker in baselines
        }

        def avg_precision(list_per_domain):
            return sum(
                precision_at_k(
                    list_per_domain[domain],
                    set(truth.top_true_influencers(domain, 5)),
                    3,
                )
                for domain in truth.domains
            ) / len(truth.domains)

        mass_lists = {
            domain: [b for b, _ in report.top_influencers(3, domain)]
            for domain in truth.domains
        }
        mass_score = avg_precision(mass_lists)
        for name, blind_list in baseline_lists.items():
            blind_score = avg_precision(
                {domain: blind_list for domain in truth.domains}
            )
            assert mass_score > blind_score, (
                f"MASS ({mass_score:.2f}) should beat {name} "
                f"({blind_score:.2f}) on domain-specific precision"
            )

    def test_table1_shape(self, evaluation):
        """Domain Specific must win every Table I domain."""
        corpus, truth, report = evaluation
        general = GeneralInfluenceBaseline().top_ids(corpus, 3)
        live = LiveIndexBaseline().top_ids(corpus, 3)
        systems = {
            "General": {d: general for d in TABLE1_DOMAINS},
            "Live Index": {d: live for d in TABLE1_DOMAINS},
            "Domain Specific": {
                d: [b for b, _ in report.top_influencers(3, d)]
                for d in TABLE1_DOMAINS
            },
        }
        result = UserStudy(truth, seed=1).run(systems)
        for domain in TABLE1_DOMAINS:
            assert result.winner(domain) == "Domain Specific"
            assert result.score("Domain Specific", domain) >= 4.0

    def test_sentiment_facet_changes_rankings(self, evaluation):
        corpus, _, report = evaluation
        from repro.core import MassParameters

        blind = MassModel(
            params=MassParameters(use_sentiment=False),
            domain_seed_words=DOMAIN_VOCABULARIES,
        ).fit(corpus)
        assert blind.general_scores() != report.general_scores()
