"""Tests for the coverage-aware campaign planner."""

import pytest

from repro.apps import CampaignPlanner
from repro.core import MassModel
from repro.data import CorpusBuilder
from repro.errors import ParameterError
from repro.nlp import NaiveBayesClassifier
from repro.synth import DOMAIN_VOCABULARIES

SEEDS = {"Sports": ["game", "match", "stadium"],
         "Art": ["painting", "canvas", "gallery"]}


def overlap_corpus():
    """star1/star2 share their audience; niche reaches different readers.

    star1 and star2 are commented by the same three fans; niche is
    commented by three different readers.  All post Sports.
    """
    builder = CorpusBuilder()
    authors = ["star1", "star2", "niche"]
    shared = [f"fan-{i}" for i in range(3)]
    fresh = [f"reader-{i}" for i in range(3)]
    for blogger_id in authors + shared + fresh:
        builder.blogger(blogger_id)
    body = "the stadium match game " * 20
    for author, commenters, comment_text in (
        ("star1", shared, "I agree, a great game analysis"),
        ("star2", shared, "wonderful, I support this fully"),
        # niche reaches different readers, but with lukewarm reception
        # and a shorter post, so by influence it clearly trails.
        ("niche", fresh, "some notes about the game from last week"),
    ):
        words = body if author != "niche" else "the stadium match game " * 8
        post = builder.post(author, body=words)
        for commenter in commenters:
            builder.comment(post.post_id, commenter, text=comment_text)
    # star1/star2 also get endorsement links.
    for fan in shared:
        builder.link(fan, "star1").link(fan, "star2")
    return builder.build()


@pytest.fixture(scope="module")
def planner():
    corpus = overlap_corpus()
    model = MassModel(domain_seed_words=SEEDS)
    report = model.fit(corpus)
    return CampaignPlanner(report, model.classifier)


class TestAudience:
    def test_audience_sets(self, planner):
        assert planner.audience_of("star1") == frozenset(
            {"fan-0", "fan-1", "fan-2"}
        )
        assert planner.audience_of("niche") == frozenset(
            {"reader-0", "reader-1", "reader-2"}
        )

    def test_unknown_blogger(self, planner):
        with pytest.raises(ParameterError, match="unknown blogger"):
            planner.audience_of("ghost")


class TestPlanning:
    def test_coverage_zero_is_naive_topk(self, planner):
        plan = planner.plan(domains=["Sports"], k=2, coverage_weight=0.0)
        assert plan.selected == plan.naive_top_k

    def test_coverage_prefers_disjoint_audiences(self, planner):
        plan = planner.plan(domains=["Sports"], k=2, coverage_weight=0.8)
        # star1+star2 cover 3 readers; star + niche covers 6.
        assert "niche" in plan.selected
        assert plan.covered_audience == 6
        assert plan.coverage_gain_over_naive > 0

    def test_coverage_fraction(self, planner):
        plan = planner.plan(domains=["Sports"], k=3, coverage_weight=0.8)
        assert plan.coverage == 1.0  # all 6 readers reachable with 3 picks

    def test_text_mode(self, planner):
        plan = planner.plan(ad_text="a stadium game and match", k=2,
                            coverage_weight=0.5)
        assert plan.interest_vector.dominant_domain() == "Sports"
        assert len(plan.selected) == 2

    def test_selected_unique(self, planner):
        plan = planner.plan(domains=["Sports"], k=5, coverage_weight=0.5)
        assert len(plan.selected) == len(set(plan.selected))

    def test_k_larger_than_population(self, planner):
        plan = planner.plan(domains=["Sports"], k=100)
        assert len(plan.selected) == 9  # everyone


class TestValidation:
    def test_both_inputs_rejected(self, planner):
        with pytest.raises(ParameterError, match="exactly one"):
            planner.plan(ad_text="x", domains=["Sports"])

    def test_neither_input_rejected(self, planner):
        with pytest.raises(ParameterError, match="exactly one"):
            planner.plan()

    def test_empty_ad_rejected(self, planner):
        with pytest.raises(ParameterError, match="empty"):
            planner.plan(ad_text="  ")

    def test_unknown_domain_rejected(self, planner):
        with pytest.raises(ParameterError, match="unknown domains"):
            planner.plan(domains=["Astrology"])

    def test_bad_k_and_weight(self, planner):
        with pytest.raises(ParameterError, match="k must be"):
            planner.plan(domains=["Sports"], k=0)
        with pytest.raises(ParameterError, match="coverage_weight"):
            planner.plan(domains=["Sports"], coverage_weight=1.5)

    def test_classifier_mismatch(self, medium_model_and_report):
        _, report = medium_model_and_report
        other = NaiveBayesClassifier.from_seed_vocabulary(
            {"X": ["x"], "Y": ["y"]}
        )
        with pytest.raises(ParameterError, match="do not match"):
            CampaignPlanner(report, other)


class TestOnGeneratedData:
    def test_coverage_never_below_naive(self, medium_model_and_report):
        model, report = medium_model_and_report
        planner = CampaignPlanner(report, model.classifier)
        for domain in ("Sports", "Travel"):
            plan = planner.plan(domains=[domain], k=5, coverage_weight=0.7)
            assert plan.covered_audience >= plan.naive_covered_audience
            assert 0.0 <= plan.coverage <= 1.0
