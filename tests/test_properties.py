"""Cross-module property-based tests.

These drive hypothesis-generated corpora through whole subsystems and
assert the invariants that hold for *any* input: the solver's
fixed-point identities, the Eq. 5 decomposition, XML round trips, and
monotonicity of influence under favourable changes.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DomainInfluence,
    InfluenceSolver,
    MassParameters,
)
from repro.data import (
    BlogCorpus,
    Blogger,
    Comment,
    Link,
    Post,
    dumps_corpus,
    loads_corpus,
)
from repro.nlp import NaiveBayesClassifier

# ----------------------------------------------------------------------
# Corpus strategy
# ----------------------------------------------------------------------
_WORDS = ["alpha", "bravo", "code", "stadium", "market", "paint", "agree",
          "wrong", "notes", "travel"]

_blogger_ids = [f"b{i}" for i in range(6)]


@st.composite
def corpora(draw) -> BlogCorpus:
    """Small random but always-valid corpora."""
    num_bloggers = draw(st.integers(2, 6))
    bloggers = _blogger_ids[:num_bloggers]
    corpus = BlogCorpus()
    for blogger_id in bloggers:
        corpus.add_blogger(Blogger(blogger_id))

    num_posts = draw(st.integers(1, 8))
    for index in range(num_posts):
        author = draw(st.sampled_from(bloggers))
        words = draw(st.lists(st.sampled_from(_WORDS), min_size=1,
                              max_size=30))
        corpus.add_post(
            Post(f"p{index}", author, body=" ".join(words),
                 created_day=draw(st.integers(0, 100)))
        )

    num_comments = draw(st.integers(0, 12))
    for index in range(num_comments):
        post_id = f"p{draw(st.integers(0, num_posts - 1))}"
        commenter = draw(st.sampled_from(bloggers))
        words = draw(st.lists(st.sampled_from(_WORDS), min_size=1,
                              max_size=8))
        corpus.add_comment(
            Comment(f"c{index}", post_id, commenter, text=" ".join(words),
                    created_day=draw(st.integers(0, 100)))
        )

    link_pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(bloggers), st.sampled_from(bloggers)),
            max_size=8,
        )
    )
    for source, target in link_pairs:
        if source != target:
            corpus.add_link(Link(source, target))
    return corpus.freeze()


_params = st.builds(
    MassParameters,
    alpha=st.floats(0.0, 1.0),
    beta=st.floats(0.3, 1.0),  # keeps the contraction bound < 1
    include_self_comments=st.booleans(),
)


# ----------------------------------------------------------------------
# Solver invariants
# ----------------------------------------------------------------------
class TestSolverInvariants:
    @settings(max_examples=40, deadline=None)
    @given(corpus=corpora(), params=_params)
    def test_fixed_point_identities(self, corpus, params):
        scores = InfluenceSolver(corpus, params).solve()
        assert scores.converged
        for blogger_id in corpus.blogger_ids():
            # Eq. 1 holds at the fixed point.
            expected = (
                params.alpha * scores.ap[blogger_id]
                + (1 - params.alpha) * scores.gl[blogger_id]
            )
            assert math.isclose(
                scores.influence[blogger_id], expected,
                rel_tol=1e-6, abs_tol=1e-7,
            )
            assert scores.influence[blogger_id] >= 0
        for post_id in corpus.posts:
            # Eq. 2 holds per post.
            expected = (
                params.beta * scores.quality[post_id]
                + (1 - params.beta) * scores.comment_score[post_id]
            )
            assert math.isclose(
                scores.post_influence[post_id], expected, abs_tol=1e-9
            )

    @settings(max_examples=40, deadline=None)
    @given(corpus=corpora(), params=_params)
    def test_ap_is_sum_of_posts(self, corpus, params):
        scores = InfluenceSolver(corpus, params).solve()
        totals = {blogger_id: 0.0 for blogger_id in corpus.blogger_ids()}
        for post_id, value in scores.post_influence.items():
            totals[corpus.post(post_id).author_id] += value
        for blogger_id in corpus.blogger_ids():
            assert math.isclose(
                scores.ap[blogger_id], totals[blogger_id], abs_tol=1e-9
            )

    @settings(max_examples=25, deadline=None)
    @given(corpus=corpora())
    def test_warm_start_reaches_same_fixed_point(self, corpus):
        solver = InfluenceSolver(corpus)
        cold = solver.solve()
        # Warm start from a perturbed assignment.
        perturbed = {
            blogger_id: value * 3.0 + 1.0
            for blogger_id, value in cold.influence.items()
        }
        warm = InfluenceSolver(corpus).solve(initial=perturbed)
        for blogger_id in corpus.blogger_ids():
            assert math.isclose(
                warm.influence[blogger_id], cold.influence[blogger_id],
                rel_tol=1e-6, abs_tol=1e-8,
            )


class TestSolverContraction:
    @settings(max_examples=25, deadline=None)
    @given(corpus=corpora(), params=_params)
    def test_influence_is_non_negative(self, corpus, params):
        scores = InfluenceSolver(corpus, params).solve()
        assert all(value >= 0.0 for value in scores.influence.values())
        assert all(value >= 0.0 for value in scores.ap.values())

    @settings(max_examples=25, deadline=None)
    @given(corpus=corpora(), params=_params)
    def test_residuals_decrease_under_contraction(self, corpus, params):
        """Each Jacobi residual shrinks by at least the contraction bound.

        ``x_{k+1} − x_k = coupling·A(x_k − x_{k−1})``, and every column
        of ``A`` sums to at most ``sf_max``, so the L1 residual obeys
        ``r_{k+1} ≤ α(1−β)·sf_max · r_k``.
        """
        from repro.core import CommentModel, compile_system, jacobi_solve
        from repro.core.quality import QualityScorer
        from repro.core.solver import compute_gl_scores

        comment_model = CommentModel(corpus, params)
        scorer = QualityScorer(params, posts=corpus.posts.values())
        quality = {
            post_id: scorer.score(corpus.post(post_id))
            for post_id in sorted(corpus.posts)
        }
        gl = compute_gl_scores(corpus, params)
        compiled = compile_system(corpus, params, comment_model, quality, gl)

        residuals: list[float] = []
        jacobi_solve(
            compiled, params.tolerance, params.max_iterations,
            on_iteration=lambda _, residual: residuals.append(residual),
        )
        bound = params.contraction_bound()
        assert bound < 1.0
        for previous, current in zip(residuals, residuals[1:]):
            assert current <= bound * previous + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(corpus=corpora())
    def test_fixed_point_stable_under_relabeling(self, corpus):
        """Renaming bloggers (changing row order) leaves scores intact."""
        mapping = {
            blogger_id: f"zz-{index:02d}-{blogger_id}"
            for index, blogger_id in enumerate(
                reversed(corpus.blogger_ids())
            )
        }
        relabeled = BlogCorpus()
        for blogger_id in corpus.blogger_ids():
            original = corpus.blogger(blogger_id)
            relabeled.add_blogger(
                Blogger(mapping[blogger_id],
                        profile_text=original.profile_text)
            )
        for post_id in sorted(corpus.posts):
            post = corpus.post(post_id)
            relabeled.add_post(
                Post(post.post_id, mapping[post.author_id],
                     title=post.title, body=post.body,
                     created_day=post.created_day)
            )
        for comment_id in sorted(corpus.comments):
            comment = corpus.comments[comment_id]
            relabeled.add_comment(
                Comment(comment.comment_id, comment.post_id,
                        mapping[comment.commenter_id], text=comment.text,
                        created_day=comment.created_day)
            )
        for link in corpus.links:
            relabeled.add_link(
                Link(mapping[link.source_id], mapping[link.target_id],
                     weight=link.weight)
            )
        relabeled.freeze()

        base = InfluenceSolver(corpus).solve()
        renamed = InfluenceSolver(relabeled).solve()
        for blogger_id in corpus.blogger_ids():
            assert math.isclose(
                renamed.influence[mapping[blogger_id]],
                base.influence[blogger_id],
                rel_tol=1e-7, abs_tol=1e-8,
            )


class TestAblationClosedForms:
    @settings(max_examples=20, deadline=None)
    @given(corpus=corpora())
    def test_alpha_zero_reduces_to_gl(self, corpus):
        scores = InfluenceSolver(
            corpus, MassParameters(alpha=0.0)
        ).solve()
        for blogger_id in corpus.blogger_ids():
            assert math.isclose(
                scores.influence[blogger_id], scores.gl[blogger_id],
                abs_tol=1e-12,
            )

    @settings(max_examples=20, deadline=None)
    @given(corpus=corpora())
    def test_beta_one_is_quality_closed_form(self, corpus):
        params = MassParameters(beta=1.0)
        scores = InfluenceSolver(corpus, params).solve()
        for blogger_id in corpus.blogger_ids():
            quality_sum = sum(
                scores.quality[post.post_id]
                for post in corpus.posts_by(blogger_id)
            )
            expected = (
                params.alpha * quality_sum
                + (1.0 - params.alpha) * scores.gl[blogger_id]
            )
            assert math.isclose(
                scores.influence[blogger_id], expected, abs_tol=1e-9
            )

    @settings(max_examples=20, deadline=None)
    @given(corpus=corpora())
    def test_citation_off_is_closed_form(self, corpus):
        params = MassParameters(use_citation=False)
        scores = InfluenceSolver(corpus, params).solve()
        assert scores.iterations <= 1
        for blogger_id in corpus.blogger_ids():
            quality_sum = 0.0
            comment_sum = 0.0
            for post in corpus.posts_by(blogger_id):
                quality_sum += scores.quality[post.post_id]
                comment_sum += scores.comment_score[post.post_id]
            expected = (
                params.alpha * params.beta * quality_sum
                + params.alpha * (1.0 - params.beta) * comment_sum
                + (1.0 - params.alpha) * scores.gl[blogger_id]
            )
            assert math.isclose(
                scores.influence[blogger_id], expected, abs_tol=1e-9
            )


class TestDomainDecomposition:
    @settings(max_examples=25, deadline=None)
    @given(corpus=corpora())
    def test_domain_vector_sums_to_ap(self, corpus):
        classifier = NaiveBayesClassifier.from_seed_vocabulary(
            {"X": ["alpha", "code", "stadium"],
             "Y": ["market", "paint", "travel"]}
        )
        scores = InfluenceSolver(corpus).solve()
        domain_influence = DomainInfluence.from_classifier(
            corpus, scores, classifier
        )
        for blogger_id in corpus.blogger_ids():
            vector = domain_influence.vector(blogger_id)
            assert math.isclose(
                sum(vector.values()), scores.ap[blogger_id], abs_tol=1e-9
            )
            assert all(value >= 0 for value in vector.values())


class TestXmlRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(corpus=corpora())
    def test_generated_corpora_roundtrip(self, corpus):
        loaded = loads_corpus(dumps_corpus(corpus))
        assert dumps_corpus(loaded) == dumps_corpus(corpus)
        assert loaded.blogger_ids() == corpus.blogger_ids()
        assert set(loaded.posts) == set(corpus.posts)
        assert set(loaded.comments) == set(corpus.comments)

    @settings(max_examples=30)
    @given(text=st.text(max_size=60))
    def test_arbitrary_profile_text_roundtrips_sanitized(self, text):
        from repro.data.xml_store import sanitize_xml_text

        corpus = BlogCorpus()
        corpus.add_blogger(Blogger("a", profile_text=text))
        corpus.freeze()
        loaded = loads_corpus(dumps_corpus(corpus))
        assert loaded.blogger("a").profile_text == sanitize_xml_text(text)


class TestMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(corpus=corpora())
    def test_positive_comment_never_decreases_author(self, corpus):
        params = MassParameters()
        base = InfluenceSolver(corpus, params).solve()
        post_id = sorted(corpus.posts)[0]
        author = corpus.post(post_id).author_id
        commenter = next(
            (b for b in corpus.blogger_ids() if b != author), None
        )
        if commenter is None:
            return
        grown = BlogCorpus()
        for blogger_id in corpus.blogger_ids():
            grown.add_blogger(corpus.blogger(blogger_id))
        for pid in sorted(corpus.posts):
            grown.add_post(corpus.post(pid))
        for cid in sorted(corpus.comments):
            grown.add_comment(corpus.comments[cid])
        for link in corpus.links:
            grown.add_link(link)
        grown.add_comment(
            Comment("extra-positive", post_id, commenter,
                    text="agree agree agree")
        )
        grown.freeze()
        boosted = InfluenceSolver(grown, params).solve()
        # The author gains (or at worst their commenters' TC dilution
        # elsewhere cancels out to equality).
        assert boosted.influence[author] >= base.influence[author] - 1e-9
