"""Crash-recovery property tests: kill the pipeline anywhere, lose nothing.

The contract under test is the tentpole guarantee of the ingestion
subsystem: a pipeline killed at *any* point — mid-append (torn WAL
record), mid-checkpoint (stale tmp dir, unpointed CURRENT), mid-truncate
(covered segments still on disk) — and then reopened recovers to a
state **byte-identical** to a run that never crashed.  Identity is
checked with the snapshot content epoch (a SHA-256 over every score,
domain vector, and corpus id — see ``InfluenceSnapshot.compile``), so
any float that differs anywhere fails the test.
"""

import shutil
import tempfile
from pathlib import Path
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CorpusDelta, IncrementalAnalyzer
from repro.data import Blogger, Comment, Link, Post
from repro.ingest import IngestConfig, IngestPipeline
from repro.ingest.checkpoint import CheckpointManager
from repro.ingest.wal import WriteAheadLog, encode_record
from repro.nlp import NaiveBayesClassifier
from repro.serve import InfluenceSnapshot
from repro.synth import DOMAIN_VOCABULARIES

STREAM_LENGTH = 5
DAMAGE_MODES = (
    "none",            # plain kill between applies
    "torn_append",     # crash mid-append: partial record at the tail
    "stale_tmp",       # crash mid-checkpoint: leftover .tmp- build dir
    "dangling_current",  # crash after prune, CURRENT never rewritten
    "skip_truncate",   # crash mid-checkpoint: WAL truncation never ran
)


@pytest.fixture(scope="module")
def classifier():
    return NaiveBayesClassifier.from_seed_vocabulary(DOMAIN_VOCABULARIES)


def stream_delta(seq: int, anchor: str) -> CorpusDelta:
    """Deterministic delta ``seq`` of the test stream."""
    blogger_id = f"crash-{seq:03d}"
    comments = (Comment(
        f"crash-c-{seq:03d}",
        f"crash-p-{seq - 1:03d}" if seq > 1 else f"crash-p-{seq:03d}",
        blogger_id if seq == 1 else anchor,
        text=f"reaction number {seq} to the game",
        created_day=100 + seq,
    ),)
    return CorpusDelta(
        bloggers=(Blogger(blogger_id, name=f"C{seq}",
                          profile_text="sports stadium marathon blogger",
                          joined_day=seq),),
        posts=(Post(f"crash-p-{seq:03d}", blogger_id,
                    title=f"match report {seq}",
                    body="the stadium game and the marathon " * 2,
                    created_day=100 + seq),),
        comments=comments,
        links=(Link(blogger_id, anchor, 0.5 + 0.25 * seq),),
    )


def epoch_of(report) -> str:
    return InfluenceSnapshot.compile(report).epoch


@pytest.fixture(scope="module")
def reference(classifier, fig1_corpus):
    """Epoch after every seq of an uninterrupted run: epochs[k] == seq k."""
    anchor = fig1_corpus.blogger_ids()[0]
    with tempfile.TemporaryDirectory() as tmp:
        analyzer = IncrementalAnalyzer(classifier)
        pipeline = IngestPipeline(
            Path(tmp), analyzer, IngestConfig(checkpoint_interval=3)
        )
        epochs = [epoch_of(pipeline.open(fig1_corpus))]
        for seq in range(1, STREAM_LENGTH + 1):
            epochs.append(epoch_of(
                pipeline.apply(stream_delta(seq, anchor))
            ))
        final_scores = pipeline.report.general_scores()
        pipeline.close()
    return anchor, epochs, final_scores


def inject_damage(root: Path, mode: str, next_seq: int, anchor: str) -> None:
    wal_dir = root / "wal"
    ckpt_dir = root / "checkpoints"
    if mode == "torn_append":
        segments = sorted(wal_dir.glob("wal-*.log"))
        target = (segments[-1] if segments
                  else wal_dir / f"wal-{next_seq:08d}.log")
        record = encode_record(next_seq, stream_delta(next_seq, anchor))
        with target.open("ab") as handle:
            handle.write(record[: max(12, len(record) // 2)])
    elif mode == "stale_tmp":
        crashed = ckpt_dir / ".tmp-ckpt-00000042-1"
        crashed.mkdir(parents=True, exist_ok=True)
        (crashed / "meta.json").write_text('{"half": "written')
    elif mode == "dangling_current":
        (ckpt_dir / "CURRENT").write_text("ckpt-99999999\n")


def run_and_kill(root: Path, classifier, corpus, kill: int, interval: int,
                 mode: str, anchor: str,
                 retention: str = "last:1") -> None:
    """Apply ``kill`` deltas, then abandon the pipeline without close()."""
    analyzer = IncrementalAnalyzer(classifier)
    pipeline = IngestPipeline(
        root, analyzer,
        IngestConfig(checkpoint_interval=interval, retention=retention),
    )
    if mode == "skip_truncate":
        with mock.patch.object(WriteAheadLog, "truncate_upto",
                               return_value=0):
            pipeline.open(corpus)
            # Pin the background bootstrap checkpoint inside the mock's
            # scope: the damage is deterministic, not thread-timed.
            pipeline.wait_recovery_checkpoint()
            for seq in range(1, kill + 1):
                pipeline.apply(stream_delta(seq, anchor))
    else:
        pipeline.open(corpus)
        pipeline.wait_recovery_checkpoint()
        for seq in range(1, kill + 1):
            pipeline.apply(stream_delta(seq, anchor))
    # No close(): the process is "killed" here.
    inject_damage(root, mode, kill + 1, anchor)


def recover_and_finish(root: Path, classifier, interval: int, anchor: str,
                       reference, retention: str = "last:1") -> None:
    _, epochs, final_scores = reference
    analyzer = IncrementalAnalyzer(classifier)
    pipeline = IngestPipeline(
        root, analyzer,
        IngestConfig(checkpoint_interval=interval, retention=retention),
    )
    pipeline.open()  # no base corpus: recovery only
    recovered_seq = pipeline.applied_seq
    assert epoch_of(pipeline.report) == epochs[recovered_seq], \
        "recovered state diverges from the uninterrupted run"
    for seq in range(recovered_seq + 1, STREAM_LENGTH + 1):
        pipeline.apply(stream_delta(seq, anchor))
    assert pipeline.applied_seq == STREAM_LENGTH
    assert epoch_of(pipeline.report) == epochs[STREAM_LENGTH]
    assert pipeline.report.general_scores() == final_scores

    diag = pipeline.diagnostics()
    audit = diag["seq_audit"]
    assert audit["contiguous"], diag
    assert audit["no_double_apply"], diag
    assert diag["wal_last_seq"] == STREAM_LENGTH  # one record per apply
    pipeline.close()

    # A second clean reopen lands on the exact same bytes again.
    reopened = IngestPipeline(
        root, IncrementalAnalyzer(classifier),
        IngestConfig(checkpoint_interval=interval, retention=retention),
    )
    reopened.open()
    assert reopened.applied_seq == STREAM_LENGTH
    assert epoch_of(reopened.report) == epochs[STREAM_LENGTH]
    reopened.close()


class TestKillAnywhere:
    @pytest.mark.parametrize("mode", DAMAGE_MODES)
    @pytest.mark.parametrize("kill", [0, 2, STREAM_LENGTH - 1])
    def test_recovery_is_byte_identical(self, tmp_path, classifier,
                                        fig1_corpus, reference, kill, mode):
        anchor = reference[0]
        run_and_kill(tmp_path, classifier, fig1_corpus, kill,
                     interval=2, mode=mode, anchor=anchor)
        recover_and_finish(tmp_path, classifier, 2, anchor, reference)

    @settings(max_examples=12, deadline=None)
    @given(
        kill=st.integers(min_value=0, max_value=STREAM_LENGTH),
        mode=st.sampled_from(DAMAGE_MODES),
        interval=st.sampled_from([1, 2, 3, 100]),
    )
    def test_randomized_kill_points(self, classifier, fig1_corpus,
                                    reference, kill, mode, interval):
        anchor = reference[0]
        root = Path(tempfile.mkdtemp(prefix="crash-recovery-"))
        try:
            run_and_kill(root, classifier, fig1_corpus, kill,
                         interval=interval, mode=mode, anchor=anchor)
            recover_and_finish(root, classifier, interval, anchor, reference)
        finally:
            shutil.rmtree(root, ignore_errors=True)

    def test_double_crash_during_recovery(self, tmp_path, classifier,
                                          fig1_corpus, reference):
        """Crash, recover partway, crash again, recover again."""
        anchor = reference[0]
        _, epochs, _ = reference
        run_and_kill(tmp_path, classifier, fig1_corpus, 2,
                     interval=1, mode="torn_append", anchor=anchor)
        # First recovery applies one more delta, then "crashes" too.
        half = IngestPipeline(
            tmp_path, IncrementalAnalyzer(classifier),
            IngestConfig(checkpoint_interval=1),
        )
        half.open()
        half.apply(stream_delta(3, anchor))
        inject_damage(tmp_path, "torn_append", 4, anchor)
        recover_and_finish(tmp_path, classifier, 1, anchor, reference)


class TestRetentionRecovery:
    """The kill-anywhere guarantee must survive keep-more-than-newest.

    Retention changes what the pruner deletes, not what recovery
    resolves: with several checkpoints retained, recovery must still
    land on the *newest* complete one — the WAL is truncated up to it,
    so resuming from any older retained checkpoint would lose the
    batches in between.
    """

    @pytest.mark.parametrize("mode", DAMAGE_MODES)
    @pytest.mark.parametrize("retention", ["last:3", "all"])
    def test_kill_anywhere_under_retention(self, tmp_path, classifier,
                                           fig1_corpus, reference,
                                           mode, retention):
        anchor = reference[0]
        run_and_kill(tmp_path, classifier, fig1_corpus, STREAM_LENGTH - 1,
                     interval=1, mode=mode, anchor=anchor,
                     retention=retention)
        recover_and_finish(tmp_path, classifier, 1, anchor, reference,
                           retention=retention)

    def test_lagging_current_with_retained_older_checkpoints(
            self, tmp_path, classifier, fig1_corpus, reference):
        """CURRENT points at an older checkpoint that still *exists*.

        Under keep-last-1 a lagging CURRENT dangles (its target was
        pruned) and the fallback scan saves the day trivially.  Under
        retention the lagging target is a real, loadable checkpoint —
        the dangerous case: blindly honoring CURRENT would load old
        state whose WAL suffix was already truncated, silently losing
        applied batches.  Recovery must prefer the newest complete
        checkpoint over the pointer.
        """
        anchor = reference[0]
        _, epochs, _ = reference
        pipeline = IngestPipeline(
            tmp_path, IncrementalAnalyzer(classifier),
            IngestConfig(checkpoint_interval=1, retention="last:4"),
        )
        pipeline.open(fig1_corpus)
        pipeline.wait_recovery_checkpoint()
        for seq in (1, 2, 3):
            pipeline.apply(stream_delta(seq, anchor))
        # "Crash": abandon without close, then rewind CURRENT to the
        # oldest retained checkpoint, which is still on disk.
        manager = CheckpointManager(tmp_path / "checkpoints")
        names = [name for name, _, _, _ in manager.manifest()]
        assert len(names) >= 2, names
        (tmp_path / "checkpoints" / "CURRENT").write_text(names[0] + "\n")

        reopened = IngestPipeline(
            tmp_path, IncrementalAnalyzer(classifier),
            IngestConfig(checkpoint_interval=1, retention="last:4"),
        )
        reopened.open()
        assert reopened.applied_seq == 3, \
            "recovery honored a lagging CURRENT and lost applied batches"
        assert epoch_of(reopened.report) == epochs[3]
        reopened.close()
        recover_and_finish(tmp_path, classifier, 1, anchor, reference,
                           retention="last:4")


class TestCheckpointUnpointed:
    def test_current_pointer_lagging_one_checkpoint(self, tmp_path,
                                                    classifier, fig1_corpus,
                                                    reference):
        """Crash between writing ckpt N and repointing CURRENT.

        The pruner keeps only the newest checkpoint, so a lagging
        CURRENT dangles and recovery must fall back to the scan.
        """
        anchor = reference[0]
        analyzer = IncrementalAnalyzer(classifier)
        pipeline = IngestPipeline(
            tmp_path, analyzer, IngestConfig(checkpoint_interval=1)
        )
        with mock.patch.object(
            CheckpointManager, "_point_current", return_value=None
        ):
            pipeline.open(fig1_corpus)
            for seq in (1, 2):
                pipeline.apply(stream_delta(seq, anchor))
        assert not (tmp_path / "checkpoints" / "CURRENT").exists()
        recover_and_finish(tmp_path, classifier, 1, anchor, reference)
