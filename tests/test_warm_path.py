"""Regression tests for the O(dirty-rows) warm apply path.

Covers the warm-path bugfix sweep: membership sharing (no O(corpus)
copy per apply), delta-only post classification, the structured
link-weight-decrease warning, the residual-bounded frontier solve, and
``InfluenceSnapshot.evolve``.
"""

import logging

import pytest

from repro.core import CorpusDelta, IncrementalAnalyzer
from repro.core.incremental import _copy_corpus
from repro.core.topk import full_ranking, top_k
from repro.data import Blogger, Comment, CorpusBuilder, Link, Post
from repro.errors import CorpusError, ReproError
from repro.nlp import NaiveBayesClassifier
from repro.serve.snapshot import InfluenceSnapshot
from repro.synth import DOMAIN_VOCABULARIES


@pytest.fixture(scope="module")
def classifier():
    return NaiveBayesClassifier.from_seed_vocabulary(DOMAIN_VOCABULARIES)


def local_delta(corpus, seq=0):
    """A delta touching only existing bloggers: no new rows, no links.

    Such a delta leaves the GL scores provably unchanged, which is what
    lets the solver take the residual-bounded frontier path.
    """
    authors = sorted(corpus.blogger_ids())
    post = Post(f"warm-post-{seq:02d}", authors[seq % len(authors)],
                body="a fresh take on the stadium marathon game " * 3,
                created_day=400 + seq)
    comment = Comment(f"warm-comment-{seq:02d}", post.post_id,
                      authors[(seq + 1) % len(authors)],
                      text="I agree, a wonderful read", created_day=401 + seq)
    return CorpusDelta(posts=[post], comments=[comment])


class CountingClassifier:
    """Wraps a classifier and counts ``predict_proba`` invocations."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    @property
    def classes(self):
        return self._inner.classes

    def predict_proba(self, text):
        self.calls += 1
        return self._inner.predict_proba(text)


class TestMembershipSharing:
    """Satellite 1: the analyzer owns ONE membership dict for life."""

    def test_report_shares_the_analyzer_membership_dict(
        self, classifier, small_blogosphere
    ):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        report = analyzer.fit(corpus)
        assert report.domain_influence._post_memberships \
            is analyzer._memberships
        report = analyzer.apply(local_delta(analyzer._corpus or corpus))
        # After an apply the report still references the same dict —
        # no per-apply O(corpus) membership copy.
        assert report.domain_influence._post_memberships \
            is analyzer._memberships

    def test_membership_dict_identity_survives_newcomer_delta(
        self, classifier, small_blogosphere
    ):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        analyzer.fit(corpus)
        delta = CorpusDelta(
            bloggers=[Blogger("newcomer-77")],
            posts=[Post("newpost-77", "newcomer-77",
                        body="gallery paintings and sculpture " * 4)],
        )
        report = analyzer.apply(delta)
        assert report.domain_influence._post_memberships \
            is analyzer._memberships
        assert "newpost-77" in analyzer._memberships


class TestDeltaOnlyClassification:
    """Satellite 2: classify exactly the delta's new posts."""

    def test_classifier_called_once_per_post(
        self, classifier, small_blogosphere
    ):
        corpus, _ = small_blogosphere
        counting = CountingClassifier(classifier)
        analyzer = IncrementalAnalyzer(counting)
        analyzer.fit(corpus)
        assert counting.calls == len(corpus.posts)

        counting.calls = 0
        analyzer.apply(local_delta(analyzer._corpus, seq=0))
        assert counting.calls == 1  # exactly the delta's one post

        counting.calls = 0
        analyzer.apply(CorpusDelta(comments=[
            Comment("only-comment-00", "warm-post-00",
                    sorted(corpus.blogger_ids())[3],
                    text="nice", created_day=410),
        ]))
        assert counting.calls == 0  # no new posts, no classification

        counting.calls = 0
        authors = sorted(corpus.blogger_ids())
        analyzer.apply(CorpusDelta(posts=[
            Post(f"pair-post-{i}", authors[i],
                 body="two fresh posts about the garden", created_day=420)
            for i in range(2)
        ]))
        assert counting.calls == 2


class TestLinkWeightDecreaseWarning:
    """Satellite 3: shrinking link weights are surfaced, not swallowed."""

    @staticmethod
    def _corpus_with_weight(weight):
        builder = CorpusBuilder()
        builder.blogger("alice").blogger("bob")
        builder.post("alice", body="a post about roses " * 3)
        builder.link("bob", "alice", weight=weight)
        return builder.build()

    def test_strict_raises(self):
        base = self._corpus_with_weight(2.5)
        grown = self._corpus_with_weight(1.0)
        with pytest.raises(CorpusError, match="lost weight"):
            CorpusDelta.between(base, grown)

    def test_partial_view_emits_structured_warning(self, caplog):
        base = self._corpus_with_weight(2.5)
        grown = self._corpus_with_weight(1.0)
        with caplog.at_level(logging.WARNING, logger="repro.incremental"):
            delta = CorpusDelta.between(base, grown, strict=False)
        assert delta.is_empty()  # the decrease cannot be represented
        (record,) = [r for r in caplog.records
                     if getattr(r, "event", None) == "link-weight-decrease"]
        assert record.source_id == "bob"
        assert record.target_id == "alice"
        assert record.base_weight == 2.5
        assert record.grown_weight == 1.0
        assert "lost weight" in record.getMessage()


class TestFrontierWarmApply:
    """The tentpole: local deltas ride the residual-bounded frontier."""

    def test_local_delta_engages_frontier(self, classifier,
                                          small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        analyzer.fit(corpus)
        assert analyzer.last_changed_ids is None  # cold fit: full path
        report = analyzer.apply(local_delta(analyzer._corpus))
        cache = analyzer._cache
        assert cache.last_frontier_touched_rows is not None
        assert analyzer.last_changed_ids is not None
        # The frontier never leaves the dependency closure of its seeds.
        closure = set(cache.last_frontier_seed_rows)
        dependents = cache.ensure_dependents()
        frontier = list(closure)
        while frontier:
            row = frontier.pop()
            for dep in dependents.get(row, ()):
                if dep not in closure:
                    closure.add(dep)
                    frontier.append(dep)
        assert cache.last_frontier_touched_rows <= closure
        assert report.converged

    def test_newcomer_delta_falls_back_to_full_path(
        self, classifier, small_blogosphere
    ):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        analyzer.fit(corpus)
        delta = CorpusDelta(
            bloggers=[Blogger("newcomer-88")],
            links=[Link(sorted(corpus.blogger_ids())[0], "newcomer-88")],
        )
        analyzer.apply(delta)
        # New bloggers/links move GL: the frontier must not engage.
        assert analyzer._cache.last_frontier_touched_rows is None
        assert analyzer.last_changed_ids is None

    def test_warm_scores_match_cold_solve(self, classifier,
                                          small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        analyzer.fit(corpus)
        for seq in range(3):
            report = analyzer.apply(local_delta(analyzer._corpus, seq=seq))
        cold = IncrementalAnalyzer(classifier).fit(
            _copy_corpus(analyzer._corpus)
        )
        for blogger_id, value in cold.scores.influence.items():
            assert report.scores.influence[blogger_id] == \
                pytest.approx(value, abs=1e-9)

    def test_patched_rankings_match_rebuilt(self, classifier,
                                            small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        analyzer.fit(corpus)
        report = analyzer.apply(local_delta(analyzer._corpus))
        assert report.ranking() == full_ranking(report.scores.influence)
        assert report.top_influencers(5) == top_k(
            report.scores.influence, 5
        )
        for domain in report.domains:
            assert report.ranking(domain) == full_ranking(
                report.domain_influence.domain_scores(domain)
            )


class TestSnapshotEvolve:
    def _fitted(self, classifier, small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        analyzer.fit(corpus)
        return analyzer

    def test_evolved_payload_matches_fresh_compile(
        self, classifier, small_blogosphere
    ):
        analyzer = self._fitted(classifier, small_blogosphere)
        snap = InfluenceSnapshot.compile(
            analyzer.report, created_at=1.0, created_monotonic=2.0
        )
        report = analyzer.apply(local_delta(analyzer._corpus))
        changed = analyzer.last_changed_ids
        assert changed is not None
        evolved = InfluenceSnapshot.evolve(
            snap, report, changed, created_at=1.0, created_monotonic=2.0
        )
        fresh = InfluenceSnapshot.compile(
            report, created_at=1.0, created_monotonic=2.0
        )
        assert evolved.to_payload() == fresh.to_payload()
        assert evolved.epoch == fresh.epoch

    def test_evolve_rejects_parameter_change(
        self, classifier, small_blogosphere
    ):
        from repro.core import MassParameters

        analyzer = self._fitted(classifier, small_blogosphere)
        snap = InfluenceSnapshot.compile(analyzer.report)
        other = IncrementalAnalyzer(
            classifier, params=MassParameters(alpha=0.7)
        )
        report = other.fit(_copy_corpus(analyzer._corpus))
        with pytest.raises(ReproError, match="fingerprint"):
            InfluenceSnapshot.evolve(snap, report, set())

    def test_store_refresh_uses_evolve(self, small_blogosphere):
        from repro.obs import Instrumentation
        from repro.serve.store import SnapshotStore

        corpus, _ = small_blogosphere
        instr = Instrumentation()
        store = SnapshotStore(corpus, instrumentation=instr)
        before = store.snapshot
        store.submit(local_delta(corpus))
        after = store.refresh_now()
        assert after is not before
        evolves = instr.metrics.counter(
            "repro_snapshot_evolve_total",
            "Snapshot refreshes served by the O(changed) evolve path",
        ).value
        assert evolves == 1
        # The evolved snapshot serves the same answers a fresh compile
        # would.
        fresh = InfluenceSnapshot.compile(store.report)
        assert after.top(5) == fresh.top(5)
        for domain in after.domains:
            assert after.top(5, domain) == fresh.top(5, domain)
