"""Unit tests for ground-truth bookkeeping."""

import math

import pytest

from repro.synth import BloggerTruth, GroundTruth


@pytest.fixture()
def truth() -> GroundTruth:
    bloggers = {
        "star": BloggerTruth(
            "star", 1.0, {"Sports": 0.8, "Art": 0.2}, ("Sports",)
        ),
        "mid": BloggerTruth("mid", 0.5, {"Sports": 0.5, "Art": 0.5}),
        "weak": BloggerTruth("weak", 0.1, {"Sports": 0.1, "Art": 0.9}),
    }
    return GroundTruth(domains=["Sports", "Art"], bloggers=bloggers)


class TestStrengths:
    def test_domain_strength_product(self, truth):
        assert math.isclose(
            truth.bloggers["star"].domain_strength("Sports"), 0.8
        )
        assert truth.bloggers["star"].domain_strength("Travel") == 0.0

    def test_domain_strengths_map(self, truth):
        strengths = truth.domain_strengths("Sports")
        assert set(strengths) == {"star", "mid", "weak"}
        assert strengths["star"] > strengths["mid"] > strengths["weak"]

    def test_unknown_domain_rejected(self, truth):
        with pytest.raises(KeyError):
            truth.domain_strengths("Travel")

    def test_general_strengths(self, truth):
        assert truth.general_strengths()["star"] == 1.0


class TestRankingsAndApplicability:
    def test_top_true_influencers(self, truth):
        assert truth.top_true_influencers("Sports", 2) == ["star", "mid"]
        assert truth.top_true_influencers("Art", 1) == ["mid"]

    def test_planted_influencers(self, truth):
        assert truth.planted_influencers("Sports") == ["star"]
        assert truth.planted_influencers("Art") == []

    def test_applicability_normalized(self, truth):
        assert math.isclose(truth.applicability("star", "Sports"), 1.0)
        assert 0.0 < truth.applicability("weak", "Sports") < 1.0
        assert truth.applicability("ghost", "Sports") == 0.0

    def test_general_applicability(self, truth):
        assert math.isclose(truth.general_applicability("star"), 1.0)
        assert math.isclose(truth.general_applicability("mid"), 0.5)
        assert truth.general_applicability("ghost") == 0.0
