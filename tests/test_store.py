"""Unit and equivalence tests for the columnar data plane.

Covers the builder's append contract (ordering, referential integrity,
link merging), the container writer, bit-identical solves between the
object and columnar planes, the ``open_corpus`` dispatcher plus the
``migrate`` CLI, and format-version-2 checkpoints (columnar corpus,
with version-1 XML checkpoints still readable).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.cli import main
from repro.core import MassModel
from repro.core.report_io import save_report
from repro.data import (
    BlogCorpus,
    dumps_corpus,
    migrate_to_columnar,
    open_corpus,
    save_corpus,
)
from repro.errors import CorpusError, StoreFormatError
from repro.ingest.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointManager,
)
from repro.serve import compile_snapshot
from repro.store import (
    ColumnarBuilder,
    ColumnarCorpus,
    StoreReader,
    StoreWriter,
    write_corpus,
)
from repro.synth import DOMAIN_VOCABULARIES


@pytest.fixture()
def builder():
    instance = ColumnarBuilder()
    yield instance
    instance.close()


class TestBuilderValidation:
    def test_ids_must_strictly_ascend(self, builder):
        builder.add_blogger("b")
        with pytest.raises(CorpusError, match="ascending"):
            builder.add_blogger("a")
        with pytest.raises(CorpusError, match="ascending"):
            builder.add_blogger("b")
        builder.add_post("p1", "b")
        with pytest.raises(CorpusError, match="ascending"):
            builder.add_post("p0", "b")
        builder.add_comment("c1", "p1", "b")
        with pytest.raises(CorpusError, match="ascending"):
            builder.add_comment("c1", "p1", "b")

    def test_referential_integrity_at_append(self, builder):
        builder.add_blogger("alice")
        with pytest.raises(CorpusError, match="unknown blogger"):
            builder.add_post("p0", "nobody")
        builder.add_post("p0", "alice")
        with pytest.raises(CorpusError, match="unknown post"):
            builder.add_comment("c0", "p-missing", "alice")
        with pytest.raises(CorpusError, match="unknown blogger"):
            builder.add_comment("c0", "p0", "nobody")

    def test_link_validation(self, builder):
        builder.add_blogger("alice")
        builder.add_blogger("bob")
        with pytest.raises(CorpusError, match="self-link"):
            builder.add_link("alice", "alice")
        with pytest.raises(CorpusError, match="unknown"):
            builder.add_link("alice", "nobody")
        with pytest.raises(CorpusError, match="unknown"):
            builder.add_link("nobody", "bob")
        for bad in (0.0, -1.0, math.nan, math.inf, "heavy"):
            with pytest.raises(CorpusError, match="positive"):
                builder.add_link("alice", "bob", bad)

    def test_parallel_links_merge_in_first_position(self, builder, tmp_path):
        for blogger_id in ("a", "b", "c"):
            builder.add_blogger(blogger_id)
        builder.add_link("a", "b", 1.0)
        builder.add_link("a", "c", 0.5)
        builder.add_link("a", "b", 2.0)
        assert builder.counts["links"] == 2
        path = builder.finish(tmp_path / "links.mcol")
        with ColumnarCorpus.open(path) as view:
            assert [
                (link.source_id, link.target_id, link.weight)
                for link in view.links
            ] == [("a", "b", 3.0), ("a", "c", 0.5)]

    def test_counts_track_appends(self, builder):
        assert builder.counts == {
            "bloggers": 0, "posts": 0, "comments": 0, "links": 0,
        }
        builder.add_blogger("a")
        builder.add_blogger("b")
        builder.add_post("p", "a")
        builder.add_comment("c", "p", "b")
        builder.add_link("b", "a")
        assert builder.counts == {
            "bloggers": 2, "posts": 1, "comments": 1, "links": 1,
        }

    def test_finished_builder_rejects_appends(self, builder, tmp_path):
        builder.add_blogger("a")
        builder.finish(tmp_path / "done.mcol")
        with pytest.raises(CorpusError, match="finished"):
            builder.add_blogger("b")

    def test_empty_ids_and_negative_days_rejected(self, builder):
        with pytest.raises(CorpusError):
            builder.add_blogger("")
        with pytest.raises(CorpusError):
            builder.add_blogger("a", joined_day=-1)

    def test_empty_corpus_round_trips(self, builder, tmp_path):
        path = builder.finish(tmp_path / "empty.mcol")
        with ColumnarCorpus.open(path) as view:
            assert len(view) == 0
            assert view.blogger_ids() == []
            assert list(view.links) == []

    def test_scratch_is_released_on_close(self, tmp_path):
        instance = ColumnarBuilder(scratch_dir=tmp_path)
        scratch_dirs = list(tmp_path.glob("mass-col-*"))
        assert len(scratch_dirs) == 1
        instance.add_blogger("a")
        instance.close()
        assert not scratch_dirs[0].exists()
        instance.close()  # idempotent


class TestStoreWriter:
    def test_duplicate_section_rejected(self, tmp_path):
        writer = StoreWriter(tmp_path / "w.mcol")
        writer.add_section("col", "i64", [b"\x00" * 8])
        with pytest.raises(StoreFormatError, match="duplicate"):
            writer.add_section("col", "i64", [b""])
        writer.abort()

    def test_unknown_kind_rejected(self, tmp_path):
        writer = StoreWriter(tmp_path / "w.mcol")
        with pytest.raises(StoreFormatError, match="unknown section kind"):
            writer.add_section("col", "u32", [b""])
        writer.abort()

    def test_finish_twice_rejected(self, tmp_path):
        writer = StoreWriter(tmp_path / "w.mcol")
        writer.finish({})
        with pytest.raises(StoreFormatError, match="twice"):
            writer.finish({})

    def test_abort_leaves_nothing_behind(self, tmp_path):
        writer = StoreWriter(tmp_path / "w.mcol")
        writer.add_section("col", "raw", [b"abc"])
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_odd_length_sections_stay_aligned_and_chunked(self, tmp_path):
        writer = StoreWriter(tmp_path / "w.mcol")
        writer.add_section("blob", "raw", [b"abc", b"", b"de"])
        writer.add_section("col", "i64", [(7).to_bytes(8, "little"),
                                          (9).to_bytes(8, "little")])
        path = writer.finish({"rows": 2}, flags={"testing": True})
        reader = StoreReader(path)
        try:
            assert bytes(reader.raw("blob")) == b"abcde"
            assert list(reader.i64("col")) == [7, 9]
            assert reader.counts == {"rows": 2}
            assert reader.flags == {"testing": True}
            assert reader.has("blob") and not reader.has("missing")
        finally:
            reader.close()


@pytest.fixture(scope="module")
def fig1_planes(tmp_path_factory, fig1_corpus):
    """The Fig. 1 corpus on both planes: objects and mapped columns."""
    path = tmp_path_factory.mktemp("planes") / "fig1.mcol"
    write_corpus(fig1_corpus, path)
    view = ColumnarCorpus.open(path)
    yield fig1_corpus, view
    view.close()


class TestSolveEquivalence:
    def test_fig1_solve_is_bit_identical(self, fig1_planes, fig1_seed_words):
        corpus, view = fig1_planes
        object_report = MassModel(
            domain_seed_words=fig1_seed_words
        ).fit(corpus)
        columnar_report = MassModel(
            domain_seed_words=fig1_seed_words
        ).fit(view)
        assert columnar_report.general_scores() == \
            object_report.general_scores()
        # The snapshot epoch hashes every id and score: equality here
        # is bit-identity of the whole served surface.
        assert compile_snapshot(columnar_report).epoch == \
            compile_snapshot(object_report).epoch

    def test_generated_blogosphere_epoch_matches(self, small_blogosphere,
                                                 tmp_path):
        corpus, _ = small_blogosphere
        path = write_corpus(corpus, tmp_path / "small.mcol")
        with ColumnarCorpus.open(path) as view:
            columnar_report = MassModel(
                domain_seed_words=DOMAIN_VOCABULARIES
            ).fit(view)
        object_report = MassModel(
            domain_seed_words=DOMAIN_VOCABULARIES
        ).fit(corpus)
        assert compile_snapshot(columnar_report).epoch == \
            compile_snapshot(object_report).epoch

    def test_derived_views_match_object_plane(self, fig1_planes):
        corpus, view = fig1_planes
        some = corpus.blogger_ids()[:4]
        assert dumps_corpus(view.subset(some)) == \
            dumps_corpus(corpus.subset(some))
        assert dumps_corpus(view.time_slice(0, 30)) == \
            dumps_corpus(corpus.time_slice(0, 30))

    def test_lookup_errors_match_protocol(self, fig1_planes):
        _, view = fig1_planes
        with pytest.raises(CorpusError, match="unknown blogger"):
            view.blogger("nobody")
        with pytest.raises(CorpusError, match="unknown post"):
            view.post("no-post")
        with pytest.raises(CorpusError, match="unknown post"):
            view.post_author_id("no-post")
        assert view.posts_by("nobody") == []
        assert view.comments_on("no-post") == []
        assert view.in_links("nobody") == []
        with pytest.raises(CorpusError, match="unknown bloggers"):
            view.subset(["nobody"])
        with pytest.raises(CorpusError, match="empty window"):
            view.time_slice(5, 5)
        with pytest.raises(CorpusError, match="without token"):
            view.vocabulary()


class TestMigrationAndDispatch:
    def test_migrate_round_trips_the_xml_store(self, fig1_corpus, tmp_path):
        directory = save_corpus(fig1_corpus, tmp_path / "crawl")
        dest = migrate_to_columnar(directory, tmp_path / "crawl.mcol")
        with ColumnarCorpus.open(dest) as view:
            assert view.blogger_ids() == fig1_corpus.blogger_ids()
            assert list(view.posts) == sorted(fig1_corpus.posts)
            assert list(view.comments) == sorted(fig1_corpus.comments)
            assert len(view.links) == len(fig1_corpus.links)

    def test_open_corpus_dispatches_on_disk_form(self, fig1_corpus,
                                                 tmp_path):
        directory = save_corpus(fig1_corpus, tmp_path / "crawl")
        dest = write_corpus(fig1_corpus, tmp_path / "crawl.mcol")
        loaded = open_corpus(directory)
        assert isinstance(loaded, BlogCorpus)
        view = open_corpus(dest)
        try:
            assert isinstance(view, ColumnarCorpus)
            assert view.blogger_ids() == loaded.blogger_ids()
        finally:
            view.close()

    def test_migrate_cli(self, fig1_corpus, tmp_path):
        directory = save_corpus(fig1_corpus, tmp_path / "crawl")
        out = tmp_path / "migrated.mcol"
        assert main([
            "migrate", "--data", str(directory), "--out", str(out),
        ]) == 0
        with ColumnarCorpus.open(out) as view:
            assert len(view) == len(fig1_corpus.bloggers)

    def test_analyze_cli_accepts_columnar_data(self, small_blogosphere,
                                               tmp_path):
        corpus, _ = small_blogosphere
        dest = write_corpus(corpus, tmp_path / "small.mcol")
        assert main(["analyze", "--data", str(dest), "--top", "3"]) == 0


class TestCheckpointV2:
    def test_checkpoint_round_trips_columnar(self, tmp_path, fig1_corpus,
                                             fig1_seed_words):
        report = MassModel(domain_seed_words=fig1_seed_words).fit(fig1_corpus)
        manager = CheckpointManager(tmp_path / "ckpt")
        path = manager.write(fig1_corpus, report, seq=3)
        assert (path / "corpus.mcol").is_file()
        assert not (path / "corpus").exists()
        meta = json.loads((path / "meta.json").read_text(encoding="utf-8"))
        assert meta["format_version"] == CHECKPOINT_FORMAT_VERSION == 2
        loaded = manager.load(report.params)
        assert loaded.seq == 3
        assert isinstance(loaded.corpus, ColumnarCorpus)
        assert loaded.report.general_scores() == report.general_scores()
        loaded.corpus.close()

    def test_version1_xml_checkpoints_still_load(self, tmp_path,
                                                 fig1_corpus,
                                                 fig1_seed_words):
        report = MassModel(domain_seed_words=fig1_seed_words).fit(fig1_corpus)
        directory = tmp_path / "ckpt" / "ckpt-00000007"
        directory.mkdir(parents=True)
        save_corpus(fig1_corpus, directory / "corpus")
        save_report(report, directory / "report.xml")
        (directory / "meta.json").write_text(json.dumps({
            "format_version": 1,
            "seq": 7,
            "params_fingerprint": report.params.fingerprint(),
        }), encoding="utf-8")
        loaded = CheckpointManager(tmp_path / "ckpt").load(report.params)
        assert loaded.seq == 7
        assert isinstance(loaded.corpus, BlogCorpus)
        assert loaded.report.general_scores() == report.general_scores()
