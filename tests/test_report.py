"""Unit tests for InfluenceReport and the blogger detail pop-up."""

import pytest

from repro.core import MassModel


@pytest.fixture(scope="module")
def fig1_report(fig1_corpus, fig1_seed_words):
    return MassModel(domain_seed_words=fig1_seed_words).fit(fig1_corpus)


class TestRankings:
    def test_general_top_is_amery(self, fig1_report):
        assert fig1_report.top_influencers(1)[0][0] == "amery"

    def test_domain_rankings_differ_from_general_scores(self, fig1_report):
        computer = fig1_report.ranking("Computer")
        economics = fig1_report.ranking("Economics")
        assert computer != economics

    def test_full_ranking_covers_everyone(self, fig1_report):
        assert len(fig1_report.ranking()) == 9

    def test_converged(self, fig1_report):
        assert fig1_report.converged

    def test_general_scores_copy(self, fig1_report):
        scores = fig1_report.general_scores()
        scores["amery"] = -1
        assert fig1_report.general_scores()["amery"] > 0


class TestBloggerDetail:
    def test_amery_detail(self, fig1_report):
        detail = fig1_report.blogger_detail("amery")
        assert detail.name == "Amery"
        assert detail.num_posts == 2
        assert detail.num_comments_received == 3
        assert detail.num_comments_written == 0
        assert detail.influence > 0
        assert detail.ap > 0
        assert set(detail.domain_scores) == {"Computer", "Economics"}
        assert len(detail.top_posts) == 2

    def test_dominant_domain(self, fig1_report):
        assert fig1_report.blogger_detail("helen").dominant_domain() == \
            "Computer"

    def test_commenter_only_detail(self, fig1_report):
        detail = fig1_report.blogger_detail("cary")
        assert detail.num_posts == 0
        assert detail.num_comments_written == 2
        assert detail.top_posts == []

    def test_top_posts_ordered(self, fig1_report):
        detail = fig1_report.blogger_detail("amery", top_posts=2)
        scores = [score for _, score in detail.top_posts]
        assert scores == sorted(scores, reverse=True)


class TestSummary:
    def test_summary_rows_per_domain(self, fig1_report):
        rows = fig1_report.summary_rows(k=2)
        assert len(rows) == 2
        for domain, bloggers in rows:
            assert domain in ("Computer", "Economics")
            assert len(bloggers) == 2
