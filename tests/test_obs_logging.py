"""Tests for structured logging configuration."""

import io
import json
import logging

import pytest

from repro.obs import ROOT_LOGGER_NAME, configure_logging, get_logger


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    """Leave the repro logger as the suite found it."""
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    saved_handlers = list(logger.handlers)
    saved_level = logger.level
    saved_propagate = logger.propagate
    yield
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    for handler in saved_handlers:
        logger.addHandler(handler)
    logger.setLevel(saved_level)
    logger.propagate = saved_propagate


class TestGetLogger:
    def test_prefixes_into_the_hierarchy(self):
        assert get_logger("solver").name == "repro.solver"

    def test_keeps_qualified_names(self):
        assert get_logger("repro.crawler").name == "repro.crawler"

    def test_empty_name_is_the_root(self):
        assert get_logger().name == "repro"


class TestConfigureLogging:
    def test_text_output_has_level_and_logger(self):
        stream = io.StringIO()
        configure_logging("DEBUG", stream=stream)
        get_logger("solver").debug("iteration %d", 7)
        line = stream.getvalue()
        assert "DEBUG" in line
        assert "repro.solver" in line
        assert "iteration 7" in line

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging("WARNING", stream=stream)
        get_logger("solver").info("should not appear")
        get_logger("solver").warning("should appear")
        output = stream.getvalue()
        assert "should not appear" not in output
        assert "should appear" in output

    def test_idempotent_no_duplicate_handlers(self):
        stream = io.StringIO()
        configure_logging("INFO", stream=stream)
        configure_logging("INFO", stream=stream)
        get_logger("x").info("once")
        assert stream.getvalue().count("once") == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("LOUD")

    def test_json_lines_output(self):
        stream = io.StringIO()
        configure_logging("INFO", json=True, stream=stream)
        get_logger("crawler").info(
            "wave done", extra={"wave": 3, "fetched": 12}
        )
        record = json.loads(stream.getvalue())
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.crawler"
        assert record["message"] == "wave done"
        assert record["wave"] == 3
        assert record["fetched"] == 12

    def test_json_output_survives_non_serializable_extras(self):
        # A handler that raises on a weird extra would silently eat the
        # log line (logging swallows handler errors); the formatter
        # must stringify anything JSON cannot encode.
        class Opaque:
            def __repr__(self):
                return "<opaque thing>"

        class Unprintable:
            def __repr__(self):
                raise RuntimeError("repr exploded")

        stream = io.StringIO()
        configure_logging("INFO", json=True, stream=stream)
        get_logger("solver").info(
            "state", extra={
                "obj": Opaque(),
                "bad": Unprintable(),
                "path": {1, 2},
            },
        )
        record = json.loads(stream.getvalue())
        assert record["message"] == "state"
        assert record["obj"] == "<opaque thing>"
        assert record["bad"] == "<unprintable Unprintable>"
        assert "1" in record["path"] and "2" in record["path"]

    def test_json_output_stamps_trace_ids(self):
        from repro.obs.context import new_trace, use_trace

        stream = io.StringIO()
        configure_logging("INFO", json=True, stream=stream)
        ctx = new_trace()
        with use_trace(ctx):
            get_logger("serve").info("handled")
        get_logger("serve").info("background")
        traced, untraced = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        assert traced["trace_id"] == ctx.trace_id
        assert untraced.get("trace_id") is None
