"""Property suite for the O(dirty-rows) warm apply path.

Drives a randomized delta stream through an
:class:`~repro.core.incremental.IncrementalAnalyzer` and, after every
apply, holds the incremental machinery to the from-scratch ground
truth:

1. the patched rankings (general and per-domain) equal a full re-rank
   of the same score maps, tie-breaks included;
2. the evolved serving snapshot is byte-identical (``to_payload``) to
   a freshly compiled one;
3. the warm scores match a cold fit of the grown corpus within the
   1e-9 equivalence bound.

The stream mixes frontier-eligible deltas (posts/comments on existing
bloggers) with GL-moving ones (new bloggers, links), so both the
frontier path and the full-solve fallback are exercised.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CorpusDelta, IncrementalAnalyzer
from repro.core.incremental import _copy_corpus
from repro.core.topk import full_ranking, top_k
from repro.data import Blogger, Comment, Link, Post
from repro.nlp import NaiveBayesClassifier
from repro.serve.snapshot import InfluenceSnapshot
from repro.synth import DOMAIN_VOCABULARIES, BlogosphereConfig, generate_blogosphere

BODIES = [
    "the marathon stadium game was thrilling " * 3,
    "roses and tulips in the spring garden " * 3,
    "a new painting at the gallery opening " * 3,
    "the processor benchmark and compiler news " * 3,
]
COMMENTS = [
    "I agree, a wonderful read",
    "this is wrong and boring",
    "fascinating, thank you for writing it",
]

# Each op is (kind, author_pick, target_pick, text_pick).
op_strategy = st.tuples(
    st.sampled_from(["post", "comment", "comment", "post",
                     "newcomer", "link"]),
    st.integers(0, 10 ** 6),
    st.integers(0, 10 ** 6),
    st.integers(0, 10 ** 6),
)


@pytest.fixture(scope="module")
def base_state():
    corpus, _ = generate_blogosphere(
        BlogosphereConfig(num_bloggers=40, posts_per_blogger=3), seed=11
    )
    classifier = NaiveBayesClassifier.from_seed_vocabulary(
        DOMAIN_VOCABULARIES
    )
    return corpus, classifier


def build_delta(ops, bloggers, post_ids, seq):
    """Materialize drawn ops into one valid :class:`CorpusDelta`."""
    new_bloggers, new_posts, new_comments, new_links = [], [], [], []
    known_bloggers = list(bloggers)
    known_posts = list(post_ids)
    for n, (kind, author_pick, target_pick, text_pick) in enumerate(ops):
        uid = f"{seq:03d}-{n:02d}"
        if kind == "newcomer":
            blogger_id = f"prop-blogger-{uid}"
            new_bloggers.append(Blogger(blogger_id))
            known_bloggers.append(blogger_id)
        elif kind == "post":
            author = known_bloggers[author_pick % len(known_bloggers)]
            post = Post(f"prop-post-{uid}", author,
                        body=BODIES[text_pick % len(BODIES)],
                        created_day=500 + seq)
            new_posts.append(post)
            known_posts.append(post.post_id)
        elif kind == "comment":
            post_id = known_posts[target_pick % len(known_posts)]
            commenter = known_bloggers[author_pick % len(known_bloggers)]
            new_comments.append(Comment(
                f"prop-comment-{uid}", post_id, commenter,
                text=COMMENTS[text_pick % len(COMMENTS)],
                created_day=501 + seq,
            ))
        else:  # link
            source = known_bloggers[author_pick % len(known_bloggers)]
            target = known_bloggers[target_pick % len(known_bloggers)]
            if source != target:
                new_links.append(Link(source, target))
    return CorpusDelta(bloggers=new_bloggers, posts=new_posts,
                       comments=new_comments, links=new_links)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.lists(op_strategy, min_size=1, max_size=4),
                min_size=1, max_size=3))
def test_warm_apply_equals_cold_at_every_step(base_state, deltas_ops):
    corpus, classifier = base_state
    analyzer = IncrementalAnalyzer(classifier)
    analyzer.fit(_copy_corpus(corpus))
    snapshot = InfluenceSnapshot.compile(
        analyzer.report, created_at=1.0, created_monotonic=2.0
    )

    for seq, ops in enumerate(deltas_ops):
        delta = build_delta(
            ops,
            sorted(analyzer._corpus.blogger_ids()),
            sorted(analyzer._corpus.posts),
            seq,
        )
        if delta.is_empty():
            continue
        report = analyzer.apply(delta)

        # (1) patched rankings == full re-rank, tie-breaks included.
        influence = report.scores.influence
        assert report.ranking() == full_ranking(influence)
        assert report.top_influencers(5) == top_k(influence, 5)
        for domain in report.domains:
            assert report.ranking(domain) == full_ranking(
                report.domain_influence.domain_scores(domain)
            )

        # (2) evolved snapshot byte-identical to a fresh compile.
        changed = analyzer.last_changed_ids
        if changed is not None:
            snapshot = InfluenceSnapshot.evolve(
                snapshot, report, changed,
                created_at=1.0, created_monotonic=2.0,
            )
        else:
            snapshot = InfluenceSnapshot.compile(
                report, created_at=1.0, created_monotonic=2.0
            )
        fresh = InfluenceSnapshot.compile(
            report, created_at=1.0, created_monotonic=2.0
        )
        assert snapshot.to_payload() == fresh.to_payload()

        # (3) warm scores equal a cold fit within the 1e-9 harness.
        cold = IncrementalAnalyzer(classifier).fit(
            _copy_corpus(analyzer._corpus)
        )
        for blogger_id, value in cold.scores.influence.items():
            assert influence[blogger_id] == pytest.approx(value, abs=1e-9)
