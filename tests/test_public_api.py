"""Guardrails on the public API surface.

These catch the embarrassing release bugs: names listed in ``__all__``
that do not exist, exceptions that escape the common base class, and
re-export drift between packages.
"""

import importlib

import pytest

import repro
from repro import errors

PACKAGES = [
    "repro",
    "repro.core",
    "repro.data",
    "repro.nlp",
    "repro.graph",
    "repro.synth",
    "repro.crawler",
    "repro.ingest",
    "repro.baselines",
    "repro.apps",
    "repro.userstudy",
    "repro.viz",
    "repro.system",
    "repro.evaluation",
]


class TestAllExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        module = importlib.import_module(package_name)
        assert hasattr(module, "__all__"), package_name
        for name in module.__all__:
            assert hasattr(module, name), f"{package_name}.{name} missing"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_has_no_duplicates(self, package_name):
        module = importlib.import_module(package_name)
        assert len(module.__all__) == len(set(module.__all__))

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for name in errors.__dict__:
            obj = getattr(errors, name)
            if not (isinstance(obj, type) and issubclass(obj, Exception)):
                continue
            if issubclass(obj, Warning):
                # Warnings have their own root so callers can filter
                # them without also filtering hard errors.
                if obj is not errors.ReproWarning:
                    assert issubclass(obj, errors.ReproWarning), name
            elif obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_catching_base_catches_all(self):
        from repro.core import MassParameters
        from repro.data import Blogger

        with pytest.raises(errors.ReproError):
            Blogger("")  # CorpusError
        with pytest.raises(errors.ReproError):
            MassParameters(alpha=7)  # ParameterError

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)


class TestTopLevelConvenience:
    def test_headline_workflow_importable_from_root(self):
        # The README quickstart must work with root imports only.
        from repro import (
            BlogosphereConfig,
            MassParameters,
            MassSystem,
            generate_blogosphere,
        )

        corpus, _ = generate_blogosphere(
            BlogosphereConfig(num_bloggers=20, planted_per_domain=1), seed=0
        )
        system = MassSystem(params=MassParameters(alpha=0.4))
        system.load_dataset(corpus)
        assert len(system.top_influencers(3)) == 3
