"""Unit tests for the simulated blog service."""

import pytest

from repro.crawler import (
    SimulatedBlogService,
    SpaceNotFoundError,
    TransientFetchError,
)


class TestFetch:
    def test_page_contents(self, fig1_corpus):
        service = SimulatedBlogService(fig1_corpus)
        page = service.fetch_space("amery")
        assert page.blogger.blogger_id == "amery"
        assert [p.post_id for p in page.posts] == ["post1", "post2"]
        assert {c.commenter_id for c in page.comments} == {"bob", "cary"}
        assert page.links == ()  # amery links to nobody

    def test_neighbors_union_commenters_and_links(self, fig1_corpus):
        service = SimulatedBlogService(fig1_corpus)
        page = service.fetch_space("amery")
        assert page.neighbors == ["bob", "cary"]
        bob_page = service.fetch_space("bob")
        assert bob_page.neighbors == ["amery"]

    def test_neighbors_exclude_self(self, fig1_corpus):
        service = SimulatedBlogService(fig1_corpus)
        for blogger_id in fig1_corpus.blogger_ids():
            page = service.fetch_space(blogger_id)
            assert blogger_id not in page.neighbors

    def test_not_found(self, fig1_corpus):
        service = SimulatedBlogService(fig1_corpus)
        with pytest.raises(SpaceNotFoundError):
            service.fetch_space("ghost")
        assert service.stats.not_found == 1

    def test_stats_count_fetches(self, fig1_corpus):
        service = SimulatedBlogService(fig1_corpus)
        service.fetch_space("amery")
        service.fetch_space("bob")
        assert service.stats.fetches == 2


class TestFailures:
    def test_failures_are_transient(self, fig1_corpus):
        service = SimulatedBlogService(
            fig1_corpus, failure_rate=0.99, seed=1
        )
        failures = 0
        for blogger_id in fig1_corpus.blogger_ids():
            try:
                service.fetch_space(blogger_id)
            except TransientFetchError:
                failures += 1
                # Retry always succeeds.
                service.fetch_space(blogger_id)
        assert failures > 0
        assert service.stats.transient_failures == failures

    def test_failure_pattern_deterministic(self, fig1_corpus):
        def failing_set(seed):
            service = SimulatedBlogService(
                fig1_corpus, failure_rate=0.5, seed=seed
            )
            failed = set()
            for blogger_id in fig1_corpus.blogger_ids():
                try:
                    service.fetch_space(blogger_id)
                except TransientFetchError:
                    failed.add(blogger_id)
            return failed

        assert failing_set(3) == failing_set(3)

    def test_invalid_parameters(self, fig1_corpus):
        with pytest.raises(ValueError):
            SimulatedBlogService(fig1_corpus, latency=-1)
        with pytest.raises(ValueError):
            SimulatedBlogService(fig1_corpus, failure_rate=1.0)
