"""Unit tests for Scenario 1 (business advertisement)."""

import math

import pytest

from repro.apps import AdvertisingEngine
from repro.errors import ParameterError
from repro.nlp import NaiveBayesClassifier
from repro.synth import DOMAIN_VOCABULARIES


@pytest.fixture(scope="module")
def engine(medium_model_and_report) -> AdvertisingEngine:
    model, report = medium_model_and_report
    return AdvertisingEngine(report, model.classifier)


class TestTextMode:
    def test_sports_ad_targets_sports(self, engine, medium_blogosphere):
        _, truth = medium_blogosphere
        result = engine.recommend_for_text(
            "Buy our new running sneakers: marathon training, stadium "
            "fitness, the best jersey for every athlete and team",
            k=3,
        )
        assert result.mode == "text"
        assert result.interest_vector.dominant_domain() == "Sports"
        # At least one recommended blogger is a true top-5 Sports blogger.
        true_top = set(truth.top_true_influencers("Sports", 5))
        assert set(result.blogger_ids) & true_top

    def test_interest_vector_normalized(self, engine):
        result = engine.recommend_for_text("hospital vaccine doctor", k=2)
        assert math.isclose(sum(result.interest_vector.values()), 1.0)

    def test_empty_ad_rejected(self, engine):
        with pytest.raises(ParameterError, match="empty"):
            engine.recommend_for_text("   ")

    def test_k_respected(self, engine):
        assert len(engine.recommend_for_text("travel flight", k=5).recommendations) == 5


class TestDomainMode:
    def test_single_domain(self, engine, medium_report):
        result = engine.recommend_for_domains(["Art"], k=3)
        assert result.mode == "domains"
        assert result.interest_vector["Art"] == 1.0
        expected = [b for b, _ in medium_report.top_influencers(3, "Art")]
        assert result.blogger_ids == expected

    def test_multiple_domains_weighted_equally(self, engine):
        result = engine.recommend_for_domains(["Art", "Sports"], k=3)
        assert math.isclose(result.interest_vector["Art"], 0.5)
        assert math.isclose(result.interest_vector["Sports"], 0.5)

    def test_unknown_domain_rejected(self, engine):
        with pytest.raises(ParameterError, match="unknown domains"):
            engine.recommend_for_domains(["Astrology"])

    def test_no_domains_falls_back_to_general(self, engine, medium_report):
        result = engine.recommend_for_domains([], k=3)
        assert result.mode == "general"
        expected = [b for b, _ in medium_report.top_influencers(3)]
        assert result.blogger_ids == expected


class TestGeneralMode:
    def test_general_uniform_interest(self, engine):
        result = engine.recommend_general(k=3)
        values = set(result.interest_vector.values())
        assert len(values) == 1  # uniform


class TestConstruction:
    def test_domain_mismatch_rejected(self, medium_report):
        other = NaiveBayesClassifier.from_seed_vocabulary(
            {"X": ["x"], "Y": ["y"]}
        )
        with pytest.raises(ParameterError, match="do not match"):
            AdvertisingEngine(medium_report, other)

    def test_domains_property(self, engine):
        assert set(engine.domains) == set(DOMAIN_VOCABULARIES)
