"""Property-based tests for the temporal subsystem.

Three contracts, each over hypothesis-generated inputs:

1. **Inert decay is invisible** — ``half_life=inf`` (or
   ``kind="none"``) produces solutions *bit-identical* to the
   undecayed model on every backend, and the parameter fingerprint is
   unchanged, so pre-decay epochs and checkpoints stay valid.
2. **Decay is deterministic and monotone** — for a planted
   fresh-vs-stale citation pair, re-solving under the same half-life
   reproduces identical floats, every blogger's influence is
   non-decreasing in the half-life (weaker decay can only add
   non-negative mass), and the stale author loses strictly more than
   the fresh one once decay is active.
3. **as_of round-trips** — materializing any retained point of a
   durable history returns the exact epoch of the checkpoint the
   timestamp resolves to, for both the seq and wall-time axes.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CorpusDelta,
    IncrementalAnalyzer,
    InfluenceSolver,
    MassParameters,
)
from repro.data import BlogCorpus, Blogger, Comment, Link, Post
from repro.ingest import IngestConfig, IngestPipeline
from repro.nlp import NaiveBayesClassifier
from repro.serve import InfluenceSnapshot
from repro.synth import DOMAIN_VOCABULARIES
from repro.timeline import TimelineHistory

_WORDS = ["alpha", "bravo", "code", "stadium", "market", "paint", "agree",
          "great", "notes", "travel"]

_blogger_ids = [f"b{i}" for i in range(6)]

BACKENDS = ("reference", "sparse")


@st.composite
def corpora(draw) -> BlogCorpus:
    """Small random but always-valid corpora with spread-out days."""
    num_bloggers = draw(st.integers(2, 6))
    bloggers = _blogger_ids[:num_bloggers]
    corpus = BlogCorpus()
    for blogger_id in bloggers:
        corpus.add_blogger(Blogger(blogger_id))

    num_posts = draw(st.integers(1, 8))
    for index in range(num_posts):
        author = draw(st.sampled_from(bloggers))
        words = draw(st.lists(st.sampled_from(_WORDS), min_size=1,
                              max_size=30))
        corpus.add_post(
            Post(f"p{index}", author, body=" ".join(words),
                 created_day=draw(st.integers(0, 400)))
        )

    num_comments = draw(st.integers(0, 12))
    for index in range(num_comments):
        post_id = f"p{draw(st.integers(0, num_posts - 1))}"
        commenter = draw(st.sampled_from(bloggers))
        words = draw(st.lists(st.sampled_from(_WORDS), min_size=1,
                              max_size=8))
        corpus.add_comment(
            Comment(f"c{index}", post_id, commenter, text=" ".join(words),
                    created_day=draw(st.integers(0, 400)))
        )

    link_pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(bloggers), st.sampled_from(bloggers)),
            max_size=8,
        )
    )
    for source, target in link_pairs:
        if source != target:
            corpus.add_link(Link(source, target))
    return corpus.freeze()


# ----------------------------------------------------------------------
# 1. Inert decay is bit-identical to no decay
# ----------------------------------------------------------------------
class TestInertDecayIdentity:
    @settings(max_examples=25, deadline=None)
    @given(corpus=corpora(), backend=st.sampled_from(BACKENDS))
    def test_infinite_half_life_is_bit_identical(self, corpus, backend):
        base = MassParameters(solver_backend=backend)
        inert_exp = base.with_overrides(
            time_decay_kind="exp",
            time_decay_half_life_days=float("inf"),
        )
        inert_none = base.with_overrides(
            time_decay_kind="none",
            time_decay_half_life_days=30.0,
        )
        reference = InfluenceSolver(corpus, base).solve().influence
        for params in (inert_exp, inert_none):
            decayed = InfluenceSolver(corpus, params).solve().influence
            # Exact float equality, not approximate: inert decay must
            # not perturb a single ulp anywhere.
            assert decayed == reference

    @settings(max_examples=10, deadline=None)
    @given(half_life=st.floats(min_value=1.0, max_value=1e6))
    def test_inert_fingerprint_unchanged(self, half_life):
        """Inert decay fields never leak into the canonical dict."""
        base = MassParameters()
        assert base.with_overrides(
            time_decay_kind="none",
            time_decay_half_life_days=half_life,
        ).canonical_dict() == base.canonical_dict()
        assert base.with_overrides(
            time_decay_kind="exp",
            time_decay_half_life_days=float("inf"),
        ).canonical_dict() == base.canonical_dict()
        active = base.with_overrides(
            time_decay_kind="exp",
            time_decay_half_life_days=half_life,
        )
        assert active.canonical_dict() != base.canonical_dict()


# ----------------------------------------------------------------------
# 2. Active decay: deterministic, monotone, and fresh beats stale
# ----------------------------------------------------------------------
def _fresh_vs_stale_corpus() -> BlogCorpus:
    """Two identical authors except for *when* they were cited.

    ``stale`` wrote and was commented on at day 0; ``fresh`` at day
    360.  The comments are word-for-word identical, so any score gap
    between the two authors is purely the recency decay.
    """
    corpus = BlogCorpus()
    for blogger_id in ("stale", "fresh", "reader"):
        corpus.add_blogger(Blogger(blogger_id))
    body = "the stadium game and the marathon " * 2
    comment = "a great and agreeable match report"
    corpus.add_post(Post("p-stale", "stale", body=body, created_day=0))
    corpus.add_post(Post("p-fresh", "fresh", body=body, created_day=360))
    corpus.add_comment(Comment("c-stale", "p-stale", "reader",
                               text=comment, created_day=0))
    corpus.add_comment(Comment("c-fresh", "p-fresh", "reader",
                               text=comment, created_day=360))
    return corpus.freeze()


class TestActiveDecay:
    @settings(max_examples=20, deadline=None)
    @given(
        half_life=st.floats(min_value=5.0, max_value=2000.0),
        backend=st.sampled_from(BACKENDS),
    )
    def test_deterministic(self, half_life, backend):
        corpus = _fresh_vs_stale_corpus()
        params = MassParameters(
            solver_backend=backend,
            time_decay_kind="exp",
            time_decay_half_life_days=half_life,
        )
        first = InfluenceSolver(corpus, params).solve().influence
        second = InfluenceSolver(corpus, params).solve().influence
        assert first == second

    @settings(max_examples=20, deadline=None)
    @given(
        half_lives=st.lists(
            st.floats(min_value=5.0, max_value=2000.0),
            min_size=2, max_size=4, unique=True,
        ),
    )
    def test_monotone_in_half_life(self, half_lives):
        """Weaker decay (longer half-life) never lowers any score.

        Every decayed matrix/constant entry is non-negative here (the
        planted comments carry positive sentiment) and non-decreasing
        in the half-life, so the Neumann-series fixed point is
        component-wise monotone.
        """
        corpus = _fresh_vs_stale_corpus()
        solutions = []
        for half_life in sorted(half_lives):
            params = MassParameters(
                time_decay_kind="exp",
                time_decay_half_life_days=half_life,
            )
            solutions.append(
                InfluenceSolver(corpus, params).solve().influence
            )
        for shorter, longer in zip(solutions, solutions[1:]):
            for blogger_id, score in shorter.items():
                assert score <= longer[blogger_id] + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(half_life=st.floats(min_value=5.0, max_value=2000.0))
    def test_fresh_citation_outscores_stale(self, half_life):
        corpus = _fresh_vs_stale_corpus()
        undecayed = InfluenceSolver(
            corpus, MassParameters()
        ).solve().influence
        # Symmetric by construction: without decay the two authors tie.
        assert undecayed["fresh"] == pytest.approx(undecayed["stale"])
        decayed = InfluenceSolver(corpus, MassParameters(
            time_decay_kind="exp",
            time_decay_half_life_days=half_life,
        )).solve().influence
        assert decayed["fresh"] > decayed["stale"]

    def test_decay_factor_bounds(self):
        params = MassParameters(
            time_decay_kind="exp", time_decay_half_life_days=30.0
        )
        assert params.decay_factor(0) == 1.0
        assert params.decay_factor(-5) == 1.0
        assert params.decay_factor(30) == pytest.approx(0.5)
        assert 0.0 < params.decay_factor(3000) < 1.0e-20


# ----------------------------------------------------------------------
# 3. as_of round-trips epoch-identical
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def retained_run(tmp_path_factory, fig1_corpus):
    """Durable history under keep-all with the epoch at every seq."""
    root = tmp_path_factory.mktemp("timeline-props")
    anchor = fig1_corpus.blogger_ids()[0]
    classifier = NaiveBayesClassifier.from_seed_vocabulary(
        DOMAIN_VOCABULARIES
    )
    pipeline = IngestPipeline(
        root, IncrementalAnalyzer(classifier),
        IngestConfig(checkpoint_interval=1, retention="all"),
    )
    epochs = {}
    report = pipeline.open(fig1_corpus)
    pipeline.wait_recovery_checkpoint()
    epochs[0] = InfluenceSnapshot.compile(report).epoch
    for seq in range(1, 5):
        report = pipeline.apply(CorpusDelta(
            bloggers=(Blogger(f"prop-{seq}", joined_day=seq),),
            posts=(Post(f"prop-p-{seq}", f"prop-{seq}",
                        title=f"report {seq}",
                        body="the stadium game and the marathon " * 2,
                        created_day=10 * seq),),
            comments=(),
            links=(Link(f"prop-{seq}", anchor, 0.5),),
        ))
        epochs[seq] = InfluenceSnapshot.compile(report).epoch
    pipeline.close()
    return root, epochs


class TestAsOfRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(seq=st.integers(min_value=0, max_value=4))
    def test_seq_round_trip(self, retained_run, seq):
        root, epochs = retained_run
        history = TimelineHistory(root / "checkpoints")
        checkpoint = history.as_of(seq=seq)
        assert checkpoint.seq == seq
        assert InfluenceSnapshot.compile(checkpoint.report).epoch \
            == epochs[seq]

    @settings(max_examples=15, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_timestamp_round_trip(self, retained_run, fraction):
        """Any instant inside the span loads exactly what resolve says."""
        root, epochs = retained_run
        history = TimelineHistory(root / "checkpoints")
        oldest, newest = history.span()
        instant = oldest + fraction * (newest - oldest)
        entry = history.resolve(timestamp=instant)
        assert entry.wall_time <= instant
        checkpoint = history.as_of(timestamp=instant)
        assert checkpoint.seq == entry.seq
        assert InfluenceSnapshot.compile(checkpoint.report).epoch \
            == epochs[entry.seq]

    def test_before_span_never_silently_clamps(self, retained_run):
        root, _ = retained_run
        history = TimelineHistory(root / "checkpoints")
        oldest, _ = history.span()
        from repro.errors import TimelineError

        with pytest.raises(TimelineError):
            history.resolve(timestamp=math.nextafter(oldest, -math.inf)
                            - 1.0)
