"""Unit tests for corpus graph views (link graph, post-reply graph)."""

from repro.graph import (
    combined_graph,
    ego_network,
    link_graph,
    post_reply_graph,
)


class TestLinkGraph:
    def test_all_bloggers_present(self, fig1_corpus):
        graph = link_graph(fig1_corpus)
        assert len(graph) == 9

    def test_link_edges(self, fig1_corpus):
        graph = link_graph(fig1_corpus)
        assert graph.has_edge("bob", "amery")
        assert graph.has_edge("helen", "amery")
        assert not graph.has_edge("amery", "bob")

    def test_amery_in_degree(self, fig1_corpus):
        graph = link_graph(fig1_corpus)
        # bob, cary, helen link to amery.
        assert graph.in_degree("amery") == 3


class TestPostReplyGraph:
    def test_edge_weight_is_comment_count(self, fig1_corpus):
        graph = post_reply_graph(fig1_corpus)
        # Cary commented twice on Amery's posts (post1 + post2).
        assert graph.weight("cary", "amery") == 2.0
        assert graph.weight("bob", "amery") == 1.0

    def test_direction_is_commenter_to_author(self, fig1_corpus):
        graph = post_reply_graph(fig1_corpus)
        assert graph.has_edge("jane", "helen")
        assert not graph.has_edge("helen", "jane")

    def test_self_comments_excluded_by_default(self):
        from repro.data import CorpusBuilder

        builder = CorpusBuilder()
        builder.blogger("a")
        post = builder.post("a", body="x")
        builder.comment(post.post_id, "a", text="replying to myself")
        corpus = builder.build()
        assert post_reply_graph(corpus).num_edges() == 0
        included = post_reply_graph(corpus, include_self_comments=True)
        assert included.weight("a", "a") == 1.0

    def test_isolated_bloggers_kept(self, fig1_corpus):
        graph = post_reply_graph(fig1_corpus)
        assert "amery" in graph  # amery never comments but is a node


class TestCombinedGraph:
    def test_union_weights(self, fig1_corpus):
        graph = combined_graph(fig1_corpus)
        # bob→amery: 1 link + 1 comment = 2.
        assert graph.weight("bob", "amery") == 2.0

    def test_scaling(self, fig1_corpus):
        graph = combined_graph(fig1_corpus, link_weight=0.0, reply_weight=2.0)
        assert graph.weight("bob", "amery") == 2.0  # only reply, doubled
        assert graph.weight("helen", "amery") == 0.0  # link-only edge gone


class TestEgoNetwork:
    def test_radius_one_around_amery(self, fig1_corpus):
        ego = ego_network(fig1_corpus, "amery", radius=1)
        # Direct post-reply neighbours: bob, cary.
        assert set(ego.nodes()) == {"amery", "bob", "cary"}

    def test_radius_zero(self, fig1_corpus):
        ego = ego_network(fig1_corpus, "helen", radius=0)
        assert ego.nodes() == ["helen"]

    def test_edges_restricted_to_members(self, fig1_corpus):
        ego = ego_network(fig1_corpus, "amery", radius=1)
        assert ego.weight("cary", "amery") == 2.0
        assert not ego.has_edge("jane", "helen")

    def test_unknown_center_raises_corpus_error(self, fig1_corpus):
        from repro.errors import CorpusError
        import pytest as _pytest

        with _pytest.raises(CorpusError, match="unknown blogger"):
            ego_network(fig1_corpus, "ghost")
