"""Tests for time-sliced corpora and influence trajectories."""

import pytest

from repro.core import InfluenceSolver, MassParameters, trajectory
from repro.data import CorpusBuilder
from repro.errors import CorpusError, ParameterError


def two_era_corpus():
    """Early era: alice dominant.  Late era: bob dominant."""
    builder = CorpusBuilder()
    for blogger_id in ("alice", "bob", "carol", "dave"):
        builder.blogger(blogger_id)
    for day in (0, 10, 20):
        post = builder.post("alice", body="early words " * 30,
                            created_day=day)
        builder.comment(post.post_id, "carol", text="I agree, wonderful",
                        created_day=day + 1)
        builder.comment(post.post_id, "dave", text="great, I support this",
                        created_day=day + 2)
    for day in (60, 70, 80):
        post = builder.post("bob", body="late words " * 30, created_day=day)
        builder.comment(post.post_id, "carol", text="I agree, wonderful",
                        created_day=day + 1)
        builder.comment(post.post_id, "dave", text="great, I support this",
                        created_day=day + 2)
    builder.link("carol", "alice").link("dave", "bob")
    return builder.build()


class TestTimeSlice:
    def test_window_contents(self):
        corpus = two_era_corpus()
        early = corpus.time_slice(0, 30)
        assert len(early.posts) == 3
        assert all(p.author_id == "alice" for p in early.posts.values())
        assert len(early.comments) == 6
        # Bloggers and links are always kept.
        assert len(early) == 4
        assert len(early.links) == 2

    def test_comment_outside_window_dropped(self):
        builder = CorpusBuilder()
        builder.blogger("a").blogger("b")
        post = builder.post("a", body="x", created_day=5)
        builder.comment(post.post_id, "b", text="late reply", created_day=50)
        corpus = builder.build()
        sliced = corpus.time_slice(0, 10)
        assert len(sliced.posts) == 1
        assert len(sliced.comments) == 0

    def test_empty_window_rejected(self):
        with pytest.raises(CorpusError, match="empty window"):
            two_era_corpus().time_slice(10, 10)

    def test_slice_is_validatable(self):
        two_era_corpus().time_slice(0, 30).validate()


class TestTrajectory:
    def test_eras_swap_leaders(self):
        corpus = two_era_corpus()
        result = trajectory(corpus, window_days=30, step_days=30)
        assert result.num_windows == 3
        early = result.influence_at(0)
        late = result.influence_at(2)
        assert early["alice"] > early["bob"]
        assert late["bob"] > late["alice"]

    def test_series_length_matches_windows(self):
        corpus = two_era_corpus()
        result = trajectory(corpus, window_days=30, step_days=30)
        assert len(result.series("alice")) == result.num_windows

    def test_rising_blogger_is_bob(self):
        corpus = two_era_corpus()
        result = trajectory(corpus, window_days=30, step_days=30)
        rising = result.rising_bloggers(1)
        assert rising[0][0] == "bob"
        assert result.trend("bob") > 0
        assert result.trend("alice") < 0

    def test_window_bounds(self):
        corpus = two_era_corpus()
        result = trajectory(corpus, window_days=30, step_days=30,
                            start_day=0, end_day=90)
        assert result.window_bounds() == [(0, 30), (30, 60), (60, 90)]

    def test_invalid_parameters(self):
        corpus = two_era_corpus()
        with pytest.raises(ParameterError):
            trajectory(corpus, window_days=0)
        with pytest.raises(ParameterError):
            trajectory(corpus, start_day=100, end_day=50)

    def test_warm_start_matches_cold_solution(self):
        """Windows solved warm must equal independent cold solves."""
        corpus = two_era_corpus()
        result = trajectory(corpus, window_days=30, step_days=30)
        for index, (start, end) in enumerate(result.window_bounds()):
            cold = InfluenceSolver(
                corpus.time_slice(start, end), MassParameters()
            ).solve()
            warm = result.influence_at(index)
            for blogger_id, value in cold.influence.items():
                assert warm[blogger_id] == pytest.approx(value, abs=1e-8)
