"""Tests for the span-tree tracer."""

import json

import pytest

from repro.obs import NULL_SPAN, Tracer


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child-a"):
                pass
            with tracer.span("child-b"):
                with tracer.span("grandchild"):
                    pass
        (root,) = tracer.roots
        assert root.name == "root"
        assert [child.name for child in root.children] == [
            "child-a", "child-b",
        ]
        assert root.children[1].children[0].name == "grandchild"

    def test_siblings_become_separate_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_events_recorded_in_order(self):
        tracer = Tracer()
        with tracer.span("solver") as span:
            span.event(iteration=1, residual=0.5)
            span.event(iteration=2, residual=0.1)
        assert tracer.roots[0].events == [
            {"iteration": 1, "residual": 0.5},
            {"iteration": 2, "residual": 0.1},
        ]

    def test_durations_are_positive_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.end is not None and inner.end is not None
        assert outer.duration >= inner.duration >= 0.0

    def test_span_closed_even_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("body failed")
        assert tracer.roots[0].end is not None
        assert tracer.current is None

    def test_find_searches_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("target"):
                    pass
        assert tracer.find("target") is not None
        assert tracer.find("missing") is None


class TestExport:
    def test_as_dict_tree_shape(self):
        tracer = Tracer()
        with tracer.span("root") as span:
            span.event(k=1)
            with tracer.span("child"):
                pass
        tree = tracer.as_dict()["spans"][0]
        assert tree["name"] == "root"
        assert tree["start_ms"] == 0.0
        assert tree["duration_ms"] >= 0.0
        assert tree["events"] == [{"k": 1}]
        child = tree["children"][0]
        assert child["name"] == "child"
        assert child["start_ms"] >= 0.0

    def test_render_json_round_trips(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        parsed = json.loads(tracer.render_json())
        assert parsed["spans"][0]["name"] == "root"

    def test_clear_drops_closed_trees(self):
        tracer = Tracer()
        with tracer.span("old"):
            pass
        tracer.clear()
        assert tracer.roots == []


class TestDisabled:
    def test_disabled_tracer_yields_null_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything") as span:
            assert span is NULL_SPAN
            span.event(ignored=True)
        assert tracer.roots == []
        assert tracer.as_dict() == {"spans": []}
