"""Tests for the span-tree tracer."""

import json
import threading
import time

import pytest

from repro.obs import NULL_SPAN, Tracer
from repro.obs.context import current_trace, new_trace, use_trace


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child-a"):
                pass
            with tracer.span("child-b"):
                with tracer.span("grandchild"):
                    pass
        (root,) = tracer.roots
        assert root.name == "root"
        assert [child.name for child in root.children] == [
            "child-a", "child-b",
        ]
        assert root.children[1].children[0].name == "grandchild"

    def test_siblings_become_separate_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_events_recorded_in_order(self):
        tracer = Tracer()
        with tracer.span("solver") as span:
            span.event(iteration=1, residual=0.5)
            span.event(iteration=2, residual=0.1)
        assert tracer.roots[0].events == [
            {"iteration": 1, "residual": 0.5},
            {"iteration": 2, "residual": 0.1},
        ]

    def test_durations_are_positive_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.end is not None and inner.end is not None
        assert outer.duration >= inner.duration >= 0.0

    def test_span_closed_even_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("body failed")
        assert tracer.roots[0].end is not None
        assert tracer.current is None

    def test_find_searches_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("target"):
                    pass
        assert tracer.find("target") is not None
        assert tracer.find("missing") is None


class TestExport:
    def test_as_dict_tree_shape(self):
        tracer = Tracer()
        with tracer.span("root") as span:
            span.event(k=1)
            with tracer.span("child"):
                pass
        tree = tracer.as_dict()["spans"][0]
        assert tree["name"] == "root"
        assert tree["start_ms"] == 0.0
        assert tree["duration_ms"] >= 0.0
        assert tree["events"] == [{"k": 1}]
        child = tree["children"][0]
        assert child["name"] == "child"
        assert child["start_ms"] >= 0.0

    def test_render_json_round_trips(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        parsed = json.loads(tracer.render_json())
        assert parsed["spans"][0]["name"] == "root"

    def test_clear_drops_closed_trees(self):
        tracer = Tracer()
        with tracer.span("old"):
            pass
        tracer.clear()
        assert tracer.roots == []


class TestClocks:
    def test_wall_clock_step_cannot_skew_durations(self, monkeypatch):
        # Durations come from perf_counter; rewind time.time() a day
        # mid-span and the duration must stay sane while wall_start
        # keeps the (pre-step) wall timestamp for rendering.
        tracer = Tracer()
        real_time = time.time
        with tracer.span("steady") as span:
            monkeypatch.setattr(time, "time",
                                lambda: real_time() - 86400.0)
        assert 0.0 <= span.duration < 60.0
        assert span.wall_start >= real_time() - 5.0  # captured pre-step

    def test_wall_clock_jump_forward_harmless_too(self, monkeypatch):
        tracer = Tracer()
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + 86400.0)
        with tracer.span("jumped") as span:
            pass
        assert 0.0 <= span.duration < 60.0

    def test_span_dict_carries_wall_start(self):
        tracer = Tracer()
        before = time.time()
        with tracer.span("root"):
            pass
        node = tracer.as_dict()["spans"][0]
        assert before <= node["wall_start"] <= time.time()


class TestTraceStamping:
    def test_spans_carry_the_active_trace(self):
        tracer = Tracer()
        ctx = new_trace()
        with use_trace(ctx):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.trace_id == inner.trace_id == ctx.trace_id
        assert outer.parent_id == ctx.span_id
        assert inner.parent_id == outer.span_id

    def test_span_narrows_the_context_to_itself(self):
        tracer = Tracer()
        with use_trace(new_trace()):
            with tracer.span("outer") as outer:
                assert current_trace().span_id == outer.span_id
            assert current_trace().span_id != outer.span_id

    def test_adopt_grafts_remote_spans(self):
        tracer = Tracer()
        with tracer.span("local") as local:
            adopted = tracer.adopt(
                "remote", duration=0.25,
                trace_id="a" * 32, span_id="b" * 16,
                worker_id=3,
            )
        assert adopted in local.children
        assert adopted.trace_id == "a" * 32
        assert adopted.span_id == "b" * 16
        assert adopted.parent_id == local.span_id
        assert adopted.duration == pytest.approx(0.25, abs=0.01)
        assert adopted.events == [{"worker_id": 3}]

    def test_adopt_without_open_span_becomes_root(self):
        tracer = Tracer()
        tracer.adopt("orphan", duration=0.1)
        assert tracer.roots[0].name == "orphan"

    def test_on_close_fires_for_every_span(self):
        closed = []
        tracer = Tracer(on_close=closed.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.adopt("remote")
        assert [span.name for span in closed] == [
            "inner", "outer", "remote",
        ]

    def test_threads_do_not_co_nest(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(label):
            with tracer.span(label):
                barrier.wait(timeout=5)

        threads = [
            threading.Thread(target=work, args=(f"t{n}",)) for n in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(root.name for root in tracer.roots) == ["t0", "t1"]
        assert all(not root.children for root in tracer.roots)


class TestDisabled:
    def test_disabled_tracer_yields_null_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything") as span:
            assert span is NULL_SPAN
            span.event(ignored=True)
        assert tracer.roots == []
        assert tracer.as_dict() == {"spans": []}
