"""Trace-context minting, propagation, and serialization."""

import logging
import threading

from repro.obs import TraceContext, TraceContextFilter, current_trace, use_trace
from repro.obs.context import new_span_id, new_trace


class TestMinting:
    def test_new_mints_128_bit_hex_ids(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 32
        assert set(ctx.trace_id) <= set("0123456789abcdef")
        assert len(ctx.span_id) == 16

    def test_new_ids_are_unique(self):
        ids = {TraceContext.new().trace_id for _ in range(64)}
        assert len(ids) == 64

    def test_new_span_id_shape(self):
        span_id = new_span_id()
        assert len(span_id) == 16
        assert set(span_id) <= set("0123456789abcdef")


class TestFromHeader:
    def test_valid_header_is_adopted(self):
        ctx = TraceContext.from_header("deadbeefcafe1234")
        assert ctx.trace_id == "deadbeefcafe1234"

    def test_header_is_case_folded(self):
        ctx = TraceContext.from_header("DEADBEEFCAFE1234")
        assert ctx.trace_id == "deadbeefcafe1234"

    def test_malformed_headers_mint_fresh_never_fail(self):
        for bad in (None, "", "short", "g" * 16, "a" * 65, "spaces here"):
            ctx = TraceContext.from_header(bad)
            assert len(ctx.trace_id) == 32

    def test_adopted_header_still_gets_fresh_span_id(self):
        first = TraceContext.from_header("deadbeefcafe1234")
        second = TraceContext.from_header("deadbeefcafe1234")
        assert first.span_id != second.span_id


class TestImmutability:
    def test_child_changes_only_the_span_id(self):
        ctx = TraceContext.new(baggage={"route": "/top"})
        child = ctx.child("abcd1234abcd1234")
        assert child.trace_id == ctx.trace_id
        assert child.span_id == "abcd1234abcd1234"
        assert child.baggage == ctx.baggage
        assert ctx.span_id != "abcd1234abcd1234"  # original untouched

    def test_with_baggage_merges(self):
        ctx = TraceContext.new(baggage={"a": "1"})
        more = ctx.with_baggage(b="2", a="overridden")
        assert more.baggage_dict() == {"a": "overridden", "b": "2"}
        assert ctx.baggage_dict() == {"a": "1"}


class TestSerialization:
    def test_dict_round_trip(self):
        ctx = TraceContext.new(baggage={"route": "/query"})
        rebuilt = TraceContext.from_dict(ctx.to_dict())
        assert rebuilt == ctx

    def test_empty_baggage_omitted_from_payload(self):
        assert "baggage" not in TraceContext.new().to_dict()

    def test_from_dict_tolerates_missing_span_id(self):
        rebuilt = TraceContext.from_dict({"trace_id": "a" * 32})
        assert rebuilt.trace_id == "a" * 32
        assert len(rebuilt.span_id) == 16


class TestActivation:
    def test_use_trace_scopes_the_context(self):
        assert current_trace() is None
        ctx = new_trace()
        with use_trace(ctx):
            assert current_trace() is ctx
        assert current_trace() is None

    def test_use_trace_none_fences_off_ambient_context(self):
        with use_trace(new_trace()):
            with use_trace(None):
                assert current_trace() is None
            assert current_trace() is not None

    def test_restored_even_when_body_raises(self):
        try:
            with use_trace(new_trace()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_trace() is None

    def test_new_threads_start_without_context(self):
        seen = {}
        with use_trace(new_trace()):
            thread = threading.Thread(
                target=lambda: seen.update(ctx=current_trace())
            )
            thread.start()
            thread.join()
        assert seen["ctx"] is None

    def test_explicit_handoff_across_threads(self):
        ctx = new_trace()
        seen = {}

        def work():
            with use_trace(ctx):
                seen["trace_id"] = current_trace().trace_id

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert seen["trace_id"] == ctx.trace_id


class TestLogFilter:
    def _record(self):
        return logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "hello", (), None
        )

    def test_stamps_active_trace_id(self):
        record = self._record()
        ctx = new_trace()
        with use_trace(ctx):
            assert TraceContextFilter().filter(record) is True
        assert record.trace_id == ctx.trace_id

    def test_no_context_stamps_none(self):
        record = self._record()
        TraceContextFilter().filter(record)
        assert record.trace_id is None

    def test_explicit_extra_wins(self):
        record = self._record()
        record.trace_id = "explicit"
        with use_trace(new_trace()):
            TraceContextFilter().filter(record)
        assert record.trace_id == "explicit"
