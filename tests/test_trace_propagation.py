"""End-to-end trace propagation: one trace id from socket to shard worker.

The acceptance path for the trace-context tentpole: an HTTP ``/query``
that arrives with an ``X-Repro-Trace-Id``, finds the snapshot stale,
pays for the refresh on its own thread, and drives the warm re-solve
through the shard-parallel backend must leave ONE trace — handler span,
refresh span, incremental apply, solver, and at least one adopted
shard-worker span from a forked process — all stamped with the id the
client sent (and echoed back in the response header).
"""

import json
import urllib.request

import pytest

from repro.core import CorpusDelta, MassParameters
from repro.data import Blogger, Comment, Link, Post
from repro.obs import Instrumentation
from repro.serve import ServiceConfig, SnapshotStore, create_server

CLIENT_TRACE_ID = "feedface" * 4  # 32 lowercase hex chars


def make_delta(store, seq=0):
    existing = store.snapshot.blogger_ids[0]
    new_id = f"traced-{seq:02d}"
    post = Post(f"traced-post-{seq:02d}", new_id,
                body="a fresh post about the marathon stadium game " * 4,
                created_day=300)
    comment = Comment(f"traced-comment-{seq:02d}", post.post_id, existing,
                      text="I agree, a wonderful read", created_day=301)
    return CorpusDelta(
        bloggers=[Blogger(new_id)],
        posts=[post],
        comments=[comment],
        links=[Link(existing, new_id)],
    )


@pytest.fixture()
def traced_service(fig1_corpus, fig1_seed_words):
    """A server whose re-solves run on the shard-parallel backend.

    ``max_staleness=0.0`` + no background refresher means the *next
    read* pays for any pending delta synchronously — deterministic, and
    exactly the path that must carry the request's trace.
    """
    instr = Instrumentation.enabled()
    store = SnapshotStore(
        fig1_corpus,
        params=MassParameters(
            solver_backend="parallel", num_workers=2, shard_count=4,
        ),
        domain_seed_words=fig1_seed_words,
        max_staleness=0.0,
        instrumentation=instr,
    )
    server = create_server(store, ServiceConfig(port=0), instr)
    server.serve_in_thread()
    yield server, store, instr
    server.shutdown()
    server.server_close()
    store.close()


def request_traced(server, path, trace_id=CLIENT_TRACE_ID):
    request = urllib.request.Request(
        server.url + path, headers={"X-Repro-Trace-Id": trace_id}
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return (
            resp.status,
            resp.headers.get("X-Repro-Trace-Id"),
            json.loads(resp.read().decode("utf-8")),
        )


def spans_by_trace(tracer, trace_id):
    """Flatten every recorded span tree, keeping spans of one trace."""
    found = []

    def walk(span):
        if span.trace_id == trace_id:
            found.append(span)
        for child in span.children:
            walk(child)

    for root in tracer.roots:
        walk(root)
    return found


class TestEndToEnd:
    def test_one_trace_spans_http_refresh_solve_and_workers(
        self, traced_service
    ):
        server, store, instr = traced_service
        store.submit(make_delta(store, seq=0))
        assert store.pending_deltas == 1

        status, echoed, body = request_traced(
            server, "/query?weights=Computer:1.0&k=3"
        )
        assert status == 200
        assert echoed == CLIENT_TRACE_ID
        assert store.pending_deltas == 0  # the request paid for the refresh
        assert body["results"]

        spans = spans_by_trace(instr.tracer, CLIENT_TRACE_ID)
        names = {span.name for span in spans}
        # Handler → synchronous refresh → incremental solve → parallel
        # shards → forked worker records, all under the client's id.
        for expected in ("http-request", "serve-refresh",
                         "incremental-apply", "solver", "shard-worker"):
            assert expected in names, (expected, sorted(names))
        workers = [s for s in spans if s.name == "shard-worker"]
        assert len(workers) >= 1
        for worker in workers:
            assert worker.trace_id == CLIENT_TRACE_ID
            (event,) = worker.events
            assert event["sweeps"] >= 1

    def test_span_tree_parents_chain_back_to_the_handler(
        self, traced_service
    ):
        server, store, instr = traced_service
        store.submit(make_delta(store, seq=1))
        request_traced(server, "/top?k=2")

        spans = spans_by_trace(instr.tracer, CLIENT_TRACE_ID)
        by_id = {span.span_id: span for span in spans}
        handler = next(s for s in spans if s.name == "http-request")
        solver = next(s for s in spans if s.name == "solver")
        # Walk parent_id links from the solver up to the handler span.
        hops, current = 0, solver
        while current is not handler:
            assert current.parent_id in by_id, (
                f"{current.name} parent {current.parent_id} missing"
            )
            current = by_id[current.parent_id]
            hops += 1
            assert hops < 10
        assert hops >= 1

    def test_fresh_snapshot_request_stays_a_single_span(
        self, traced_service
    ):
        server, store, instr = traced_service
        status, echoed, _ = request_traced(
            server, "/top?k=2", trace_id="0123456789abcdef"
        )
        assert status == 200
        assert echoed == "0123456789abcdef"
        spans = spans_by_trace(instr.tracer, "0123456789abcdef")
        assert {span.name for span in spans} == {"http-request"}

    def test_malformed_inbound_id_gets_a_fresh_one(self, traced_service):
        server, _, _ = traced_service
        _, echoed, _ = request_traced(
            server, "/top?k=2", trace_id="NOT-HEX!"
        )
        assert echoed != "NOT-HEX!"
        assert len(echoed) == 32

    def test_distinct_requests_get_distinct_traces(self, traced_service):
        server, _, _ = traced_service
        with urllib.request.urlopen(
            server.url + "/top?k=2", timeout=30
        ) as first:
            id_one = first.headers.get("X-Repro-Trace-Id")
        with urllib.request.urlopen(
            server.url + "/top?k=2", timeout=30
        ) as second:
            id_two = second.headers.get("X-Repro-Trace-Id")
        assert id_one and id_two and id_one != id_two

    def test_flight_recorder_correlates_the_refresh(self, traced_service):
        server, store, instr = traced_service
        store.submit(make_delta(store, seq=2))
        request_traced(server, "/top?k=2")
        swaps = [
            event for event in instr.recorder.tail()
            if event.get("name") == "snapshot-swap"
        ]
        assert swaps
        assert swaps[-1]["trace_id"] == CLIENT_TRACE_ID
