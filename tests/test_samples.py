"""Tests for the built-in Fig. 1 sample corpus."""

from repro.data import FIGURE1_BLOGGERS, figure1_corpus, figure1_domains


class TestFigure1:
    def test_nine_bloggers(self, fig1_corpus):
        assert set(fig1_corpus.blogger_ids()) == set(FIGURE1_BLOGGERS)

    def test_amery_has_two_posts(self, fig1_corpus):
        assert {p.post_id for p in fig1_corpus.posts_by("amery")} == {
            "post1",
            "post2",
        }

    def test_post1_commenters_match_figure(self, fig1_corpus):
        commenters = {
            c.commenter_id for c in fig1_corpus.comments_on("post1")
        }
        assert commenters == {"bob", "cary"}

    def test_post2_commenter_is_cary(self, fig1_corpus):
        assert [c.commenter_id for c in fig1_corpus.comments_on("post2")] == [
            "cary"
        ]

    def test_cary_total_comments(self, fig1_corpus):
        # Cary commented on post1 and post2: TC(cary) = 2 for Eq. 3.
        assert fig1_corpus.total_comments_by("cary") == 2

    def test_corpus_is_frozen_and_valid(self):
        corpus = figure1_corpus()
        assert corpus.frozen

    def test_two_domains(self):
        domains = figure1_domains()
        assert set(domains) == {"Computer", "Economics"}
        assert all(domains.values())

    def test_post_bodies_reflect_domains(self, fig1_corpus):
        assert "programming" in fig1_corpus.post("post1").body
        assert "economic" in fig1_corpus.post("post2").body
