"""The HTTP JSON API: endpoints, errors, metrics, load shedding."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import MassParameters, top_k
from repro.obs import Instrumentation
from repro.serve import ServiceConfig, SnapshotStore, create_server


@pytest.fixture(scope="module")
def service(small_blogosphere):
    """A running server over the 120-blogger corpus (module-scoped)."""
    corpus, _ = small_blogosphere
    instr = Instrumentation.enabled()
    store = SnapshotStore(
        corpus, params=MassParameters(), instrumentation=instr
    )
    server = create_server(
        store, ServiceConfig(port=0, max_inflight=8), instr
    )
    server.serve_in_thread()
    yield server
    server.shutdown()
    server.server_close()
    store.close()


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def get_error(server, path):
    try:
        urllib.request.urlopen(server.url + path, timeout=10)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers, json.loads(exc.read().decode("utf-8"))
    raise AssertionError(f"{path} unexpectedly succeeded")


class TestTop:
    def test_general_top_matches_batch(self, service):
        status, body = get(service, "/top?k=5")
        assert status == 200
        expected = service.store.report.top_influencers(5)
        assert [(r["blogger_id"], r["score"]) for r in body["results"]] \
            == expected
        assert body["epoch"] == service.store.snapshot.epoch
        assert body["total"] == service.store.snapshot.num_bloggers

    def test_domain_top(self, service):
        status, body = get(service, "/top?k=3&domain=Sports")
        assert status == 200
        expected = service.store.report.top_influencers(3, "Sports")
        assert [(r["blogger_id"], r["score"]) for r in body["results"]] \
            == expected

    def test_pagination(self, service):
        _, page = get(service, "/top?k=3&offset=2")
        _, full = get(service, "/top?k=5")
        assert page["results"] == full["results"][2:]

    def test_default_k(self, service):
        _, body = get(service, "/top")
        assert len(body["results"]) == service.config.default_k

    @pytest.mark.parametrize("path,fragment", [
        ("/top?k=0", "k must be >= 1"),
        ("/top?k=banana", "must be an integer"),
        ("/top?k=3&domain=Astrology", "unknown domain"),
        ("/top?k=3&offset=-1", "offset"),
        ("/top?k=101", "maximum"),
        ("/top?k=3&k=4", "more than once"),
    ])
    def test_top_errors(self, service, path, fragment):
        code, _, body = get_error(service, path)
        assert code == 400
        assert fragment in body["error"]


class TestQuery:
    def test_get_weights_matches_batch(self, service):
        status, body = get(
            service, "/query?weights=Sports:0.7,Art:0.3&k=4"
        )
        assert status == 200
        report = service.store.report
        canonical = {"Art": 0.3, "Sports": 0.7}
        expected = top_k(
            report.domain_influence.weighted_scores(canonical), 4
        )
        assert [(r["blogger_id"], r["score"]) for r in body["results"]] \
            == expected

    def test_post_json_body(self, service):
        payload = json.dumps(
            {"weights": {"Sports": 0.7, "Art": 0.3}, "k": 4}
        ).encode()
        request = urllib.request.Request(
            service.url + "/query", data=payload,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as resp:
            body = json.loads(resp.read().decode())
        _, via_get = get(service, "/query?weights=Sports:0.7,Art:0.3&k=4")
        assert body["results"] == via_get["results"]

    def test_repeat_query_served_from_cache(self, service):
        get(service, "/query?weights=Travel:1.0&k=2")
        _, body = get(service, "/query?weights=Travel:1.0&k=2")
        assert body["cached"] is True

    @pytest.mark.parametrize("path,fragment", [
        ("/query?k=3", "missing \"weights\""),
        ("/query?weights=&k=3", "missing \"weights\""),
        ("/query?weights=,&k=3", "names no domains"),
        ("/query?weights=Sports&k=3", "malformed weight term"),
        ("/query?weights=Sports:x&k=3", "must be a number"),
        ("/query?weights=Astrology:1.0&k=3", "unknown domains"),
        ("/query?weights=Sports:0.5,Sports:0.5&k=3", "more than once"),
        ("/query?weights=Sports:-1&k=3", "must be > 0"),
    ])
    def test_query_errors(self, service, path, fragment):
        code, _, body = get_error(service, path)
        assert code == 400
        assert fragment in body["error"]

    def test_bad_post_body(self, service):
        request = urllib.request.Request(
            service.url + "/query", data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestBlogger:
    def test_profile(self, service):
        blogger_id = service.store.snapshot.blogger_ids[0]
        status, body = get(service, f"/blogger/{blogger_id}")
        assert status == 200
        assert body["profile"]["blogger_id"] == blogger_id
        assert body["epoch"] == service.store.snapshot.epoch

    def test_unknown_blogger_is_404(self, service):
        code, _, body = get_error(service, "/blogger/nobody")
        assert code == 404
        assert "unknown blogger" in body["error"]

    def test_unknown_route_is_404(self, service):
        code, _, _ = get_error(service, "/nope")
        assert code == 404


class TestOperational:
    def test_healthz(self, service):
        status, body = get(service, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["epoch"] == service.store.snapshot.epoch
        assert body["corpus"]["bloggers"] == 120
        assert body["pending_deltas"] == 0

    def test_metrics_expose_qps_and_latency(self, service):
        get(service, "/top?k=2")
        with urllib.request.urlopen(
            service.url + "/metrics", timeout=10
        ) as resp:
            text = resp.read().decode()
        assert resp.status == 200
        assert "repro_http_requests_total" in text
        assert "repro_http_request_seconds_bucket" in text
        assert "repro_query_cache_hit_rate" in text
        for line in text.splitlines():
            if line.startswith("repro_http_requests_total "):
                assert float(line.split()[1]) > 0
                break
        else:  # pragma: no cover - assertion helper
            raise AssertionError("qps counter missing")


class TestLoadShedding:
    def test_zero_inflight_sheds_queries_with_retry_after(
        self, small_blogosphere
    ):
        corpus, _ = small_blogosphere
        instr = Instrumentation.enabled()
        store = SnapshotStore(corpus, instrumentation=instr)
        server = create_server(
            store,
            ServiceConfig(port=0, max_inflight=0, retry_after_seconds=7),
            instr,
        )
        server.serve_in_thread()
        try:
            code, headers, body = get_error(server, "/top?k=2")
            assert code == 503
            assert headers["Retry-After"] == "7"
            assert "overloaded" in body["error"]
            assert instr.metrics.get("repro_http_shed_total").value == 1
            # Operational endpoints stay reachable under shedding.
            status, _ = get(server, "/healthz")
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            store.close()


class TestHealthzAges:
    def test_ages_present_and_non_negative(self, service):
        _, body = get(service, "/healthz")
        assert body["uptime_seconds"] >= 0.0
        assert body["snapshot_age_seconds"] >= 0.0

    def test_ages_survive_wall_clock_rewind(self, service, monkeypatch):
        # The ages are computed from time.monotonic(); an NTP step (or
        # any wall-clock rewind) must not push them negative or reset
        # the uptime.  Simulate the rewind by yanking time.time back a
        # day — the monotonic-based ages must keep increasing.
        import time

        _, before = get(service, "/healthz")
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() - 86400.0)
        _, after = get(service, "/healthz")
        assert after["uptime_seconds"] >= before["uptime_seconds"] >= 0.0
        assert after["snapshot_age_seconds"] >= 0.0
