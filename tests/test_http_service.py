"""The HTTP JSON API: endpoints, errors, metrics, load shedding."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import MassParameters, top_k
from repro.obs import Instrumentation
from repro.serve import ServiceConfig, SnapshotStore, create_server


@pytest.fixture(scope="module")
def service(small_blogosphere):
    """A running server over the 120-blogger corpus (module-scoped)."""
    corpus, _ = small_blogosphere
    instr = Instrumentation.enabled()
    store = SnapshotStore(
        corpus, params=MassParameters(), instrumentation=instr
    )
    server = create_server(
        store, ServiceConfig(port=0, max_inflight=8), instr
    )
    server.serve_in_thread()
    yield server
    server.shutdown()
    server.server_close()
    store.close()


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def get_error(server, path):
    try:
        urllib.request.urlopen(server.url + path, timeout=10)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers, json.loads(exc.read().decode("utf-8"))
    raise AssertionError(f"{path} unexpectedly succeeded")


class TestTop:
    def test_general_top_matches_batch(self, service):
        status, body = get(service, "/top?k=5")
        assert status == 200
        expected = service.store.report.top_influencers(5)
        assert [(r["blogger_id"], r["score"]) for r in body["results"]] \
            == expected
        assert body["epoch"] == service.store.snapshot.epoch
        assert body["total"] == service.store.snapshot.num_bloggers

    def test_domain_top(self, service):
        status, body = get(service, "/top?k=3&domain=Sports")
        assert status == 200
        expected = service.store.report.top_influencers(3, "Sports")
        assert [(r["blogger_id"], r["score"]) for r in body["results"]] \
            == expected

    def test_pagination(self, service):
        _, page = get(service, "/top?k=3&offset=2")
        _, full = get(service, "/top?k=5")
        assert page["results"] == full["results"][2:]

    def test_default_k(self, service):
        _, body = get(service, "/top")
        assert len(body["results"]) == service.config.default_k

    @pytest.mark.parametrize("path,fragment", [
        ("/top?k=0", "k must be >= 1"),
        ("/top?k=banana", "must be an integer"),
        ("/top?k=3&domain=Astrology", "unknown domain"),
        ("/top?k=3&offset=-1", "offset"),
        ("/top?k=101", "maximum"),
        ("/top?k=3&k=4", "more than once"),
    ])
    def test_top_errors(self, service, path, fragment):
        code, _, body = get_error(service, path)
        assert code == 400
        assert fragment in body["error"]


class TestQuery:
    def test_get_weights_matches_batch(self, service):
        status, body = get(
            service, "/query?weights=Sports:0.7,Art:0.3&k=4"
        )
        assert status == 200
        report = service.store.report
        canonical = {"Art": 0.3, "Sports": 0.7}
        expected = top_k(
            report.domain_influence.weighted_scores(canonical), 4
        )
        assert [(r["blogger_id"], r["score"]) for r in body["results"]] \
            == expected

    def test_post_json_body(self, service):
        payload = json.dumps(
            {"weights": {"Sports": 0.7, "Art": 0.3}, "k": 4}
        ).encode()
        request = urllib.request.Request(
            service.url + "/query", data=payload,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as resp:
            body = json.loads(resp.read().decode())
        _, via_get = get(service, "/query?weights=Sports:0.7,Art:0.3&k=4")
        assert body["results"] == via_get["results"]

    def test_repeat_query_served_from_cache(self, service):
        get(service, "/query?weights=Travel:1.0&k=2")
        _, body = get(service, "/query?weights=Travel:1.0&k=2")
        assert body["cached"] is True

    @pytest.mark.parametrize("path,fragment", [
        ("/query?k=3", "missing \"weights\""),
        ("/query?weights=&k=3", "missing \"weights\""),
        ("/query?weights=,&k=3", "names no domains"),
        ("/query?weights=Sports&k=3", "malformed weight term"),
        ("/query?weights=Sports:x&k=3", "must be a number"),
        ("/query?weights=Astrology:1.0&k=3", "unknown domains"),
        ("/query?weights=Sports:0.5,Sports:0.5&k=3", "more than once"),
        ("/query?weights=Sports:-1&k=3", "must be > 0"),
    ])
    def test_query_errors(self, service, path, fragment):
        code, _, body = get_error(service, path)
        assert code == 400
        assert fragment in body["error"]

    def test_bad_post_body(self, service):
        request = urllib.request.Request(
            service.url + "/query", data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestBlogger:
    def test_profile(self, service):
        blogger_id = service.store.snapshot.blogger_ids[0]
        status, body = get(service, f"/blogger/{blogger_id}")
        assert status == 200
        assert body["profile"]["blogger_id"] == blogger_id
        assert body["epoch"] == service.store.snapshot.epoch

    def test_unknown_blogger_is_404(self, service):
        code, _, body = get_error(service, "/blogger/nobody")
        assert code == 404
        assert "unknown blogger" in body["error"]

    def test_unknown_route_is_404(self, service):
        code, _, _ = get_error(service, "/nope")
        assert code == 404


class TestOperational:
    def test_healthz(self, service):
        status, body = get(service, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["epoch"] == service.store.snapshot.epoch
        assert body["corpus"]["bloggers"] == 120
        assert body["pending_deltas"] == 0

    def test_healthz_reports_slo_objectives(self, service):
        get(service, "/top?k=2")  # at least one latency sample
        _, body = get(service, "/healthz")
        slo = body["slo"]
        assert set(slo) == {
            "query_latency", "error_rate",
            "snapshot_staleness", "wal_replay_lag",
        }
        latency = slo["query_latency"]
        assert latency["kind"] == "latency"
        assert latency["samples_short"] >= 1
        assert latency["violating"] is False
        staleness = slo["snapshot_staleness"]
        assert staleness["kind"] == "bound"
        assert staleness["current"] == 0.0
        # Non-durable store: the WAL probe is unwired, never degrading.
        assert body["slo"]["wal_replay_lag"]["current"] is None

    def test_slo_burn_gauges_in_metrics(self, service):
        get(service, "/healthz")  # evaluation refreshes the gauges
        with urllib.request.urlopen(
            service.url + "/metrics", timeout=10
        ) as resp:
            text = resp.read().decode()
        assert "repro_slo_query_latency_burn_short" in text
        assert "repro_slo_degraded 0" in text

    def test_metrics_expose_qps_and_latency(self, service):
        get(service, "/top?k=2")
        with urllib.request.urlopen(
            service.url + "/metrics", timeout=10
        ) as resp:
            text = resp.read().decode()
        assert resp.status == 200
        assert "repro_http_requests_total" in text
        assert "repro_http_request_seconds_bucket" in text
        assert "repro_query_cache_hit_rate" in text
        for line in text.splitlines():
            if line.startswith("repro_http_requests_total "):
                assert float(line.split()[1]) > 0
                break
        else:  # pragma: no cover - assertion helper
            raise AssertionError("qps counter missing")


class TestLoadShedding:
    def test_zero_inflight_sheds_queries_with_retry_after(
        self, small_blogosphere
    ):
        corpus, _ = small_blogosphere
        instr = Instrumentation.enabled()
        store = SnapshotStore(corpus, instrumentation=instr)
        server = create_server(
            store,
            ServiceConfig(port=0, max_inflight=0, retry_after_seconds=7),
            instr,
        )
        server.serve_in_thread()
        try:
            code, headers, body = get_error(server, "/top?k=2")
            assert code == 503
            assert headers["Retry-After"] == "7"
            assert "overloaded" in body["error"]
            assert instr.metrics.get("repro_http_shed_total").value == 1
            # Operational endpoints stay reachable under shedding.
            status, _ = get(server, "/healthz")
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            store.close()


class TestHealthzAges:
    def test_ages_present_and_non_negative(self, service):
        _, body = get(service, "/healthz")
        assert body["uptime_seconds"] >= 0.0
        assert body["snapshot_age_seconds"] >= 0.0

    def test_ages_survive_wall_clock_rewind(self, service, monkeypatch):
        # The ages are computed from time.monotonic(); an NTP step (or
        # any wall-clock rewind) must not push them negative or reset
        # the uptime.  Simulate the rewind by yanking time.time back a
        # day — the monotonic-based ages must keep increasing.
        import time

        _, before = get(service, "/healthz")
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() - 86400.0)
        _, after = get(service, "/healthz")
        assert after["uptime_seconds"] >= before["uptime_seconds"] >= 0.0
        assert after["snapshot_age_seconds"] >= 0.0


class TestTraceHeader:
    def test_every_response_carries_a_trace_id(self, service):
        with urllib.request.urlopen(
            service.url + "/top?k=2", timeout=10
        ) as resp:
            trace_id = resp.headers.get("X-Repro-Trace-Id")
        assert trace_id
        assert len(trace_id) == 32

    def test_error_responses_echo_the_inbound_id(self, service):
        request = urllib.request.Request(
            service.url + "/top?k=0",
            headers={"X-Repro-Trace-Id": "abcd" * 8},
        )
        try:
            urllib.request.urlopen(request, timeout=10)
            raise AssertionError("expected a 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
            assert exc.headers.get("X-Repro-Trace-Id") == "abcd" * 8


class TestDebugEndpoints:
    def test_debug_events_returns_the_recorder_tail(self, service):
        get(service, "/top?k=2")
        status, body = get(service, "/debug/events")
        assert status == 200
        assert body["capacity"] >= 1
        assert body["events"]
        kinds = {event["kind"] for event in body["events"]}
        assert "span" in kinds  # closed handler spans ring automatically

    def test_debug_events_limit(self, service):
        get(service, "/top?k=2")
        _, body = get(service, "/debug/events?limit=1")
        assert len(body["events"]) == 1

    def test_debug_events_dumps_view(self, service):
        _, body = get(service, "/debug/events?dumps=1")
        assert "dumps" in body
        assert isinstance(body["dumps"], list)

    def test_debug_traces_exports_span_trees(self, service):
        get(service, "/top?k=2")
        _, body = get(service, "/debug/traces")
        names = {span["name"] for span in body["spans"]}
        assert "http-request" in names

    def test_debug_vars_snapshot(self, service):
        _, body = get(service, "/debug/vars")
        assert body["config"]["max_inflight"] == 8
        assert body["epoch"] == service.store.snapshot.epoch
        assert body["inflight"] == 0  # debug routes never take a slot
        assert body["staleness_seconds"] == 0.0
        assert body["durable"] is False
        assert body["recorder"]["capacity"] >= 1
        assert [o["name"] for o in body["slo_objectives"]] == [
            "query_latency", "error_rate",
            "snapshot_staleness", "wal_replay_lag",
        ]

    def test_unknown_debug_route_is_404(self, service):
        code, _, _ = get_error(service, "/debug/nope")
        assert code == 404


class TestShedDump:
    def test_load_shed_dumps_with_the_shed_requests_trace(
        self, small_blogosphere
    ):
        corpus, _ = small_blogosphere
        instr = Instrumentation.enabled()
        store = SnapshotStore(corpus, instrumentation=instr)
        server = create_server(
            store, ServiceConfig(port=0, max_inflight=0), instr
        )
        server.serve_in_thread()
        try:
            request = urllib.request.Request(
                server.url + "/top?k=2",
                headers={"X-Repro-Trace-Id": "feed" * 8},
            )
            try:
                urllib.request.urlopen(request, timeout=10)
                raise AssertionError("expected a 503")
            except urllib.error.HTTPError as exc:
                assert exc.code == 503
            dumps = instr.recorder.dumps()
            assert dumps, "load shed must leave a flight-recorder dump"
            dump = dumps[-1]
            assert dump["reason"] == "load-shed"
            assert dump["trace_id"] == "feed" * 8
            assert dump["route"] == "/top"
            # The shed endpoints stay debuggable: the dump is served.
            status, body = get(server, "/debug/events?dumps=1")
            assert status == 200
            assert body["dumps"][-1]["reason"] == "load-shed"
        finally:
            server.shutdown()
            server.server_close()
            store.close()


class TestSloDegradation:
    def test_staleness_violation_degrades_and_recovers(
        self, small_blogosphere
    ):
        """Drive the snapshot_staleness SLO through a full incident.

        A pending delta older than max_staleness must flip /healthz to
        degraded with a positive burn rate and raise the degraded
        gauge; folding the delta in recovers immediately (bound
        objectives have no window hysteresis).
        """
        import time as _time

        from repro.core import CorpusDelta
        from repro.data import Blogger

        corpus, _ = small_blogosphere
        instr = Instrumentation.enabled()
        # No background refresher and a tiny bound: a submitted delta
        # becomes an SLO violation after 10 ms.  /healthz must NOT
        # trigger the read-path refresh itself (only query routes do),
        # so the violation is observable.
        store = SnapshotStore(
            corpus, max_staleness=0.01, instrumentation=instr
        )
        server = create_server(store, ServiceConfig(port=0), instr)
        server.serve_in_thread()
        try:
            store.submit(CorpusDelta(bloggers=[Blogger("late-comer")]))
            _time.sleep(0.05)
            status, body = get(server, "/healthz")
            assert status == 200  # alive, but degraded
            assert body["status"] == "degraded"
            entry = body["slo"]["snapshot_staleness"]
            assert entry["violating"] is True
            assert entry["current"] > 0.01
            assert entry["burn_short"] > 1.0
            assert instr.metrics.get("repro_slo_degraded").value == 1.0
            burn = instr.metrics.get(
                "repro_slo_snapshot_staleness_burn_short"
            )
            assert burn.value > 1.0

            store.refresh_now()
            _, body = get(server, "/healthz")
            assert body["status"] == "ok"
            assert body["slo"]["snapshot_staleness"]["current"] == 0.0
            assert instr.metrics.get("repro_slo_degraded").value == 0.0
        finally:
            server.shutdown()
            server.server_close()
            store.close()


def post(server, path, payload, headers=None):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def post_error(server, path, payload, headers=None):
    try:
        post(server, path, payload, headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers, json.loads(exc.read().decode("utf-8"))
    raise AssertionError(f"POST {path} unexpectedly succeeded")


class TestBatch:
    """POST /query/batch against the single-process server."""

    def test_batch_items_match_individual_endpoints(self, service):
        status, body = post(service, "/query/batch", {"queries": [
            {"kind": "top", "k": 5},
            {"kind": "top", "k": 3, "domain": "Sports"},
            {"kind": "query", "weights": {"Sports": 0.7, "Art": 0.3},
             "k": 4},
        ]})
        assert status == 200
        assert body["count"] == 3
        _, top_body = get(service, "/top?k=5")
        assert body["results"][0] == top_body
        _, sports_body = get(service, "/top?k=3&domain=Sports")
        assert body["results"][1] == sports_body
        _, query_body = get(
            service, "/query?weights=Sports:0.7,Art:0.3&k=4"
        )
        # The batch pins one snapshot; "cached" may differ from the
        # GET (which primed the cache), so compare the payload proper.
        for key in ("epoch", "results", "total", "weights"):
            if key in query_body:
                assert body["results"][2][key] == query_body[key]
        assert body["epoch"] == service.store.snapshot.epoch

    def test_default_kind_and_default_k(self, service):
        status, body = post(service, "/query/batch", {"queries": [
            {},  # no kind, no k: a default-k general top
            {"weights": {"Travel": 1.0}},  # weights present: a query
        ]})
        assert status == 200
        assert len(body["results"][0]["results"]) \
            == service.config.default_k
        assert len(body["results"][1]["results"]) \
            == service.config.default_k

    def test_item_errors_are_inline_not_fatal(self, service):
        status, body = post(service, "/query/batch", {"queries": [
            {"kind": "top", "k": 0},
            {"kind": "top", "k": 2},
            {"kind": "nonsense"},
            {"kind": "query"},
        ]})
        assert status == 200  # the batch succeeds, items carry errors
        assert "k must be >= 1" in body["results"][0]["error"]
        assert "error" not in body["results"][1]
        assert "kind must be 'top' or 'query'" in body["results"][2]["error"]
        assert "weights" in body["results"][3]["error"]

    @pytest.mark.parametrize("payload,fragment", [
        ({}, "queries"),
        ({"queries": []}, "queries"),
        ({"queries": "nope"}, "queries"),
        ({"queries": ["not-a-mapping"]}, None),
    ])
    def test_request_shape_validation(self, service, payload, fragment):
        if fragment is None:
            status, body = post(service, "/query/batch", payload)
            assert status == 200
            assert "error" in body["results"][0]
        else:
            code, _, body = post_error(service, "/query/batch", payload)
            assert code == 400
            assert fragment in body["error"]

    def test_batch_larger_than_max_batch_rejected(self, service):
        code, _, body = post_error(service, "/query/batch", {
            "queries": [{"kind": "top"}] * (service.config.max_batch + 1)
        })
        assert code == 400
        assert "maximum" in body["error"]

    def test_get_method_rejected(self, service):
        code, _, body = get_error(service, "/query/batch")
        assert code == 400
        assert "POST" in body["error"]

    def test_batch_queries_counter_advances(self, service):
        metric = service.instrumentation.metrics.get(
            "repro_http_batch_queries_total"
        )
        before = metric.value
        post(service, "/query/batch",
             {"queries": [{"kind": "top", "k": 2}] * 3})
        assert metric.value == before + 3


@pytest.fixture()
def limited_service(small_blogosphere):
    """A server with a tiny deterministic budget: 0.5 qps, burst 2."""
    corpus, _ = small_blogosphere
    instr = Instrumentation.enabled()
    store = SnapshotStore(
        corpus, params=MassParameters(), instrumentation=instr
    )
    server = create_server(
        store,
        ServiceConfig(port=0, max_inflight=8,
                      rate_limit_qps=0.5, rate_limit_burst=2.0),
        instr,
    )
    server.serve_in_thread()
    yield server
    server.shutdown()
    server.server_close()
    store.close()


class TestRateLimiting:
    def test_burst_then_429_with_retry_after(self, limited_service):
        # Burst of 2 is granted...
        for _ in range(2):
            status, _ = get(limited_service, "/top?k=2")
            assert status == 200
        # ...the third is refused with an honest Retry-After.
        code, headers, body = get_error(limited_service, "/top?k=2")
        assert code == 429
        assert "rate limit" in body["error"]
        assert body["tenant"] == "default"
        retry_after = int(headers["Retry-After"])
        assert retry_after >= 1  # 1 token at 0.5/s needs ~2s
        assert body["retry_after_seconds"] == retry_after

    def test_tenants_are_isolated(self, limited_service):
        def get_as(tenant, path):
            request = urllib.request.Request(
                limited_service.url + path,
                headers={"X-Repro-Tenant": tenant},
            )
            with urllib.request.urlopen(request, timeout=10) as resp:
                return resp.status

        assert get_as("starver", "/top?k=2") == 200
        assert get_as("starver", "/top?k=2") == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_as("starver", "/top?k=2")
        assert excinfo.value.code == 429
        # A different tenant still has its full burst.
        assert get_as("bystander", "/top?k=2") == 200

    def test_operational_endpoints_are_exempt(self, limited_service):
        for _ in range(3):  # exhaust the default tenant's burst
            try:
                get(limited_service, "/top?k=2")
            except urllib.error.HTTPError as exc:
                assert exc.code == 429
        for _ in range(5):
            status, _ = get(limited_service, "/healthz")
            assert status == 200
        with urllib.request.urlopen(
            limited_service.url + "/metrics", timeout=10
        ) as resp:
            assert resp.status == 200

    def test_rate_limited_counter_and_batch_cost(self, limited_service):
        metric = limited_service.instrumentation.metrics.get(
            "repro_http_rate_limited_total"
        )
        before = metric.value
        # A batch of 3 can never fit burst 2: rejected outright (400),
        # telling the caller to shrink, not to retry.  (Uses its own
        # tenant: the request itself still costs the dispatch token.)
        code, _, body = post_error(
            limited_service, "/query/batch",
            {"queries": [{"kind": "top", "k": 2}] * 3},
            headers={"X-Repro-Tenant": "too-large"},
        )
        assert code == 400
        assert "burst" in body["error"]
        # A batch of 2 costs exactly 2 tokens (1 at dispatch + 1 for
        # the extra item): a fresh tenant's burst of 2 fits once.
        status, _ = post(
            limited_service, "/query/batch",
            {"queries": [{"kind": "top", "k": 2}] * 2},
            headers={"X-Repro-Tenant": "exact-fit"},
        )
        assert status == 200
        code, _, _ = post_error(
            limited_service, "/query/batch",
            {"queries": [{"kind": "top", "k": 2}] * 2},
            headers={"X-Repro-Tenant": "exact-fit"},
        )
        assert code == 429
        assert metric.value > before

    def test_debug_vars_reports_limiter(self, limited_service):
        status, body = get(limited_service, "/debug/vars")
        assert status == 200
        assert body["rate_limit"]["qps"] == 0.5
        assert body["rate_limit"]["burst"] == 2.0
