"""Tests for HTML rendering/scraping of space pages."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crawler import (
    BlogCrawler,
    CrawlConfig,
    HtmlBlogService,
    SimulatedBlogService,
    parse_space_html,
    render_space_html,
)
from repro.data import Blogger, Comment, Link, Post, dumps_corpus
from repro.crawler.service import SpacePage
from repro.errors import CrawlError


@pytest.fixture(scope="module")
def amery_page(fig1_corpus):
    return SimulatedBlogService(fig1_corpus).fetch_space("amery")


class TestRender:
    def test_contains_all_sections(self, amery_page):
        markup = render_space_html(amery_page)
        assert '<div class="profile" data-id="amery"' in markup
        assert 'class="post" data-id="post1"' in markup
        assert 'class="comment" data-id=' in markup
        assert "<!DOCTYPE html>" in markup

    def test_escapes_markup_in_text(self):
        page = SpacePage(
            Blogger("x", name="<b>bold</b>", profile_text="a & b"),
            (Post("p", "x", title="1 < 2", body="x > y"),),
            (),
            (),
        )
        markup = render_space_html(page)
        assert "<b>bold</b>" not in markup
        assert "&lt;b&gt;" in markup
        assert "a &amp; b" in markup


class TestRoundTrip:
    def test_page_roundtrip(self, amery_page):
        restored = parse_space_html(render_space_html(amery_page))
        assert restored.blogger == amery_page.blogger
        assert restored.posts == amery_page.posts
        assert restored.comments == amery_page.comments
        assert restored.links == amery_page.links

    def test_all_fig1_pages_roundtrip(self, fig1_corpus):
        service = SimulatedBlogService(fig1_corpus)
        for blogger_id in fig1_corpus.blogger_ids():
            page = service.fetch_space(blogger_id)
            assert parse_space_html(render_space_html(page)) == page

    @given(
        name=st.text(max_size=40),
        about=st.text(max_size=80),
        body=st.text(max_size=120),
        comment_text=st.text(max_size=60),
    )
    def test_arbitrary_text_roundtrips(self, name, about, body,
                                       comment_text):
        page = SpacePage(
            Blogger("b1", name=name or "b1", profile_text=about),
            (Post("p1", "b1", title="t", body=body, created_day=3),),
            (Comment("c1", "p1", "b2", text=comment_text, created_day=4),),
            (Link("b1", "b2", 2.0),),
        )
        restored = parse_space_html(render_space_html(page))
        assert restored.posts[0].body == page.posts[0].body
        assert restored.comments[0].text == page.comments[0].text
        assert restored.blogger.profile_text == page.blogger.profile_text


class TestParserErrors:
    def test_no_profile(self):
        with pytest.raises(CrawlError, match="no profile"):
            parse_space_html("<html><body>nothing</body></html>")

    def test_comment_outside_post(self):
        markup = (
            '<div class="profile" data-id="x" data-joined="0"></div>'
            '<li class="comment" data-id="c" data-by="y" data-day="0">t</li>'
        )
        with pytest.raises(CrawlError, match="outside any post"):
            parse_space_html(markup)

    def test_malformed_post_day(self):
        markup = (
            '<div class="profile" data-id="x" data-joined="0"></div>'
            '<div class="post" data-id="p" data-day="someday"></div>'
        )
        with pytest.raises(CrawlError, match="malformed post"):
            parse_space_html(markup)

    def test_bad_blogroll_href(self):
        markup = (
            '<div class="profile" data-id="x" data-joined="0"></div>'
            '<a class="bloglink" href="http://evil" data-weight="1">y</a>'
        )
        with pytest.raises(CrawlError, match="unexpected blogroll href"):
            parse_space_html(markup)


class TestHtmlBlogService:
    def test_crawl_through_html_identical(self, fig1_corpus):
        """Crawling via the HTML layer must produce the same corpus as
        crawling structured pages directly."""
        direct = BlogCrawler(
            SimulatedBlogService(fig1_corpus), CrawlConfig(radius=3)
        ).crawl(["helen"])
        via_html = BlogCrawler(
            HtmlBlogService(SimulatedBlogService(fig1_corpus)),
            CrawlConfig(radius=3),
        ).crawl(["helen"])
        assert dumps_corpus(via_html.corpus) == dumps_corpus(direct.corpus)

    def test_fetch_html_raw(self, fig1_corpus):
        service = HtmlBlogService(SimulatedBlogService(fig1_corpus))
        markup = service.fetch_html("bob")
        assert markup.startswith("<!DOCTYPE html>")
        assert 'data-id="bob"' in markup

    def test_errors_propagate(self, fig1_corpus):
        from repro.crawler import SpaceNotFoundError

        service = HtmlBlogService(SimulatedBlogService(fig1_corpus))
        with pytest.raises(SpaceNotFoundError):
            service.fetch_space("ghost")
