"""Unit tests for the simulated Table I user study."""

import pytest

from repro.errors import ParameterError
from repro.userstudy import (
    TABLE1_DOMAINS,
    RaterPanelConfig,
    SimulatedRaterPanel,
    UserStudy,
)


@pytest.fixture(scope="module")
def truth(medium_blogosphere):
    return medium_blogosphere[1]


class TestPanelConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_raters": 0},
            {"noise_std": -1.0},
            {"sharpness": 0.0},
            {"halo": 1.0},
            {"halo": -0.1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            RaterPanelConfig(**kwargs)


class TestPanel:
    def test_scores_in_range(self, truth):
        panel = SimulatedRaterPanel(truth, seed=1)
        for rater in range(panel.num_raters):
            for blogger_id in list(truth.bloggers)[:5]:
                score = panel.score(rater, blogger_id, "Sports")
                assert 1 <= score <= 5

    def test_deterministic(self, truth):
        panel1 = SimulatedRaterPanel(truth, seed=9)
        panel2 = SimulatedRaterPanel(truth, seed=9)
        blogger_id = list(truth.bloggers)[0]
        assert panel1.score(0, blogger_id, "Art") == panel2.score(
            0, blogger_id, "Art"
        )

    def test_seed_changes_scores_somewhere(self, truth):
        panel1 = SimulatedRaterPanel(truth, seed=1)
        panel2 = SimulatedRaterPanel(truth, seed=2)
        bloggers = list(truth.bloggers)[:20]
        differs = any(
            panel1.score(r, b, "Travel") != panel2.score(r, b, "Travel")
            for r in range(panel1.num_raters)
            for b in bloggers
        )
        assert differs

    def test_invalid_rater_index(self, truth):
        panel = SimulatedRaterPanel(truth, seed=0)
        with pytest.raises(ParameterError):
            panel.score(99, list(truth.bloggers)[0], "Art")

    def test_planted_influencer_outsores_weak_blogger(self, truth):
        panel = SimulatedRaterPanel(truth, seed=4)
        planted = truth.planted_influencers("Sports")[0]
        weakest = min(
            truth.bloggers,
            key=lambda b: truth.bloggers[b].domain_strength("Sports")
            + truth.bloggers[b].latent_influence,
        )
        planted_avg = panel.average_score([planted], "Sports")
        weak_avg = panel.average_score([weakest], "Sports")
        assert planted_avg > weak_avg + 1.0

    def test_average_empty_rejected(self, truth):
        panel = SimulatedRaterPanel(truth, seed=0)
        with pytest.raises(ParameterError):
            panel.average_score([], "Sports")


class TestStudy:
    def test_run_produces_all_cells(self, truth):
        study = UserStudy(truth, seed=2)
        planted = {
            domain: truth.planted_influencers(domain)
            for domain in TABLE1_DOMAINS
        }
        result = study.run({"Oracle": planted})
        for domain in TABLE1_DOMAINS:
            assert 1.0 <= result.score("Oracle", domain) <= 5.0
        assert result.winner("Travel") == "Oracle"

    def test_oracle_beats_random(self, truth):
        study = UserStudy(truth, seed=2)
        everyone = sorted(truth.bloggers)
        systems = {
            "Oracle": {
                domain: truth.top_true_influencers(domain, 3)
                for domain in TABLE1_DOMAINS
            },
            "FirstThree": {
                domain: everyone[:3] for domain in TABLE1_DOMAINS
            },
        }
        result = study.run(systems)
        for domain in TABLE1_DOMAINS:
            assert result.score("Oracle", domain) > result.score(
                "FirstThree", domain
            )

    def test_missing_domain_list_rejected(self, truth):
        study = UserStudy(truth, seed=0)
        with pytest.raises(ParameterError, match="no list"):
            study.run({"Broken": {"Travel": ["a", "b", "c"]}})

    def test_short_list_rejected(self, truth):
        study = UserStudy(truth, seed=0)
        lists = {domain: ["only-one"] for domain in TABLE1_DOMAINS}
        with pytest.raises(ParameterError, match="only 1"):
            study.run({"Short": lists})

    def test_long_lists_truncated(self, truth):
        study = UserStudy(truth, k=2, seed=0)
        five = sorted(truth.bloggers)[:5]
        result = study.run(
            {"Long": {domain: five for domain in TABLE1_DOMAINS}}
        )
        assert all(
            len(result.lists["Long"][domain]) == 2
            for domain in TABLE1_DOMAINS
        )

    def test_unknown_evaluation_domain_rejected(self, truth):
        with pytest.raises(ParameterError, match="not in ground truth"):
            UserStudy(truth, domains=["Astrology"])

    def test_bad_k_rejected(self, truth):
        with pytest.raises(ParameterError, match="k must be"):
            UserStudy(truth, k=0)

    def test_as_table_renders(self, truth):
        study = UserStudy(truth, seed=2)
        result = study.run(
            {
                "Sys": {
                    domain: truth.top_true_influencers(domain, 3)
                    for domain in TABLE1_DOMAINS
                }
            }
        )
        table = result.as_table()
        assert "Average Applicable Scores" in table
        assert "Sys" in table
        assert "Travel" in table
