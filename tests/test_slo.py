"""SLO objectives, burn rates, and the degraded verdict."""

import json

import pytest

from repro.errors import ParameterError
from repro.obs import (
    MetricsRegistry,
    SloEngine,
    SloObjective,
    default_serve_objectives,
    load_slo_config,
)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def latency_objective(**overrides):
    defaults = dict(
        name="query_latency", kind="latency", target=0.1,
        goal=0.9, min_samples=1,
    )
    defaults.update(overrides)
    return SloObjective(**defaults)


class TestObjectiveValidation:
    def test_rejects_bad_name(self):
        with pytest.raises(ParameterError, match="name"):
            SloObjective(name="bad name!", kind="latency", target=1.0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ParameterError, match="kind"):
            SloObjective(name="x", kind="percentile", target=1.0)

    def test_rejects_goal_out_of_range(self):
        with pytest.raises(ParameterError, match="goal"):
            SloObjective(name="x", kind="latency", target=1.0, goal=1.0)

    def test_bound_kind_ignores_goal(self):
        SloObjective(name="x", kind="bound", target=1.0, goal=0.99)

    def test_rejects_negative_target(self):
        with pytest.raises(ParameterError, match="target"):
            SloObjective(name="x", kind="latency", target=-1.0)

    def test_rejects_inverted_windows(self):
        with pytest.raises(ParameterError, match="window"):
            SloObjective(name="x", kind="latency", target=1.0,
                         short_window=600.0, long_window=60.0)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ParameterError, match="unknown keys"):
            SloObjective.from_dict(
                {"name": "x", "kind": "latency", "target": 1.0, "p99": True}
            )

    def test_as_dict_round_trips(self):
        objective = latency_objective(description="d")
        assert SloObjective.from_dict(objective.as_dict()) == objective


class TestLatencyObjective:
    def test_fast_samples_keep_status_ok(self):
        engine = SloEngine([latency_objective()], clock=FakeClock())
        for _ in range(20):
            engine.observe("query_latency", value=0.01)
        status = engine.status()
        assert status["status"] == "ok"
        entry = status["objectives"]["query_latency"]
        assert entry["samples_short"] == 20
        assert entry["burn_short"] == 0.0

    def test_slow_samples_burn_and_degrade(self):
        engine = SloEngine([latency_objective()], clock=FakeClock())
        for _ in range(10):
            engine.observe("query_latency", value=0.5)  # all bad
        status = engine.status()
        entry = status["objectives"]["query_latency"]
        # budget is 1 - 0.9 = 0.1; all-bad → burn 10x
        assert entry["burn_short"] == pytest.approx(10.0)
        assert entry["violating"] is True
        assert status["status"] == "degraded"

    def test_min_samples_suppresses_single_outlier(self):
        engine = SloEngine(
            [latency_objective(min_samples=5)], clock=FakeClock()
        )
        engine.observe("query_latency", value=9.9)
        assert engine.status()["status"] == "ok"

    def test_samples_age_out_of_the_windows(self):
        clock = FakeClock()
        engine = SloEngine([latency_objective()], clock=clock)
        engine.observe("query_latency", value=0.5)
        assert engine.status()["status"] == "degraded"
        clock.advance(61.0)  # past the short window, inside the long
        status = engine.status()
        entry = status["objectives"]["query_latency"]
        assert status["status"] == "ok"
        assert entry["samples_short"] == 0
        assert entry["samples_long"] == 1
        clock.advance(600.0)  # past the long window: pruned entirely
        assert engine.status()["objectives"]["query_latency"][
            "samples_long"] == 0

    def test_latency_observation_requires_value(self):
        engine = SloEngine([latency_objective()])
        with pytest.raises(ParameterError, match="needs a value"):
            engine.observe("query_latency")


class TestRatioObjective:
    def test_error_rate_burn(self):
        objective = SloObjective(
            name="error_rate", kind="ratio", target=0.0, goal=0.9
        )
        engine = SloEngine([objective], clock=FakeClock())
        for bad in (False, False, False, True):
            engine.observe("error_rate", bad=bad)
        entry = engine.status()["objectives"]["error_rate"]
        # bad fraction 0.25 against a 0.1 budget → burn 2.5
        assert entry["burn_short"] == pytest.approx(2.5)
        assert entry["violating"] is True

    def test_ratio_observation_requires_bad_flag(self):
        engine = SloEngine([SloObjective(
            name="error_rate", kind="ratio", target=0.0, goal=0.9
        )])
        with pytest.raises(ParameterError, match="bad=True/False"):
            engine.observe("error_rate")


class TestBoundObjective:
    def bound(self, target=1.0):
        return SloObjective(name="staleness", kind="bound", target=target)

    def test_probe_within_bound_is_ok(self):
        engine = SloEngine([self.bound(target=2.0)])
        engine.probe("staleness", lambda: 1.0)
        entry = engine.status()["objectives"]["staleness"]
        assert entry["current"] == 1.0
        assert entry["burn_short"] == pytest.approx(0.5)
        assert entry["violating"] is False

    def test_probe_over_bound_degrades_and_recovers_immediately(self):
        value = {"v": 5.0}
        engine = SloEngine([self.bound(target=2.0)])
        engine.probe("staleness", lambda: value["v"])
        assert engine.status()["status"] == "degraded"
        value["v"] = 0.0  # bound objectives have no window: instant recovery
        assert engine.status()["status"] == "ok"

    def test_zero_target_means_any_positive_value_violates(self):
        engine = SloEngine([self.bound(target=0.0)])
        engine.probe("staleness", lambda: 0.0)
        assert engine.status()["status"] == "ok"
        engine.probe("staleness", lambda: 1.0)  # rewire
        entry = engine.status()["objectives"]["staleness"]
        assert entry["violating"] is True

    def test_unwired_probe_reports_none_not_degraded(self):
        engine = SloEngine([self.bound()])
        entry = engine.status()["objectives"]["staleness"]
        assert entry["current"] is None
        assert entry["violating"] is False

    def test_probe_failure_degrades_but_does_not_raise(self):
        engine = SloEngine([self.bound()])
        engine.probe("staleness", lambda: 1 / 0)
        entry = engine.status()["objectives"]["staleness"]
        assert entry["probe_error"] is True
        assert entry["violating"] is True

    def test_probe_on_windowed_objective_rejected(self):
        engine = SloEngine([latency_objective()])
        with pytest.raises(ParameterError, match="only bound"):
            engine.probe("query_latency", lambda: 0.0)


class TestEngine:
    def test_duplicate_objective_rejected(self):
        with pytest.raises(ParameterError, match="twice"):
            SloEngine([latency_objective(), latency_objective()])

    def test_unknown_observation_ignored(self):
        SloEngine([]).observe("not_registered", value=1.0)

    def test_disabled_engine_records_nothing(self):
        engine = SloEngine([latency_objective()], enabled=False)
        engine.observe("query_latency", value=9.0)
        assert engine.status()["objectives"]["query_latency"][
            "samples_short"] == 0

    def test_status_refreshes_burn_gauges(self):
        metrics = MetricsRegistry()
        engine = SloEngine(
            [latency_objective()], metrics=metrics, clock=FakeClock()
        )
        engine.observe("query_latency", value=0.5)
        engine.status()
        assert metrics.get(
            "repro_slo_query_latency_burn_short").value == pytest.approx(10.0)
        assert metrics.get("repro_slo_degraded").value == 1.0

    def test_as_dict_carries_config_and_status(self):
        engine = SloEngine([latency_objective()])
        view = engine.as_dict()
        assert view["objectives"][0]["name"] == "query_latency"
        assert view["status"]["status"] == "ok"


class TestDefaultsAndConfig:
    def test_default_serve_objectives_names(self):
        names = [o.name for o in default_serve_objectives()]
        assert names == [
            "query_latency", "error_rate",
            "snapshot_staleness", "wal_replay_lag",
        ]

    def test_max_staleness_wires_the_bound(self):
        objectives = {o.name: o for o in default_serve_objectives(0.25)}
        assert objectives["snapshot_staleness"].target == 0.25

    def test_load_slo_config_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"objectives": [
            {"name": "query_latency", "kind": "latency",
             "target": 0.5, "goal": 0.95},
            {"name": "staleness", "kind": "bound", "target": 10.0},
        ]}))
        loaded = load_slo_config(path)
        assert [o.name for o in loaded] == ["query_latency", "staleness"]
        assert loaded[0].goal == 0.95

    @pytest.mark.parametrize("payload,fragment", [
        ("not json", "invalid JSON"),
        ("[]", "objectives"),
        ('{"objectives": {}}', "must be a list"),
        ('{"objectives": [{"name": "a", "kind": "latency", "target": 1.0},'
         ' {"name": "a", "kind": "latency", "target": 1.0}]}', "duplicate"),
    ])
    def test_load_slo_config_errors(self, tmp_path, payload, fragment):
        path = tmp_path / "slo.json"
        path.write_text(payload)
        with pytest.raises(ParameterError, match=fragment):
            load_slo_config(path)
