"""Unit tests for the entity value objects."""

import pytest

from repro.data import Blogger, Comment, Link, Post
from repro.errors import CorpusError


class TestBlogger:
    def test_name_defaults_to_id(self):
        assert Blogger("b1").name == "b1"

    def test_explicit_name_kept(self):
        assert Blogger("b1", name="Alice").name == "Alice"

    def test_empty_id_rejected(self):
        with pytest.raises(CorpusError):
            Blogger("")

    def test_non_string_id_rejected(self):
        with pytest.raises(CorpusError):
            Blogger(42)  # type: ignore[arg-type]

    def test_negative_joined_day_rejected(self):
        with pytest.raises(CorpusError):
            Blogger("b1", joined_day=-1)

    def test_bool_day_rejected(self):
        with pytest.raises(CorpusError):
            Blogger("b1", joined_day=True)

    def test_frozen(self):
        blogger = Blogger("b1")
        with pytest.raises(AttributeError):
            blogger.blogger_id = "b2"  # type: ignore[misc]

    def test_equality_by_value(self):
        assert Blogger("b1", name="A") == Blogger("b1", name="A")


class TestPost:
    def test_text_joins_title_and_body(self):
        post = Post("p1", "b1", title="Title", body="Body")
        assert post.text == "Title\nBody"

    def test_text_title_only(self):
        assert Post("p1", "b1", title="Just title").text == "Just title"

    def test_text_body_only(self):
        assert Post("p1", "b1", body="Just body").text == "Just body"

    def test_text_empty(self):
        assert Post("p1", "b1").text == ""

    def test_requires_ids(self):
        with pytest.raises(CorpusError):
            Post("", "b1")
        with pytest.raises(CorpusError):
            Post("p1", "")

    def test_negative_day_rejected(self):
        with pytest.raises(CorpusError):
            Post("p1", "b1", created_day=-3)


class TestComment:
    def test_valid(self):
        comment = Comment("c1", "p1", "b2", text="hi", created_day=4)
        assert comment.commenter_id == "b2"

    @pytest.mark.parametrize("field", ["comment_id", "post_id", "commenter_id"])
    def test_requires_ids(self, field):
        kwargs = {"comment_id": "c1", "post_id": "p1", "commenter_id": "b1"}
        kwargs[field] = ""
        with pytest.raises(CorpusError):
            Comment(**kwargs)


class TestLink:
    def test_valid(self):
        link = Link("a", "b")
        assert link.weight == 1.0

    def test_self_link_rejected(self):
        with pytest.raises(CorpusError):
            Link("a", "a")

    def test_zero_weight_rejected(self):
        with pytest.raises(CorpusError):
            Link("a", "b", 0.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(CorpusError):
            Link("a", "b", -1.0)
