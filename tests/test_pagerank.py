"""Unit and property tests for PageRank."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConvergenceError, ParameterError
from repro.graph import Digraph, pagerank

node = st.sampled_from(list("abcdef"))


def chain() -> Digraph:
    graph = Digraph()
    graph.add_edges([("a", "b"), ("b", "c")])
    return graph


class TestBasics:
    def test_empty_graph(self):
        result = pagerank(Digraph())
        assert result.scores == {}
        assert result.converged

    def test_single_node(self):
        graph = Digraph()
        graph.add_node("only")
        result = pagerank(graph)
        assert math.isclose(result.scores["only"], 1.0)

    def test_scores_sum_to_one(self):
        result = pagerank(chain())
        assert math.isclose(sum(result.scores.values()), 1.0)

    def test_sink_accumulates_rank(self):
        scores = pagerank(chain()).scores
        assert scores["c"] > scores["b"] > scores["a"]

    def test_symmetric_cycle_uniform(self):
        graph = Digraph()
        graph.add_edges([("a", "b"), ("b", "c"), ("c", "a")])
        scores = pagerank(graph).scores
        for value in scores.values():
            assert math.isclose(value, 1 / 3, abs_tol=1e-9)

    def test_dangling_mass_redistributed(self):
        # b is dangling; total mass must stay 1.
        graph = Digraph()
        graph.add_edge("a", "b")
        result = pagerank(graph)
        assert math.isclose(sum(result.scores.values()), 1.0)
        assert result.converged

    def test_weights_steer_rank(self):
        graph = Digraph()
        graph.add_edge("s", "heavy", 10.0)
        graph.add_edge("s", "light", 1.0)
        scores = pagerank(graph).scores
        assert scores["heavy"] > scores["light"]

    def test_damping_zero_is_uniform(self):
        scores = pagerank(chain(), damping=0.0).scores
        for value in scores.values():
            assert math.isclose(value, 1 / 3)


class TestValidationAndConvergence:
    @pytest.mark.parametrize("damping", [-0.1, 1.0, 1.5])
    def test_bad_damping(self, damping):
        with pytest.raises(ParameterError):
            pagerank(chain(), damping=damping)

    def test_bad_tolerance(self):
        with pytest.raises(ParameterError):
            pagerank(chain(), tolerance=0.0)

    def test_bad_max_iterations(self):
        with pytest.raises(ParameterError):
            pagerank(chain(), max_iterations=0)

    def test_nonconverged_reported(self):
        result = pagerank(chain(), max_iterations=1, tolerance=1e-15)
        assert not result.converged
        assert result.iterations == 1

    def test_strict_raises_on_nonconvergence(self):
        with pytest.raises(ConvergenceError):
            pagerank(chain(), max_iterations=1, tolerance=1e-15, strict=True)


class TestProperties:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(node, node), max_size=25))
    def test_distribution_invariants(self, edges):
        graph = Digraph()
        for source, target in edges:
            graph.add_edge(source, target)
        if len(graph) == 0:
            return
        result = pagerank(graph)
        assert result.converged
        assert math.isclose(sum(result.scores.values()), 1.0, abs_tol=1e-6)
        assert all(value > 0 for value in result.scores.values())


class TestPersonalizedParity:
    """pagerank and personalized_pagerank share one power iteration —
    including the dangling-node redistribution, which used to be
    duplicated (and could drift) in the opinion-leader baseline."""

    def dangling_graph(self) -> Digraph:
        graph = Digraph()
        graph.add_edges([("a", "b"), ("c", "b")])
        graph.add_node("d")  # isolated and dangling
        return graph

    def test_uniform_teleport_is_exactly_pagerank(self):
        from repro.graph import personalized_pagerank

        graph = self.dangling_graph()
        plain = pagerank(graph)
        uniform = 1.0 / len(graph.nodes())
        personalized = personalized_pagerank(
            graph, {node: uniform for node in graph.nodes()}
        )
        # Operation-for-operation the same loop: exact equality, not
        # approx — any float drift means the paths have diverged.
        assert personalized.scores == plain.scores
        assert personalized.iterations == plain.iterations
        assert personalized.residual == plain.residual

    def test_dangling_mass_follows_teleport(self):
        from repro.graph import personalized_pagerank

        graph = Digraph()
        graph.add_edge("a", "b")  # b is dangling
        result = personalized_pagerank(graph, {"a": 1.0, "b": 0.0})
        assert result.converged
        assert math.isclose(sum(result.scores.values()), 1.0)
        assert result.scores["a"] > result.scores["b"]

    def test_teleport_validation(self):
        from repro.graph import personalized_pagerank

        graph = chain()
        nodes = graph.nodes()
        with pytest.raises(ParameterError, match="misses"):
            personalized_pagerank(graph, {"a": 1.0})
        with pytest.raises(ParameterError, match=">= 0"):
            personalized_pagerank(
                graph, {node: -1.0 for node in nodes}
            )
        with pytest.raises(ParameterError, match="positive sum"):
            personalized_pagerank(
                graph, {node: 0.0 for node in nodes}
            )

    def test_strict_raises_on_nonconvergence(self):
        from repro.graph import personalized_pagerank

        uniform = 1.0 / 3
        with pytest.raises(ConvergenceError, match="personalized"):
            personalized_pagerank(
                chain(), {node: uniform for node in chain().nodes()},
                max_iterations=1, tolerance=1e-15, strict=True,
            )
