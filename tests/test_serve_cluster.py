"""The pre-fork serving tier: equivalence, replication, supervision.

What the cluster must guarantee over the single-process server:

1. **Byte-identical answers** — every endpoint, single or batch, must
   return exactly what a single-process :class:`QueryEngine` over the
   same store returns.
2. **Replication** — a snapshot refresh in the master shows up in
   worker answers (new epoch, new results) without a restart.
3. **Truthful /metrics** — counters scraped from any one worker report
   cluster-wide totals (the pre-fork regression this PR fixes).
4. **Supervision** — SIGKILLing a worker respawns it, leaves in-flight
   connections on other workers untouched, and surfaces a degraded
   window on ``/healthz``.
"""

import http.client
import json
import os
import signal
import time

import pytest

from repro.core import CorpusDelta, MassParameters
from repro.data import Blogger, Comment, Link, Post
from repro.obs import Instrumentation
from repro.serve import (
    ClusterConfig,
    QueryEngine,
    ServiceConfig,
    ServingCluster,
    SnapshotStore,
    cluster_supported,
)

pytestmark = pytest.mark.skipif(
    not cluster_supported(),
    reason="pre-fork tier needs fork and SO_REUSEPORT",
)

WEIGHTS = {"Sports": 0.6, "Art": 0.4}


@pytest.fixture(scope="module")
def cluster_rig(small_blogosphere):
    """A 2-worker cluster plus its master-side store (module-scoped)."""
    corpus, _ = small_blogosphere
    instr = Instrumentation.enabled()
    store = SnapshotStore(
        corpus, params=MassParameters(), instrumentation=instr
    )
    cluster = ServingCluster(
        store,
        ServiceConfig(port=0, max_inflight=16),
        ClusterConfig(workers=2),
        instrumentation=instr,
    )
    with store, cluster:
        cluster.wait_ready()
        yield store, cluster


def _get(cluster, path, headers=None):
    host, port = cluster.url.removeprefix("http://").split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=10)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def _post(cluster, path, payload):
    host, port = cluster.url.removeprefix("http://").split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=10)
    try:
        conn.request(
            "POST", path, body=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def _make_delta(seq):
    anchor = "blogger-0000"
    new_id = f"cluster-{seq:02d}"
    post = Post(f"clusterpost-{seq:02d}", new_id,
                body="fresh thoughts on the stadium marathon game " * 3,
                created_day=220 + seq)
    comment = Comment(f"clustercomment-{seq:02d}", post.post_id, anchor,
                      text="what a wonderful insightful read",
                      created_day=221 + seq)
    return CorpusDelta(
        bloggers=[Blogger(new_id)],
        posts=[post],
        comments=[comment],
        links=[Link(anchor, new_id)],
    )


class TestEquivalence:
    """Cluster answers == single-process engine answers, byte for byte."""

    def test_top_matches_single_process_engine(self, cluster_rig):
        store, cluster = cluster_rig
        engine = QueryEngine(store, cache_size=0)
        status, body = _get(cluster, "/top?k=7")
        assert status == 200
        reference = engine.top(7).as_dict()
        assert body == reference

    def test_domain_top_and_pagination_match(self, cluster_rig):
        store, cluster = cluster_rig
        engine = QueryEngine(store, cache_size=0)
        status, body = _get(cluster, "/top?k=4&domain=Sports&offset=1")
        assert status == 200
        assert body == engine.top(4, domain="Sports", offset=1).as_dict()

    def test_weighted_query_matches(self, cluster_rig):
        store, cluster = cluster_rig
        engine = QueryEngine(store, cache_size=0)
        status, body = _post(
            cluster, "/query", {"weights": WEIGHTS, "k": 5}
        )
        assert status == 200
        assert body == engine.query(WEIGHTS, 5).as_dict()

    def test_blogger_profile_matches(self, cluster_rig):
        store, cluster = cluster_rig
        engine = QueryEngine(store, cache_size=0)
        blogger_id = store.snapshot.blogger_ids[0]
        status, body = _get(cluster, f"/blogger/{blogger_id}")
        assert status == 200
        assert body == engine.blogger(blogger_id).as_dict()

    def test_batch_matches_individual_endpoints(self, cluster_rig):
        store, cluster = cluster_rig
        engine = QueryEngine(store, cache_size=0)
        status, body = _post(cluster, "/query/batch", {"queries": [
            {"kind": "top", "k": 3},
            {"kind": "top", "k": 2, "domain": "Sports", "offset": 1},
            {"kind": "query", "weights": WEIGHTS, "k": 4},
            {"kind": "top", "k": 0},  # invalid: error inline, not 4xx
        ]})
        assert status == 200
        assert body["count"] == 4
        assert body["results"][0] == engine.top(3).as_dict()
        assert body["results"][1] \
            == engine.top(2, domain="Sports", offset=1).as_dict()
        assert body["results"][2] == engine.query(WEIGHTS, 4).as_dict()
        assert "k must be >= 1" in body["results"][3]["error"]
        assert body["epoch"] == store.snapshot.epoch

    def test_batch_validation(self, cluster_rig):
        _, cluster = cluster_rig
        status, body = _post(cluster, "/query/batch", {"queries": []})
        assert status == 400
        oversized = {"queries": [{"kind": "top"}] * 1000}
        status, body = _post(cluster, "/query/batch", oversized)
        assert status == 400
        assert "maximum" in body["error"]


class TestReplication:
    def test_refresh_reaches_workers(self, cluster_rig):
        store, cluster = cluster_rig
        old_epoch = store.snapshot.epoch
        store.submit(_make_delta(0))
        fresh = store.refresh_now()
        assert fresh.epoch != old_epoch
        engine = QueryEngine(store, cache_size=0)
        reference = engine.top(5).as_dict()
        # The swap listener published synchronously inside refresh_now;
        # the very next request must already serve the new epoch.
        status, body = _get(cluster, "/top?k=5")
        assert status == 200
        assert body["epoch"] == fresh.epoch
        assert body == reference

    def test_healthz_reports_cluster_shape(self, cluster_rig):
        _, cluster = cluster_rig
        status, body = _get(cluster, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["worker_id"] in (0, 1)
        assert body["cluster"]["workers"] == 2
        assert sorted(body["cluster"]["pids"]) == sorted(cluster.worker_pids)
        assert body["cluster"]["degraded"] is False


class TestMetricsAggregation:
    """/metrics under pre-fork: totals must span every worker."""

    def test_requests_total_counts_all_workers(self, cluster_rig):
        _, cluster = cluster_rig
        before = cluster.stats.totals()["requests"]
        rounds = 10
        for _ in range(rounds):
            status, _ = _get(cluster, "/top?k=3")
            assert status == 200
        after = cluster.stats.totals()["requests"]
        # Exact: nothing else is driving traffic, and reading totals()
        # from the master does not go through HTTP.
        assert after - before == rounds
        assert sum(cluster.stats.per_worker("requests")) == after

    def test_scrape_from_any_worker_is_cluster_wide(self, cluster_rig):
        _, cluster = cluster_rig
        status, _ = _get(cluster, "/top?k=2")
        assert status == 200
        expected = cluster.stats.totals()["requests"]
        host, port = cluster.url.removeprefix("http://").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.request("GET", "/metrics")
            text = conn.getresponse().read().decode("utf-8")
        finally:
            conn.close()
        values = {}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.partition(" ")
            values[name] = value
        # The shared aggregate joins the scrape with cluster-wide truth
        # (>= expected: the /metrics request itself may already count).
        assert float(values["repro_http_requests_total"]) >= expected
        assert 'repro_http_worker_requests_total{worker="0"}' in values
        assert 'repro_http_worker_requests_total{worker="1"}' in values
        per_worker = [
            float(values[f'repro_http_worker_requests_total{{worker="{w}"}}'])
            for w in (0, 1)
        ]
        assert sum(per_worker) \
            == float(values["repro_http_requests_total"])
        assert "repro_http_request_seconds_count" in values


class TestSupervision:
    """SIGKILL a worker: respawn, isolation, degraded /healthz window."""

    @pytest.fixture()
    def rig(self, small_blogosphere):
        corpus, _ = small_blogosphere
        store = SnapshotStore(corpus, params=MassParameters())
        cluster = ServingCluster(
            store,
            ServiceConfig(port=0, max_inflight=16),
            ClusterConfig(workers=2, degraded_window=1.5,
                          supervisor_interval=0.05),
        )
        with store, cluster:
            cluster.wait_ready()
            yield store, cluster

    def test_kill_respawn_isolation_degraded_window(self, rig):
        _, cluster = rig
        host, port = cluster.url.removeprefix("http://").split(":")
        # Pin a keep-alive connection to whichever worker accepts it.
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.request("GET", "/healthz")
            body = json.loads(conn.getresponse().read().decode("utf-8"))
            my_worker = body["worker_id"]
            pids_before = list(cluster.worker_pids)
            victim = pids_before[1 - my_worker]

            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 15
            while cluster.respawns == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert cluster.respawns == 1

            # Isolation: the pinned connection never noticed the kill.
            for _ in range(5):
                conn.request("GET", "/top?k=2")
                response = conn.getresponse()
                response.read()  # drain: keeps the connection reusable
                assert response.status == 200
            conn.request("GET", "/healthz")
            degraded = json.loads(
                conn.getresponse().read().decode("utf-8")
            )
            assert degraded["status"] == "degraded"
            assert degraded["cluster"]["degraded"] is True
            assert degraded["cluster"]["respawns"] == 1

            # The replacement worker serves traffic.
            pids_after = cluster.worker_pids
            assert victim not in pids_after
            assert len(pids_after) == 2
            status, _ = _get(cluster, "/top?k=3")
            assert status == 200

            # The degraded window closes.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                conn.request("GET", "/healthz")
                recovered = json.loads(
                    conn.getresponse().read().decode("utf-8")
                )
                if recovered["status"] == "ok":
                    break
                time.sleep(0.1)
            assert recovered["status"] == "ok"
            assert recovered["cluster"]["degraded"] is False
        finally:
            conn.close()


class TestClusterRateLimit:
    """The fork-shared limiter: one tenant budget across all workers."""

    @pytest.fixture()
    def rig(self, small_blogosphere):
        corpus, _ = small_blogosphere
        store = SnapshotStore(corpus, params=MassParameters())
        # A near-zero rate freezes refill for the test's duration, so
        # grants across the whole cluster total exactly the burst.
        cluster = ServingCluster(
            store,
            ServiceConfig(port=0, max_inflight=16,
                          rate_limit_qps=1e-9, rate_limit_burst=4.0),
            ClusterConfig(workers=2),
        )
        with store, cluster:
            cluster.wait_ready()
            yield store, cluster

    def test_budget_is_cluster_wide(self, rig):
        _, cluster = rig
        statuses = []
        for _ in range(12):  # fresh connection each time: the kernel
            status, _ = _get(  # spreads them across both workers
                cluster, "/top?k=2", headers={"X-Repro-Tenant": "greedy"}
            )
            statuses.append(status)
        # Exactly burst grants total, no matter which workers served
        # them; a shared-nothing limiter could grant up to workers x 4.
        assert statuses.count(200) == 4
        assert statuses.count(429) == 8
        # Other tenants keep their own full budget.
        status, _ = _get(
            cluster, "/top?k=2", headers={"X-Repro-Tenant": "patient"}
        )
        assert status == 200
        # /debug/vars on any worker reads the shared table.
        status, body = _get(cluster, "/debug/vars")
        assert status == 200
        assert body["rate_limit"]["burst"] == 4.0
        assert body["rate_limit"]["tenants"] == 2


class TestConfigValidation:
    def test_cluster_config_bounds(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            ClusterConfig(workers=0)
        with pytest.raises(ReproError):
            ClusterConfig(degraded_window=-1.0)
        with pytest.raises(ReproError):
            ClusterConfig(supervisor_interval=0.0)
