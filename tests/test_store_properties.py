"""Property-based tests for the columnar store.

Two families of invariants:

- **Round trips**: any valid corpus serialized through
  :func:`repro.store.write_corpus` and reopened as a
  :class:`~repro.store.ColumnarCorpus` answers the entire corpus read
  protocol identically — same ids, same field values, same grouped
  lookups, same iteration orders.  Writing is deterministic (same
  corpus → byte-identical file) and closed under round-tripping (a
  reopened view serializes back to the exact same bytes).

- **Corruption**: any truncation of a sealed ``.mcol`` file loses the
  footer and is rejected at open; any flipped byte inside a recorded
  section fails its CRC under ``verify=True``.  Both raise
  :class:`~repro.errors.StoreFormatError`, never garbage reads.
"""

from __future__ import annotations

import json
import struct
import tempfile
import zlib
from collections import Counter
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BlogCorpus, Blogger, Comment, Link, Post
from repro.errors import StoreFormatError
from repro.nlp.tokenize import tokenize
from repro.store import ColumnarCorpus, StoreReader, write_corpus
from repro.store.format import FOOTER_MAGIC, MAGIC

# ----------------------------------------------------------------------
# Corpus strategy
# ----------------------------------------------------------------------

# Excludes surrogates (not encodable to UTF-8); everything else must
# survive the string pools byte for byte.
_TEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=16
)


@st.composite
def corpora(draw) -> BlogCorpus:
    """Small random but always-valid corpora with unicode text."""
    num_bloggers = draw(st.integers(1, 5))
    bloggers = [f"b{i:02d}" for i in range(num_bloggers)]
    corpus = BlogCorpus()
    for blogger_id in bloggers:
        corpus.add_blogger(Blogger(
            blogger_id,
            name=draw(_TEXT),
            profile_text=draw(_TEXT),
            joined_day=draw(st.integers(0, 40)),
        ))

    post_ids = [f"p{i:02d}" for i in range(draw(st.integers(0, 6)))]
    for post_id in post_ids:
        corpus.add_post(Post(
            post_id,
            draw(st.sampled_from(bloggers)),
            title=draw(_TEXT),
            body=draw(_TEXT),
            created_day=draw(st.integers(0, 100)),
        ))

    if post_ids:
        for index in range(draw(st.integers(0, 8))):
            corpus.add_comment(Comment(
                f"c{index:02d}",
                draw(st.sampled_from(post_ids)),
                draw(st.sampled_from(bloggers)),
                text=draw(_TEXT),
                created_day=draw(st.integers(0, 100)),
            ))

    if num_bloggers > 1:
        for _ in range(draw(st.integers(0, 6))):
            source = draw(st.sampled_from(bloggers))
            target = draw(st.sampled_from(
                [blogger for blogger in bloggers if blogger != source]
            ))
            weight = draw(st.floats(
                min_value=0.125, max_value=8.0,
                allow_nan=False, allow_infinity=False,
            ))
            # Parallel links merge additively on both planes.
            corpus.add_link(Link(source, target, weight))
    return corpus


def _assert_equivalent(corpus: BlogCorpus, view: ColumnarCorpus) -> None:
    """The columnar view answers every protocol read like the source."""
    assert view.blogger_ids() == corpus.blogger_ids()
    assert len(view) == len(corpus.bloggers)
    assert list(view.bloggers) == sorted(corpus.bloggers)
    assert list(view.posts) == sorted(corpus.posts)
    assert list(view.comments) == sorted(corpus.comments)

    for blogger_id in corpus.blogger_ids():
        mine = corpus.blogger(blogger_id)
        theirs = view.blogger(blogger_id)
        assert blogger_id in view
        assert (theirs.name, theirs.profile_text, theirs.joined_day) == (
            mine.name, mine.profile_text, mine.joined_day
        )
        assert [post.post_id for post in view.posts_by(blogger_id)] == \
            [post.post_id for post in corpus.posts_by(blogger_id)]
        assert [c.comment_id for c in view.comments_by(blogger_id)] == \
            [c.comment_id for c in corpus.comments_by(blogger_id)]
        assert view.total_comments_by(blogger_id) == \
            corpus.total_comments_by(blogger_id)
        assert [
            (link.source_id, link.target_id, link.weight)
            for link in view.out_links(blogger_id)
        ] == [
            (link.source_id, link.target_id, link.weight)
            for link in corpus.out_links(blogger_id)
        ]
        assert [
            (link.source_id, link.target_id, link.weight)
            for link in view.in_links(blogger_id)
        ] == [
            (link.source_id, link.target_id, link.weight)
            for link in corpus.in_links(blogger_id)
        ]

    for post_id in corpus.posts:
        mine = corpus.post(post_id)
        theirs = view.post(post_id)
        assert (
            theirs.author_id, theirs.title, theirs.body,
            theirs.created_day, theirs.text,
        ) == (
            mine.author_id, mine.title, mine.body,
            mine.created_day, mine.text,
        )
        assert view.post_author_id(post_id) == mine.author_id
        assert [c.comment_id for c in view.comments_on(post_id)] == \
            [c.comment_id for c in corpus.comments_on(post_id)]

    for comment_id in corpus.comments:
        mine = corpus.comments[comment_id]
        theirs = view.comments[comment_id]
        assert (
            theirs.post_id, theirs.commenter_id, theirs.text,
            theirs.created_day,
        ) == (
            mine.post_id, mine.commenter_id, mine.text, mine.created_day
        )

    assert [
        (link.source_id, link.target_id, link.weight)
        for link in view.links
    ] == [
        (link.source_id, link.target_id, link.weight)
        for link in corpus.links
    ]

    mine_stats, theirs_stats = corpus.stats(), view.stats()
    for field in ("num_bloggers", "num_posts", "num_comments", "num_links"):
        assert getattr(theirs_stats, field) == getattr(mine_stats, field)


class TestRoundTrip:
    @given(corpus=corpora())
    @settings(max_examples=40, deadline=None)
    def test_protocol_reads_are_identical(self, corpus):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_corpus(corpus, Path(tmp) / "corpus.mcol")
            with ColumnarCorpus.open(path) as view:
                assert view.frozen
                assert view.freeze() is view
                view.validate()
                assert not view.has_tokens
                _assert_equivalent(corpus, view)

    @given(corpus=corpora())
    @settings(max_examples=20, deadline=None)
    def test_write_is_deterministic_and_closed_under_round_trips(
        self, corpus
    ):
        with tempfile.TemporaryDirectory() as tmp:
            first = write_corpus(corpus, Path(tmp) / "a.mcol")
            second = write_corpus(corpus, Path(tmp) / "b.mcol")
            blob = first.read_bytes()
            assert second.read_bytes() == blob
            # A reopened view feeds the builder exactly what the
            # original corpus did: generation two is byte-identical.
            with ColumnarCorpus.open(first) as view:
                third = write_corpus(view, Path(tmp) / "c.mcol")
                assert third.read_bytes() == blob

    @given(corpus=corpora())
    @settings(max_examples=20, deadline=None)
    def test_token_columns_match_the_tokenizer(self, corpus):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_corpus(
                corpus, Path(tmp) / "tokens.mcol", tokens=True
            )
            with ColumnarCorpus.open(path) as view:
                assert view.has_tokens
                vocabulary = view.vocabulary()
                assert len(vocabulary) == len(set(vocabulary))
                seen: set[str] = set()
                for post_id in sorted(corpus.posts):
                    expected = Counter(tokenize(corpus.post(post_id).text))
                    assert view.post_tokens(post_id) == dict(expected)
                    seen.update(expected)
                assert set(vocabulary) == seen


# ----------------------------------------------------------------------
# Corruption: the integrity model, byte by byte
# ----------------------------------------------------------------------

_FOOTER = struct.Struct("<QQI")
_FOOTER_SIZE = _FOOTER.size + len(FOOTER_MAGIC)


def _manifest_of(blob: bytes) -> tuple[dict, int]:
    offset, length, _crc = _FOOTER.unpack(
        blob[len(blob) - _FOOTER_SIZE: len(blob) - len(FOOTER_MAGIC)]
    )
    return json.loads(blob[offset: offset + length].decode("utf-8")), offset


def _reseal(blob: bytes, manifest: dict, offset: int) -> bytes:
    """Re-serialize a (possibly doctored) manifest with a valid CRC."""
    encoded = json.dumps(manifest, sort_keys=True).encode("utf-8")
    return (
        blob[:offset] + encoded
        + _FOOTER.pack(offset, len(encoded), zlib.crc32(encoded))
        + FOOTER_MAGIC
    )


@pytest.fixture(scope="module")
def sealed_blob(tmp_path_factory) -> bytes:
    """One well-formed store file, as bytes, for corruption to maul."""
    corpus = BlogCorpus()
    for index in range(4):
        corpus.add_blogger(Blogger(
            f"b{index}", name=f"blogger {index}",
            profile_text="writes about columnar stores",
            joined_day=index,
        ))
    corpus.add_post(Post("p0", "b0", title="on integrity",
                         body="every byte is framed by a crc", created_day=2))
    corpus.add_post(Post("p1", "b1", body="short", created_day=3))
    corpus.add_comment(Comment("c0", "p0", "b2", text="agreed",
                               created_day=4))
    corpus.add_link(Link("b2", "b0", 1.5))
    corpus.add_link(Link("b3", "b0", 1.0))
    path = tmp_path_factory.mktemp("sealed") / "fixture.mcol"
    write_corpus(corpus, path, tokens=True)
    return path.read_bytes()


def _open_bytes(tmp_path_factory, blob: bytes, **kwargs) -> StoreReader:
    path = tmp_path_factory.mktemp("maul") / "store.mcol"
    path.write_bytes(blob)
    return StoreReader(path, **kwargs)


class TestCorruption:
    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_any_truncation_is_rejected(
        self, tmp_path_factory, sealed_blob, fraction
    ):
        cut = min(len(sealed_blob) - 1, int(fraction * len(sealed_blob)))
        with pytest.raises(StoreFormatError):
            _open_bytes(tmp_path_factory, sealed_blob[:cut])

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_flipped_section_byte_fails_its_crc(
        self, tmp_path_factory, sealed_blob, data
    ):
        manifest, _ = _manifest_of(sealed_blob)
        sections = [
            spec for spec in manifest["sections"].values()
            if spec["length"] > 0
        ]
        spec = data.draw(st.sampled_from(sections))
        position = spec["offset"] + data.draw(
            st.integers(0, spec["length"] - 1)
        )
        mauled = bytearray(sealed_blob)
        mauled[position] ^= 0xFF
        with pytest.raises(StoreFormatError, match="CRC mismatch"):
            _open_bytes(tmp_path_factory, bytes(mauled))
        # verify=False trades that check away: the structural parse
        # (footer, manifest CRC, bounds) still passes.
        reader = _open_bytes(
            tmp_path_factory, bytes(mauled), verify=False
        )
        reader.close()

    def test_bad_magic(self, tmp_path_factory, sealed_blob):
        mauled = b"NOTACOL\x01" + sealed_blob[len(MAGIC):]
        with pytest.raises(StoreFormatError, match="bad magic"):
            _open_bytes(tmp_path_factory, mauled)

    def test_unsealed_file_missing_footer_magic(
        self, tmp_path_factory, sealed_blob
    ):
        mauled = sealed_blob[:-len(FOOTER_MAGIC)] + b"\x00" * 8
        with pytest.raises(StoreFormatError, match="not sealed"):
            _open_bytes(tmp_path_factory, mauled)

    def test_damaged_manifest_fails_its_crc(
        self, tmp_path_factory, sealed_blob
    ):
        _, offset = _manifest_of(sealed_blob)
        mauled = bytearray(sealed_blob)
        mauled[offset] ^= 0xFF
        with pytest.raises(StoreFormatError, match="manifest CRC"):
            _open_bytes(tmp_path_factory, bytes(mauled))

    def test_manifest_range_out_of_bounds(
        self, tmp_path_factory, sealed_blob
    ):
        mauled = (
            sealed_blob[:-_FOOTER_SIZE]
            + _FOOTER.pack(len(sealed_blob), 64, 0)
            + FOOTER_MAGIC
        )
        with pytest.raises(StoreFormatError, match="out of bounds"):
            _open_bytes(tmp_path_factory, mauled)

    def test_unsupported_format_version(
        self, tmp_path_factory, sealed_blob
    ):
        manifest, offset = _manifest_of(sealed_blob)
        manifest["format"] = 99
        with pytest.raises(StoreFormatError, match="unsupported"):
            _open_bytes(
                tmp_path_factory, _reseal(sealed_blob, manifest, offset)
            )

    def test_foreign_byteorder_rejected(
        self, tmp_path_factory, sealed_blob
    ):
        manifest, offset = _manifest_of(sealed_blob)
        manifest["byteorder"] = (
            "big" if manifest["byteorder"] == "little" else "little"
        )
        with pytest.raises(StoreFormatError, match="-endian"):
            _open_bytes(
                tmp_path_factory, _reseal(sealed_blob, manifest, offset)
            )

    def test_section_range_out_of_bounds(
        self, tmp_path_factory, sealed_blob
    ):
        manifest, offset = _manifest_of(sealed_blob)
        manifest["sections"]["blogger_joined"]["offset"] = len(sealed_blob)
        with pytest.raises(StoreFormatError, match="out of bounds"):
            _open_bytes(
                tmp_path_factory, _reseal(sealed_blob, manifest, offset)
            )

    def test_unknown_section_kind(self, tmp_path_factory, sealed_blob):
        manifest, offset = _manifest_of(sealed_blob)
        manifest["sections"]["blogger_joined"]["kind"] = "u128"
        with pytest.raises(StoreFormatError, match="unknown kind"):
            _open_bytes(
                tmp_path_factory, _reseal(sealed_blob, manifest, offset)
            )

    def test_count_column_mismatch(self, tmp_path_factory, sealed_blob):
        manifest, offset = _manifest_of(sealed_blob)
        manifest["counts"]["bloggers"] += 1
        path = tmp_path_factory.mktemp("maul") / "store.mcol"
        path.write_bytes(_reseal(sealed_blob, manifest, offset))
        with pytest.raises(StoreFormatError, match="manifest says"):
            ColumnarCorpus.open(path)

    def test_missing_required_section(self, tmp_path_factory, sealed_blob):
        manifest, offset = _manifest_of(sealed_blob)
        del manifest["sections"]["blogger_joined"]
        path = tmp_path_factory.mktemp("maul") / "store.mcol"
        path.write_bytes(_reseal(sealed_blob, manifest, offset))
        with pytest.raises(StoreFormatError, match="missing"):
            ColumnarCorpus.open(path)

    def test_wrong_kind_request(self, tmp_path_factory, sealed_blob):
        reader = _open_bytes(tmp_path_factory, sealed_blob)
        try:
            with pytest.raises(StoreFormatError, match="expected f64"):
                reader.f64("blogger_joined")
        finally:
            reader.close()

    def test_too_short_file(self, tmp_path_factory):
        with pytest.raises(StoreFormatError, match="too short"):
            _open_bytes(tmp_path_factory, b"tiny")

    def test_unopenable_path(self, tmp_path):
        with pytest.raises(StoreFormatError, match="cannot open"):
            StoreReader(tmp_path / "does-not-exist.mcol")
