"""Tests for adversarial injection and the robustness of Eq. 3."""

import pytest

from repro.baselines import LiveIndexBaseline
from repro.core import InfluenceSolver, MassParameters, rank_of
from repro.errors import ParameterError
from repro.synth import inject_comment_spam, inject_link_farm


def _weak_blogger_with_posts(corpus, truth):
    """A low-influence blogger who has at least one post."""
    candidates = sorted(
        (b for b in corpus.blogger_ids() if corpus.posts_by(b)),
        key=lambda b: truth.bloggers[b].latent_influence,
    )
    return candidates[0]


class TestCommentSpam:
    def test_spam_adds_accounts_and_comments(self, small_blogosphere):
        corpus, truth = small_blogosphere
        target = _weak_blogger_with_posts(corpus, truth)
        attacked = inject_comment_spam(
            corpus, target, num_spammers=3, comments_each=10, seed=1
        )
        assert len(attacked) == len(corpus) + 3
        assert len(attacked.comments) == len(corpus.comments) + 30
        # Original untouched.
        assert len(corpus) == 120

    def test_spammers_only_comment_on_target(self, small_blogosphere):
        corpus, truth = small_blogosphere
        target = _weak_blogger_with_posts(corpus, truth)
        attacked = inject_comment_spam(
            corpus, target, num_spammers=2, comments_each=5, seed=1
        )
        for blogger_id in attacked.blogger_ids():
            if not blogger_id.startswith("spammer-"):
                continue
            for comment in attacked.comments_by(blogger_id):
                assert attacked.post(comment.post_id).author_id == target

    def test_target_without_posts_rejected(self):
        from repro.data import CorpusBuilder

        builder = CorpusBuilder()
        builder.blogger("silent").blogger("writer")
        builder.post("writer", body="hello")
        corpus = builder.build()
        with pytest.raises(ParameterError, match="no posts"):
            inject_comment_spam(corpus, "silent")

    def test_invalid_sizes_rejected(self, small_blogosphere):
        corpus, truth = small_blogosphere
        target = _weak_blogger_with_posts(corpus, truth)
        with pytest.raises(ParameterError):
            inject_comment_spam(corpus, target, num_spammers=0)
        with pytest.raises(ParameterError):
            inject_comment_spam(corpus, target, comments_each=0)

    def test_tc_normalization_caps_spam_payoff(self, small_blogosphere):
        """The paper's Eq. 3 defence: with TC normalization, buying 10x
        more comments from the same sock puppets buys (almost) nothing;
        without it, the boost keeps growing."""
        corpus, truth = small_blogosphere
        target = _weak_blogger_with_posts(corpus, truth)

        def influence(params, comments_each):
            attacked = inject_comment_spam(
                corpus, target, num_spammers=3,
                comments_each=comments_each, seed=2,
            )
            return InfluenceSolver(attacked, params).solve().influence[target]

        normalized = MassParameters()
        counting = MassParameters(use_citation=False)

        norm_small = influence(normalized, 2)
        norm_large = influence(normalized, 20)
        count_small = influence(counting, 2)
        count_large = influence(counting, 20)

        # Normalized: 10x the spam volume, (nearly) no extra influence.
        assert norm_large <= norm_small * 1.05
        # Count-based: the boost grows several-fold.
        assert count_large > count_small * 2


class TestLinkFarm:
    def test_farm_adds_links(self, small_blogosphere):
        corpus, truth = small_blogosphere
        target = corpus.blogger_ids()[0]
        attacked = inject_link_farm(corpus, target, num_satellites=10)
        assert len(attacked.in_links(target)) == \
            len(corpus.in_links(target)) + 10

    def test_unknown_target_rejected(self, small_blogosphere):
        corpus, _ = small_blogosphere
        with pytest.raises(ParameterError, match="unknown target"):
            inject_link_farm(corpus, "ghost")

    def test_live_index_fully_gamed(self, small_blogosphere):
        corpus, truth = small_blogosphere
        target = _weak_blogger_with_posts(corpus, truth)
        before = rank_of(LiveIndexBaseline().score_bloggers(corpus), target)
        attacked = inject_link_farm(corpus, target, num_satellites=60)
        after = rank_of(
            LiveIndexBaseline().score_bloggers(attacked), target
        )
        assert after <= 3, f"link farm should buy the top (was #{before})"
        assert after < before
