"""Unit and integration tests for the multi-threaded crawler."""

import pytest

from repro.crawler import BlogCrawler, CrawlConfig, SimulatedBlogService
from repro.data import dumps_corpus, load_corpus
from repro.errors import CrawlError


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"radius": -1},
            {"max_spaces": 0},
            {"num_threads": 0},
            {"max_retries": -1},
            {"retry_delay": -0.1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(CrawlError):
            CrawlConfig(**kwargs)


class TestCrawlFig1:
    def test_radius_zero_is_seed_only(self, fig1_corpus):
        crawler = BlogCrawler(
            SimulatedBlogService(fig1_corpus), CrawlConfig(radius=0)
        )
        result = crawler.crawl(["amery"])
        assert result.fetched == ["amery"]
        # Comments by un-crawled bob/cary are dropped.
        assert result.dropped_comments == 3
        assert len(result.corpus.posts) == 2

    def test_radius_one_reaches_commenters(self, fig1_corpus):
        crawler = BlogCrawler(
            SimulatedBlogService(fig1_corpus), CrawlConfig(radius=1)
        )
        result = crawler.crawl(["amery"])
        # Neighbours of amery's page: bob, cary (commenters).
        assert result.fetched == ["amery", "bob", "cary"]
        assert result.dropped_comments == 0
        assert result.max_depth == 1

    def test_radius_covers_whole_graph(self, fig1_corpus):
        crawler = BlogCrawler(
            SimulatedBlogService(fig1_corpus), CrawlConfig(radius=5)
        )
        result = crawler.crawl(["amery"])
        # bob/cary/helen link to amery, so amery's page doesn't reveal
        # helen; but helen's out-link to amery means helen is only
        # discoverable from pages that list her. jane/eddie comment on
        # helen. Everything reachable undirected-forward: the crawl
        # follows outgoing references only (commenters + linkees), so
        # from amery we see bob, cary; their pages link to amery only.
        assert set(result.fetched) == {"amery", "bob", "cary"}

    def test_seed_at_helen_expands_down(self, fig1_corpus):
        crawler = BlogCrawler(
            SimulatedBlogService(fig1_corpus), CrawlConfig(radius=3)
        )
        result = crawler.crawl(["helen"])
        # helen's page: commenters jane, eddie; link to amery.
        assert set(result.fetched) >= {"helen", "jane", "eddie", "amery"}

    def test_multiple_seeds(self, fig1_corpus):
        crawler = BlogCrawler(
            SimulatedBlogService(fig1_corpus), CrawlConfig(radius=0)
        )
        result = crawler.crawl(["amery", "dolly"])
        assert result.fetched == ["amery", "dolly"]

    def test_unknown_seed_reported_failed(self, fig1_corpus):
        crawler = BlogCrawler(
            SimulatedBlogService(fig1_corpus), CrawlConfig(radius=0)
        )
        result = crawler.crawl(["amery", "ghost"])
        assert "ghost" in result.failed
        assert result.fetched == ["amery"]

    def test_all_seeds_failing_raises(self, fig1_corpus):
        crawler = BlogCrawler(
            SimulatedBlogService(fig1_corpus), CrawlConfig(radius=0)
        )
        with pytest.raises(CrawlError, match="seed"):
            crawler.crawl(["ghost", "phantom"])

    def test_max_spaces_budget(self, fig1_corpus):
        crawler = BlogCrawler(
            SimulatedBlogService(fig1_corpus),
            CrawlConfig(radius=3, max_spaces=2),
        )
        result = crawler.crawl(["amery"])
        assert len(result.fetched) == 2


class TestRetriesAndThreads:
    def test_retries_recover_transient_failures(self, small_blogosphere):
        corpus, _ = small_blogosphere
        service = SimulatedBlogService(corpus, failure_rate=0.4, seed=5)
        crawler = BlogCrawler(
            service, CrawlConfig(radius=2, max_retries=2, num_threads=4)
        )
        seed = corpus.blogger_ids()[0]
        result = crawler.crawl([seed])
        assert not result.failed
        assert service.stats.transient_failures > 0

    def test_no_retries_surfaces_failures(self, small_blogosphere):
        corpus, _ = small_blogosphere
        service = SimulatedBlogService(corpus, failure_rate=0.5, seed=5)
        crawler = BlogCrawler(
            service, CrawlConfig(radius=2, max_retries=0, num_threads=2)
        )
        # Use a seed that survives, then expect some frontier failures.
        for seed in corpus.blogger_ids():
            try:
                result = crawler.crawl([seed])
                break
            except CrawlError:
                continue
        assert result.failed

    def test_thread_count_does_not_change_output(self, small_blogosphere):
        corpus, _ = small_blogosphere
        seed = corpus.blogger_ids()[3]

        def crawl(threads):
            crawler = BlogCrawler(
                SimulatedBlogService(corpus),
                CrawlConfig(radius=2, num_threads=threads),
            )
            return crawler.crawl([seed])

        assert dumps_corpus(crawl(1).corpus) == dumps_corpus(crawl(8).corpus)

    def test_parallel_crawl_uses_latency_budget(self, fig1_corpus):
        # With 3 spaces at depth<=1 and per-fetch latency, 4 threads
        # must be faster than the serialized lower bound of 1 thread.
        service = SimulatedBlogService(fig1_corpus, latency=0.05)
        fast = BlogCrawler(
            service, CrawlConfig(radius=1, num_threads=4)
        ).crawl(["helen"])
        slow = BlogCrawler(
            service, CrawlConfig(radius=1, num_threads=1)
        ).crawl(["helen"])
        assert fast.elapsed < slow.elapsed


class TestPersistence:
    def test_crawl_to_directory(self, fig1_corpus, tmp_path):
        crawler = BlogCrawler(
            SimulatedBlogService(fig1_corpus), CrawlConfig(radius=1)
        )
        result = crawler.crawl_to_directory(["amery"], tmp_path)
        loaded = load_corpus(tmp_path)
        assert dumps_corpus(loaded) == dumps_corpus(result.corpus)


class TestDeltaStream:
    """The streaming crawl is the batch crawl, delivered in waves."""

    def _accumulate(self, stream):
        from repro.data import BlogCorpus

        accumulated = BlogCorpus()
        last_depth = -1
        for wave in stream:
            assert wave.depth >= last_depth
            last_depth = wave.depth
            assert wave.fetched
            accumulated.extend(
                bloggers=wave.delta.bloggers,
                posts=wave.delta.posts,
                comments=wave.delta.comments,
                links=wave.delta.links,
            )
        return accumulated

    @pytest.mark.parametrize("radius", [0, 1, 3])
    def test_waves_accumulate_to_the_batch_crawl(self, fig1_corpus, radius):
        from repro.core import CorpusDelta

        config = CrawlConfig(radius=radius)
        batch = BlogCrawler(
            SimulatedBlogService(fig1_corpus), config
        ).crawl(["amery"])
        stream = BlogCrawler(
            SimulatedBlogService(fig1_corpus), config
        ).stream(["amery"])
        accumulated = self._accumulate(stream)

        # Identical corpora: nothing new in either direction, and the
        # strict superset check passes both ways.
        assert CorpusDelta.between(accumulated, batch.corpus).is_empty()
        assert CorpusDelta.between(batch.corpus, accumulated).is_empty()
        assert sorted(stream.fetched) == sorted(batch.fetched)
        assert stream.failed == batch.failed
        assert stream.max_depth == batch.max_depth
        assert stream.dropped_comments == batch.dropped_comments
        assert stream.dropped_links == batch.dropped_links
        assert stream.waves >= 1

    def test_stream_matches_batch_on_a_generated_blogosphere(
        self, small_blogosphere
    ):
        from repro.core import CorpusDelta

        corpus, _ = small_blogosphere
        seeds = corpus.blogger_ids()[:3]
        config = CrawlConfig(radius=2)
        batch = BlogCrawler(
            SimulatedBlogService(corpus), config
        ).crawl(seeds)
        stream = BlogCrawler(
            SimulatedBlogService(corpus), config
        ).stream(seeds)
        accumulated = self._accumulate(stream)
        assert CorpusDelta.between(accumulated, batch.corpus).is_empty()
        assert CorpusDelta.between(batch.corpus, accumulated).is_empty()

    def test_stream_is_single_use(self, fig1_corpus):
        stream = BlogCrawler(
            SimulatedBlogService(fig1_corpus), CrawlConfig(radius=0)
        ).stream(["amery"])
        self._accumulate(stream)
        with pytest.raises(CrawlError, match="once"):
            iter(stream)

    def test_stream_with_all_seeds_failing_raises(self, fig1_corpus):
        stream = BlogCrawler(
            SimulatedBlogService(fig1_corpus), CrawlConfig(radius=0)
        ).stream(["nobody", "missing"])
        with pytest.raises(CrawlError, match="seed"):
            self._accumulate(stream)
