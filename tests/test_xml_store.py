"""Unit tests for the XML crawl-format persistence."""

import xml.etree.ElementTree as ET

import pytest

from repro.data import (
    dumps_corpus,
    figure1_corpus,
    load_corpus,
    loads_corpus,
    save_corpus,
)
from repro.data.xml_store import space_from_element, space_to_element
from repro.errors import XmlFormatError


class TestRoundTrip:
    def test_string_roundtrip_preserves_everything(self, fig1_corpus):
        text = dumps_corpus(fig1_corpus)
        loaded = loads_corpus(text)
        assert dumps_corpus(loaded) == text

    def test_roundtrip_entity_counts(self, fig1_corpus):
        loaded = loads_corpus(dumps_corpus(fig1_corpus))
        assert len(loaded.bloggers) == len(fig1_corpus.bloggers)
        assert len(loaded.posts) == len(fig1_corpus.posts)
        assert len(loaded.comments) == len(fig1_corpus.comments)
        assert len(loaded.links) == len(fig1_corpus.links)

    def test_roundtrip_preserves_text(self, fig1_corpus):
        loaded = loads_corpus(dumps_corpus(fig1_corpus))
        assert loaded.post("post1").body == fig1_corpus.post("post1").body
        assert (
            loaded.blogger("amery").profile_text
            == fig1_corpus.blogger("amery").profile_text
        )

    def test_directory_roundtrip(self, fig1_corpus, tmp_path):
        save_corpus(fig1_corpus, tmp_path)
        assert (tmp_path / "index.xml").exists()
        assert (tmp_path / "space-amery.xml").exists()
        loaded = load_corpus(tmp_path)
        assert dumps_corpus(loaded) == dumps_corpus(fig1_corpus)

    def test_loaded_corpus_is_frozen(self, fig1_corpus):
        assert loads_corpus(dumps_corpus(fig1_corpus)).frozen

    def test_special_characters_survive(self, tiny_corpus):
        # Rebuild with text that needs XML escaping.
        from repro.data import CorpusBuilder

        builder = CorpusBuilder()
        builder.blogger("a", profile_text="<tags> & \"quotes\" 'n stuff")
        post = builder.post("a", title="a < b & c", body="x > y")
        builder.comment(post.post_id, "a", text="5 < 6 && \"ok\"")
        corpus = builder.build()
        loaded = loads_corpus(dumps_corpus(corpus))
        assert loaded.blogger("a").profile_text == "<tags> & \"quotes\" 'n stuff"
        assert loaded.post(post.post_id).title == "a < b & c"


class TestSpaceElement:
    def test_space_structure(self, fig1_corpus):
        element = space_to_element(fig1_corpus, "amery")
        assert element.tag == "space"
        assert element.get("id") == "amery"
        posts = element.find("posts").findall("post")
        assert [p.get("id") for p in posts] == ["post1", "post2"]
        comments = posts[0].find("comments").findall("comment")
        assert {c.get("by") for c in comments} == {"bob", "cary"}

    def test_space_from_element_rejects_wrong_tag(self):
        with pytest.raises(XmlFormatError, match="expected <space>"):
            space_from_element(ET.Element("bogus"))

    def test_space_missing_profile_rejected(self):
        element = ET.Element("space", {"id": "x"})
        with pytest.raises(XmlFormatError, match="no <profile>"):
            space_from_element(element)

    def test_missing_attribute_rejected(self):
        element = ET.Element("space")  # no id
        with pytest.raises(XmlFormatError, match="missing required attribute"):
            space_from_element(element)

    def test_bad_int_attribute_rejected(self):
        element = ET.Element("space", {"id": "x"})
        ET.SubElement(element, "profile", {"joined-day": "soon"})
        with pytest.raises(XmlFormatError, match="must be an integer"):
            space_from_element(element)

    def test_bad_link_weight_rejected(self):
        corpus = figure1_corpus()
        element = space_to_element(corpus, "bob")
        link = element.find("links").find("link")
        link.set("weight", "heavy")
        with pytest.raises(XmlFormatError, match="weight must be a number"):
            space_from_element(element)


class TestErrors:
    def test_loads_invalid_xml(self):
        with pytest.raises(XmlFormatError, match="invalid XML"):
            loads_corpus("<blogosphere><space></blogosphere>")

    def test_loads_wrong_root(self):
        with pytest.raises(XmlFormatError, match="expected <blogosphere>"):
            loads_corpus("<wrong/>")

    def test_load_missing_index(self, tmp_path):
        with pytest.raises(XmlFormatError, match="no index.xml"):
            load_corpus(tmp_path)

    def test_load_index_wrong_root(self, tmp_path):
        (tmp_path / "index.xml").write_text("<nope/>")
        with pytest.raises(XmlFormatError, match="expected <index>"):
            load_corpus(tmp_path)

    def test_load_index_references_missing_file(self, tmp_path):
        (tmp_path / "index.xml").write_text(
            '<index><space id="a" file="space-a.xml"/></index>'
        )
        with pytest.raises(XmlFormatError, match="missing file"):
            load_corpus(tmp_path)

    def test_load_corrupt_space_file(self, fig1_corpus, tmp_path):
        save_corpus(fig1_corpus, tmp_path)
        (tmp_path / "space-amery.xml").write_text("<space broken")
        with pytest.raises(XmlFormatError, match="invalid XML"):
            load_corpus(tmp_path)


class TestCorruptionModes:
    """Every distinct way stored data can rot maps to CorpusFormatError."""

    def test_corpus_format_error_is_typed(self):
        from repro.errors import CorpusFormatError, ReproError

        assert issubclass(CorpusFormatError, XmlFormatError)
        assert issubclass(CorpusFormatError, ReproError)

    def test_truncated_space_file(self, fig1_corpus, tmp_path):
        from repro.errors import CorpusFormatError

        save_corpus(fig1_corpus, tmp_path)
        target = tmp_path / "space-amery.xml"
        content = target.read_text()
        target.write_text(content[: len(content) // 2])
        with pytest.raises(CorpusFormatError, match="invalid XML"):
            load_corpus(tmp_path)

    def test_duplicate_ids_across_space_files(self, fig1_corpus, tmp_path):
        from repro.errors import CorpusFormatError

        save_corpus(fig1_corpus, tmp_path)
        index = tmp_path / "index.xml"
        doc = ET.fromstring(index.read_text())
        first = doc.find("space")
        ET.SubElement(doc, "space",
                      {"id": first.get("id"), "file": first.get("file")})
        index.write_text(ET.tostring(doc, encoding="unicode"))
        with pytest.raises(CorpusFormatError,
                           match="stored corpus data is invalid"):
            load_corpus(tmp_path)

    def test_dangling_reference_inside_store(self, fig1_corpus, tmp_path):
        from repro.errors import CorpusFormatError

        save_corpus(fig1_corpus, tmp_path)
        target = tmp_path / "space-amery.xml"
        space = ET.fromstring(target.read_text())
        links = space.find("links")
        ET.SubElement(links, "link", {"to": "nobody-anywhere"})
        target.write_text(ET.tostring(space, encoding="unicode"))
        with pytest.raises(CorpusFormatError,
                           match="stored corpus data is invalid"):
            load_corpus(tmp_path)

    def test_invalid_entity_data(self, fig1_corpus, tmp_path):
        from repro.errors import CorpusFormatError

        save_corpus(fig1_corpus, tmp_path)
        target = tmp_path / "space-amery.xml"
        space = ET.fromstring(target.read_text())
        space.find("profile").set("joined-day", "-5")
        target.write_text(ET.tostring(space, encoding="unicode"))
        with pytest.raises(CorpusFormatError,
                           match="stored corpus data is invalid"):
            load_corpus(tmp_path)

    def test_loads_duplicate_post_across_spaces(self, fig1_corpus):
        from repro.errors import CorpusFormatError

        doc = ET.fromstring(dumps_corpus(fig1_corpus))
        spaces = doc.findall("space")
        dup = spaces[0].find("posts").find("post")
        spaces[1].find("posts").append(dup)
        with pytest.raises(CorpusFormatError,
                           match="stored corpus data is invalid"):
            loads_corpus(ET.tostring(doc, encoding="unicode"))

    def test_catching_xml_format_error_still_works(self, fig1_corpus,
                                                   tmp_path):
        """Pre-hardening callers that catch XmlFormatError keep working."""
        save_corpus(fig1_corpus, tmp_path)
        (tmp_path / "space-amery.xml").write_text("<space broken")
        with pytest.raises(XmlFormatError):
            load_corpus(tmp_path)
