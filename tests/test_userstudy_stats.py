"""Tests for user-study significance statistics."""

import pytest

from repro.errors import ParameterError
from repro.userstudy import compare_systems, paired_permutation_test


class TestPermutationTest:
    def test_identical_samples_not_significant(self):
        data = [3.0, 4.0, 2.0, 5.0]
        assert paired_permutation_test(data, list(data), rounds=500) > 0.9

    def test_clear_difference_significant(self):
        left = [5.0] * 20
        right = [1.0] * 20
        assert paired_permutation_test(left, right, rounds=2000) < 0.01

    def test_noise_not_significant(self):
        left = [3.0, 4.0, 2.0, 5.0, 3.0]
        right = [4.0, 3.0, 3.0, 4.0, 3.0]
        assert paired_permutation_test(left, right, rounds=2000) > 0.05

    def test_deterministic(self):
        left = [1.0, 2.0, 3.0, 5.0]
        right = [2.0, 2.0, 2.0, 3.0]
        a = paired_permutation_test(left, right, rounds=500, seed=7)
        b = paired_permutation_test(left, right, rounds=500, seed=7)
        assert a == b

    def test_p_value_in_unit_interval(self):
        p = paired_permutation_test([1.0, 2.0], [2.0, 1.0], rounds=100)
        assert 0.0 < p <= 1.0

    def test_validation(self):
        with pytest.raises(ParameterError, match="differ in length"):
            paired_permutation_test([1.0], [1.0, 2.0])
        with pytest.raises(ParameterError, match="at least one"):
            paired_permutation_test([], [])
        with pytest.raises(ParameterError, match="rounds"):
            paired_permutation_test([1.0], [2.0], rounds=0)


class TestCompareSystems:
    def test_oracle_vs_worst_significant(self, medium_blogosphere):
        _, truth = medium_blogosphere
        domains = ["Sports", "Art"]
        oracle = {d: truth.top_true_influencers(d, 3) for d in domains}
        worst = {
            d: [
                blogger_id
                for blogger_id, _ in sorted(
                    truth.domain_strengths(d).items(),
                    key=lambda kv: kv[1],
                )[:3]
            ]
            for d in domains
        }
        results = compare_systems(
            truth, oracle, worst, system_a="Oracle", system_b="Worst",
            rounds=2000,
        )
        assert len(results) == 2
        for comparison in results:
            assert comparison.difference > 1.0
            assert comparison.significant()

    def test_self_comparison_not_significant(self, medium_blogosphere):
        _, truth = medium_blogosphere
        lists = {"Sports": truth.top_true_influencers("Sports", 3)}
        results = compare_systems(truth, lists, dict(lists), rounds=500)
        assert not results[0].significant()
        assert results[0].difference == 0.0

    def test_mismatched_lengths_rejected(self, medium_blogosphere):
        _, truth = medium_blogosphere
        a = {"Sports": truth.top_true_influencers("Sports", 3)}
        b = {"Sports": truth.top_true_influencers("Sports", 2)}
        with pytest.raises(ParameterError, match="differ in length"):
            compare_systems(truth, a, b)

    def test_no_common_domains_rejected(self, medium_blogosphere):
        _, truth = medium_blogosphere
        with pytest.raises(ParameterError, match="no common domains"):
            compare_systems(truth, {"Sports": ["x"]}, {"Art": ["y"]})
