"""Unit tests for the force-directed layout."""

import math

import pytest

from repro.graph import Digraph, force_layout, scale_positions


def two_clusters() -> Digraph:
    graph = Digraph()
    graph.add_edges([("a1", "a2"), ("a2", "a3"), ("a3", "a1")])
    graph.add_edges([("b1", "b2"), ("b2", "b3"), ("b3", "b1")])
    return graph


class TestForceLayout:
    def test_empty_graph(self):
        assert force_layout(Digraph()) == {}

    def test_single_node_centered(self):
        graph = Digraph()
        graph.add_node("only")
        positions = force_layout(graph, size=2.0)
        assert positions["only"] == (1.0, 1.0)

    def test_positions_in_frame(self):
        positions = force_layout(two_clusters(), size=1.0, seed=3)
        for x, y in positions.values():
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_deterministic_for_seed(self):
        graph = two_clusters()
        assert force_layout(graph, seed=5) == force_layout(graph, seed=5)

    def test_different_seeds_differ(self):
        graph = two_clusters()
        assert force_layout(graph, seed=1) != force_layout(graph, seed=2)

    def test_connected_nodes_closer_than_disconnected(self):
        positions = force_layout(two_clusters(), iterations=150, seed=0)

        def dist(u, v):
            (ux, uy), (vx, vy) = positions[u], positions[v]
            return math.hypot(ux - vx, uy - vy)

        intra = (dist("a1", "a2") + dist("b1", "b2")) / 2
        inter = dist("a1", "b1")
        assert intra < inter

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            force_layout(two_clusters(), iterations=0)


class TestScalePositions:
    def test_scales_to_canvas(self):
        positions = {"a": (0.0, 0.0), "b": (1.0, 2.0)}
        scaled = scale_positions(positions, 100, 50)
        assert scaled["a"] == (0.0, 0.0)
        assert scaled["b"] == (100.0, 50.0)

    def test_degenerate_axis(self):
        positions = {"a": (0.5, 0.0), "b": (0.5, 1.0)}
        scaled = scale_positions(positions, 10, 10)
        assert scaled["a"][0] == scaled["b"][0]

    def test_empty(self):
        assert scale_positions({}, 10, 10) == {}
