"""The timeline subsystem: retention, history index, service, HTTP API.

Exercises the three layers the time axis is built from — the
:class:`RetentionPolicy` pruner contract, the :class:`TimelineHistory`
seq/wall-time index with its latest-at-or-before resolution, and the
:class:`TimelineService` payloads behind ``GET /asof`` / ``GET /trend``
— over a real durable directory written by the ingest pipeline.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import CorpusDelta, IncrementalAnalyzer, MassParameters
from repro.data import Blogger, Comment, Link, Post
from repro.errors import IngestError, QueryError, TimelineError
from repro.ingest import IngestConfig, IngestPipeline, RetentionPolicy
from repro.ingest.checkpoint import CheckpointManager
from repro.nlp import NaiveBayesClassifier
from repro.obs import Instrumentation
from repro.serve import (
    InfluenceSnapshot,
    ServiceConfig,
    SnapshotStore,
    create_server,
)
from repro.synth import DOMAIN_VOCABULARIES
from repro.timeline import HistoryEntry, TimelineHistory, TimelineService

STREAM_LENGTH = 5


def _delta(seq: int, anchor: str) -> CorpusDelta:
    blogger_id = f"tl-{seq:03d}"
    return CorpusDelta(
        bloggers=(Blogger(blogger_id, name=f"T{seq}",
                          profile_text="sports stadium marathon blogger",
                          joined_day=seq),),
        posts=(Post(f"tl-p-{seq:03d}", blogger_id,
                    title=f"match report {seq}",
                    body="the stadium game and the marathon " * 2,
                    created_day=30 * seq),),
        comments=(Comment(
            f"tl-c-{seq:03d}",
            f"tl-p-{seq - 1:03d}" if seq > 1 else f"tl-p-{seq:03d}",
            anchor, text=f"reaction number {seq} to the game",
            created_day=30 * seq,
        ),),
        links=(Link(blogger_id, anchor, 0.5),),
    )


def _epoch(report) -> str:
    return InfluenceSnapshot.compile(report).epoch


@pytest.fixture(scope="module")
def durable_history(tmp_path_factory, fig1_corpus):
    """A durable dir with keep-last-3 retention and 5 applied deltas.

    Returns ``(root, anchor, epochs)`` where ``epochs[k]`` is the
    snapshot epoch after delta ``k`` of an uninterrupted run.
    """
    root = tmp_path_factory.mktemp("timeline-history")
    anchor = fig1_corpus.blogger_ids()[0]
    classifier = NaiveBayesClassifier.from_seed_vocabulary(
        DOMAIN_VOCABULARIES
    )
    pipeline = IngestPipeline(
        root, IncrementalAnalyzer(classifier),
        IngestConfig(checkpoint_interval=1, retention="last:3"),
    )
    epochs = [_epoch(pipeline.open(fig1_corpus))]
    pipeline.wait_recovery_checkpoint()
    for seq in range(1, STREAM_LENGTH + 1):
        epochs.append(_epoch(pipeline.apply(_delta(seq, anchor))))
    pipeline.close()
    return root, anchor, epochs


class TestRetentionPolicy:
    @pytest.mark.parametrize("spec,canonical", [
        ("all", "all"),
        ("last:3", "last:3"),
        ("last:1", "last:1"),
        ("7", "last:7"),
        ("horizon:3600", "horizon:3600"),
        ("horizon:1.5", "horizon:1.5"),
    ])
    def test_parse_round_trips(self, spec, canonical):
        policy = RetentionPolicy.parse(spec)
        assert policy.spec() == canonical
        assert RetentionPolicy.parse(policy.spec()) == policy

    @pytest.mark.parametrize("spec", [
        "", "banana", "last:0", "last:-1", "last:x",
        "horizon:-1", "horizon:nan", "horizon:", "all:2",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(IngestError):
            RetentionPolicy.parse(spec)

    def test_keep_last_n(self):
        entries = [(f"c{i}", i, 100.0 + i) for i in range(6)]
        policy = RetentionPolicy.keep_last(2)
        assert policy.survivors(entries) == {"c4", "c5"}

    def test_keep_all(self):
        entries = [(f"c{i}", i, 100.0 + i) for i in range(4)]
        assert RetentionPolicy.keep_all().survivors(entries) \
            == {"c0", "c1", "c2", "c3"}

    def test_horizon_measured_from_newest(self):
        entries = [("old", 1, 100.0), ("mid", 2, 190.0), ("new", 3, 200.0)]
        policy = RetentionPolicy.horizon(15.0)
        assert policy.survivors(entries) == {"mid", "new"}

    def test_horizon_always_keeps_newest(self):
        entries = [("a", 1, 0.0), ("b", 2, 1000.0)]
        assert RetentionPolicy.horizon(0.001).survivors(entries) == {"b"}

    def test_survivors_sorts_by_seq_not_input_order(self):
        entries = [("new", 9, 300.0), ("old", 1, 100.0)]
        assert RetentionPolicy.keep_last(1).survivors(entries) == {"new"}


class TestManifestUnderRetention:
    def test_keeps_exactly_last_three(self, durable_history):
        root, _, _ = durable_history
        manifest = CheckpointManager(root / "checkpoints").manifest()
        assert [seq for _, seq, _, _ in manifest] == [3, 4, 5]

    def test_manifest_ordered_with_wall_times(self, durable_history):
        root, _, _ = durable_history
        manifest = CheckpointManager(root / "checkpoints").manifest()
        walls = [wall for _, _, wall, _ in manifest]
        assert walls == sorted(walls)
        assert all(wall > 0 for wall in walls)

    def test_load_at_materializes_named_checkpoint(self, durable_history):
        root, _, epochs = durable_history
        manager = CheckpointManager(root / "checkpoints")
        name, seq, _, _ = manager.manifest()[0]
        checkpoint = manager.load_at(name)
        assert checkpoint.seq == seq
        assert _epoch(checkpoint.report) == epochs[seq]

    def test_pre_retention_meta_reads_as_wall_zero(self, tmp_path,
                                                   durable_history):
        """Checkpoints written before wall_time existed still index."""
        import shutil

        root, _, _ = durable_history
        shutil.copytree(root / "checkpoints", tmp_path / "checkpoints")
        manager = CheckpointManager(tmp_path / "checkpoints")
        name, _, _, path = manager.manifest()[0]
        meta = json.loads((path / "meta.json").read_text())
        del meta["wall_time"]
        (path / "meta.json").write_text(json.dumps(meta))
        manifest = CheckpointManager(tmp_path / "checkpoints").manifest()
        assert manifest[0][0] == name
        assert manifest[0][2] == 0.0


class TestTimelineHistory:
    def test_entries_match_manifest(self, durable_history):
        root, _, _ = durable_history
        history = TimelineHistory(root / "checkpoints")
        entries = history.entries()
        assert [e.seq for e in entries] == [3, 4, 5]
        assert all(isinstance(e, HistoryEntry) for e in entries)

    def test_resolve_defaults_to_newest(self, durable_history):
        root, _, _ = durable_history
        history = TimelineHistory(root / "checkpoints")
        assert history.resolve().seq == 5

    def test_resolve_seq_latest_at_or_before(self, durable_history):
        root, _, _ = durable_history
        history = TimelineHistory(root / "checkpoints")
        assert history.resolve(seq=4).seq == 4
        # seq 1000 is after everything retained: clamp to newest.
        assert history.resolve(seq=1000).seq == 5

    def test_resolve_timestamp_latest_at_or_before(self, durable_history):
        root, _, _ = durable_history
        history = TimelineHistory(root / "checkpoints")
        entries = history.entries()
        midpoint = (entries[0].wall_time + entries[1].wall_time) / 2
        resolved = history.resolve(timestamp=midpoint)
        assert resolved.seq == entries[0].seq

    def test_resolve_rejects_both_axes(self, durable_history):
        root, _, _ = durable_history
        history = TimelineHistory(root / "checkpoints")
        with pytest.raises(TimelineError, match="not both"):
            history.resolve(timestamp=1.0, seq=1)

    def test_resolve_before_retained_span(self, durable_history):
        root, _, _ = durable_history
        history = TimelineHistory(root / "checkpoints")
        with pytest.raises(TimelineError, match="predates"):
            history.resolve(timestamp=1.5)
        with pytest.raises(TimelineError, match="predates"):
            history.resolve(seq=0)

    def test_empty_directory_raises(self, tmp_path):
        history = TimelineHistory(tmp_path / "checkpoints")
        with pytest.raises(TimelineError, match="no checkpoint history"):
            history.resolve()

    def test_as_of_round_trips_epoch(self, durable_history):
        root, _, epochs = durable_history
        history = TimelineHistory(root / "checkpoints")
        for seq in (3, 4, 5):
            checkpoint = history.as_of(seq=seq)
            assert checkpoint.seq == seq
            assert _epoch(checkpoint.report) == epochs[seq]

    def test_span_covers_retained_entries(self, durable_history):
        root, _, _ = durable_history
        history = TimelineHistory(root / "checkpoints")
        entries = history.entries()
        assert history.span() == (
            entries[0].wall_time, entries[-1].wall_time
        )


class TestTimelineService:
    def test_accepts_durable_root_or_checkpoint_dir(self, durable_history):
        root, _, _ = durable_history
        by_root = TimelineService(root).history.entries()
        by_dir = TimelineService(root / "checkpoints").history.entries()
        assert [e.name for e in by_root] == [e.name for e in by_dir]

    def test_as_of_payload(self, durable_history):
        root, _, epochs = durable_history
        service = TimelineService(root)
        payload = service.as_of(seq=4, k=2)
        assert payload["resolved"]["seq"] == 4
        assert payload["epoch"] == epochs[4]
        assert len(payload["results"]) == 2
        scores = [item["score"] for item in payload["results"]]
        assert scores == sorted(scores, reverse=True)

    def test_as_of_rejects_bad_k(self, durable_history):
        root, _, _ = durable_history
        with pytest.raises(QueryError, match="k must be >= 1"):
            TimelineService(root).as_of(k=0)

    def test_snapshot_cache_hits(self, durable_history):
        root, _, _ = durable_history
        instr = Instrumentation.enabled()
        service = TimelineService(root, instrumentation=instr)
        service.as_of(seq=4)
        service.as_of(seq=4)
        registry = instr.metrics
        assert registry.counter(
            "repro_timeline_snapshot_cache_misses_total"
        ).value == 1
        assert registry.counter(
            "repro_timeline_snapshot_cache_hits_total"
        ).value == 1

    def test_trend_payload(self, durable_history):
        root, _, _ = durable_history
        service = TimelineService(root)
        payload = service.trend(window_days=60, step_days=30, k=3)
        assert payload["resolved"]["seq"] == 5
        assert len(payload["windows"]) >= 2
        assert payload["rising"]
        slopes = [item["trend"] for item in payload["rising"]]
        assert slopes == sorted(slopes, reverse=True)

    def test_trend_rejects_bad_window(self, durable_history):
        root, _, _ = durable_history
        with pytest.raises(QueryError, match="window and step"):
            TimelineService(root).trend(window_days=0)

    def test_trend_unknown_domain(self, durable_history):
        root, _, _ = durable_history
        with pytest.raises(QueryError, match="unknown domain"):
            TimelineService(root).trend(domain="Astrology")

    def test_trend_domain_filter_is_membership(self, durable_history):
        """A domain lens keeps only that domain's positive scorers."""
        root, _, _ = durable_history
        service = TimelineService(root)
        snapshot, _ = service.snapshot_at()
        total = len(snapshot.blogger_ids)
        populated = empty = None
        for domain in snapshot.domains:
            members = {b for b, s in snapshot.top(total, domain=domain)
                       if s > 0.0}
            if members and populated is None:
                populated = domain, members
            if not members and empty is None:
                empty = domain
        assert populated is not None, "corpus has no populated domain"
        domain, members = populated
        payload = service.trend(domain=domain, window_days=60,
                                step_days=30, k=total)
        assert payload["rising"], payload
        assert {item["blogger_id"] for item in payload["rising"]} <= members
        if empty is not None:
            with pytest.raises(TimelineError, match="no active bloggers"):
                service.trend(domain=empty, window_days=60, step_days=30)

    def test_trajectory_cache_reused(self, durable_history):
        root, _, _ = durable_history
        service = TimelineService(root)
        first, entry1 = service.trajectory_at(60, 30)
        second, entry2 = service.trajectory_at(60, 30)
        assert first is second
        assert entry1 == entry2

    def test_history_listing(self, durable_history):
        root, _, _ = durable_history
        listing = TimelineService(root).history_listing()
        assert listing["retained"] == 3
        assert [e["seq"] for e in listing["entries"]] == [3, 4, 5]


@pytest.fixture(scope="module")
def timeline_server(durable_history, fig1_corpus):
    """A running server whose time axis is the retained history."""
    root, _, _ = durable_history
    instr = Instrumentation.enabled()
    store = SnapshotStore(
        fig1_corpus, params=MassParameters(), instrumentation=instr
    )
    server = create_server(
        store,
        ServiceConfig(port=0, timeline_dir=str(root)),
        instr,
    )
    server.serve_in_thread()
    yield server
    server.shutdown()
    server.server_close()
    store.close()


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def _get_error(server, path):
    try:
        urllib.request.urlopen(server.url + path, timeout=10)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))
    raise AssertionError(f"{path} unexpectedly succeeded")


class TestTimelineHttp:
    def test_timeline_listing(self, timeline_server):
        status, body = _get(timeline_server, "/timeline")
        assert status == 200
        assert body["retained"] == 3
        assert [e["seq"] for e in body["entries"]] == [3, 4, 5]

    def test_asof_by_seq(self, timeline_server, durable_history):
        _, _, epochs = durable_history
        status, body = _get(timeline_server, "/asof?seq=4&k=2")
        assert status == 200
        assert body["resolved"]["seq"] == 4
        assert body["epoch"] == epochs[4]
        assert len(body["results"]) == 2

    def test_asof_newest_by_default(self, timeline_server, durable_history):
        _, _, epochs = durable_history
        status, body = _get(timeline_server, "/asof")
        assert status == 200
        assert body["epoch"] == epochs[5]

    def test_asof_before_history_is_404(self, timeline_server):
        code, body = _get_error(timeline_server, "/asof?t=1.5")
        assert code == 404
        assert "predates" in body["error"]

    def test_asof_rejects_both_axes(self, timeline_server):
        code, body = _get_error(timeline_server, "/asof?t=5&seq=4")
        assert code == 404
        assert "not both" in body["error"]

    def test_asof_bad_params(self, timeline_server):
        code, body = _get_error(timeline_server, "/asof?k=banana")
        assert code == 400
        assert "integer" in body["error"]
        code, body = _get_error(timeline_server, "/asof?t=soon")
        assert code == 400
        assert "number" in body["error"]

    def test_trend_endpoint(self, timeline_server):
        status, body = _get(
            timeline_server, "/trend?window=60&step=30&k=3"
        )
        assert status == 200
        assert body["rising"]
        assert body["window_days"] == 60
        assert body["step_days"] == 30

    def test_trend_bad_window_is_400(self, timeline_server):
        code, body = _get_error(timeline_server, "/trend?window=0")
        assert code == 400
        assert "window and step" in body["error"]

    def test_no_time_axis_is_404(self, fig1_corpus):
        instr = Instrumentation.enabled()
        store = SnapshotStore(fig1_corpus, instrumentation=instr)
        server = create_server(store, ServiceConfig(port=0), instr)
        server.serve_in_thread()
        try:
            code, body = _get_error(server, "/asof")
            assert code == 404
            assert "no time axis" in body["error"]
            code, _ = _get_error(server, "/trend")
            assert code == 404
            code, _ = _get_error(server, "/timeline")
            assert code == 404
        finally:
            server.shutdown()
            server.server_close()
            store.close()
