"""Unit and property tests for ranking metrics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation import (
    jaccard_at_k,
    kendall_tau,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    spearman_rho,
)

scores_strategy = st.dictionaries(
    st.sampled_from(list("abcdefgh")),
    st.floats(-10, 10, allow_nan=False),
    min_size=2,
    max_size=8,
)


class TestPrecisionRecall:
    def test_precision_basics(self):
        assert precision_at_k(["a", "b", "c"], {"a", "c"}, 2) == 0.5
        assert precision_at_k(["a", "b"], {"a", "b"}, 2) == 1.0
        assert precision_at_k(["x"], {"a"}, 1) == 0.0

    def test_precision_short_list_counts_k(self):
        # One relevant in a 1-item list at k=3: 1/3 by convention.
        assert math.isclose(precision_at_k(["a"], {"a"}, 3), 1 / 3)

    def test_precision_empty_list(self):
        assert precision_at_k([], {"a"}, 3) == 0.0

    def test_recall_basics(self):
        assert recall_at_k(["a", "b"], {"a", "c"}, 2) == 0.5
        assert recall_at_k(["a", "c"], {"a", "c"}, 2) == 1.0
        assert recall_at_k(["a"], set(), 1) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(["a"], {"a"}, 0)
        with pytest.raises(ValueError):
            recall_at_k(["a"], {"a"}, 0)


class TestNdcg:
    def test_perfect_ranking_is_one(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert math.isclose(ndcg_at_k(["a", "b", "c"], gains, 3), 1.0)

    def test_worst_ranking_below_one(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["c", "b", "a"], gains, 3) < 1.0

    def test_zero_gains(self):
        assert ndcg_at_k(["a"], {}, 1) == 0.0

    def test_negative_gain_rejected(self):
        with pytest.raises(ValueError):
            ndcg_at_k(["a"], {"a": -1.0}, 1)

    @given(
        st.permutations(["a", "b", "c", "d"]),
        st.dictionaries(
            st.sampled_from(list("abcd")), st.floats(0, 5, allow_nan=False),
            min_size=4, max_size=4,
        ),
    )
    def test_bounded_zero_one(self, ranking, gains):
        value = ndcg_at_k(list(ranking), gains, 4)
        assert -1e-9 <= value <= 1.0 + 1e-9


class TestJaccard:
    def test_identical(self):
        assert jaccard_at_k(["a", "b"], ["b", "a"], 2) == 1.0

    def test_disjoint(self):
        assert jaccard_at_k(["a"], ["b"], 1) == 0.0

    def test_empty_both(self):
        assert jaccard_at_k([], [], 3) == 1.0


class TestKendall:
    def test_perfect_agreement(self):
        left = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert math.isclose(kendall_tau(left, dict(left)), 1.0)

    def test_perfect_disagreement(self):
        left = {"a": 3.0, "b": 2.0, "c": 1.0}
        right = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert math.isclose(kendall_tau(left, right), -1.0)

    def test_ties_neither_concordant_nor_discordant(self):
        left = {"a": 1.0, "b": 1.0}
        right = {"a": 2.0, "b": 1.0}
        assert kendall_tau(left, right) == 0.0

    def test_needs_two_common(self):
        with pytest.raises(ValueError):
            kendall_tau({"a": 1.0}, {"b": 1.0})

    @given(scores_strategy, scores_strategy)
    def test_bounded_and_symmetric(self, left, right):
        common = set(left) & set(right)
        if len(common) < 2:
            return
        tau = kendall_tau(left, right)
        assert -1.0 <= tau <= 1.0
        assert math.isclose(tau, kendall_tau(right, left))


class TestSpearman:
    def test_perfect_agreement(self):
        left = {"a": 10.0, "b": 5.0, "c": 1.0}
        assert math.isclose(spearman_rho(left, dict(left)), 1.0)

    def test_reversal(self):
        left = {"a": 3.0, "b": 2.0, "c": 1.0}
        right = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert math.isclose(spearman_rho(left, right), -1.0)

    def test_all_tied_returns_zero(self):
        left = {"a": 1.0, "b": 1.0, "c": 1.0}
        right = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert spearman_rho(left, right) == 0.0

    @given(scores_strategy, scores_strategy)
    def test_bounded(self, left, right):
        common = set(left) & set(right)
        if len(common) < 2:
            return
        rho = spearman_rho(left, right)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9
