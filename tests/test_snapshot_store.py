"""SnapshotStore: copy-on-write swaps and the background refresher."""

import time

import pytest

from repro.core import CorpusDelta, MassParameters
from repro.data import Blogger, Comment, Link, Post
from repro.errors import ReproError
from repro.obs import Instrumentation
from repro.serve import SnapshotStore
from repro.synth import DOMAIN_VOCABULARIES


def make_delta(corpus, seq=0):
    """One new blogger with a post, a comment on it, and a link."""
    existing = corpus.blogger_ids()[0]
    new_id = f"newcomer-{seq:02d}"
    post = Post(f"newpost-{seq:02d}", new_id,
                body="a fresh post about the marathon stadium game " * 4,
                created_day=300)
    comment = Comment(f"newcomment-{seq:02d}", post.post_id, existing,
                      text="I agree, a wonderful read", created_day=301)
    return CorpusDelta(
        bloggers=[Blogger(new_id)],
        posts=[post],
        comments=[comment],
        links=[Link(existing, new_id)],
    )


@pytest.fixture()
def store(small_blogosphere):
    corpus, _ = small_blogosphere
    store = SnapshotStore(
        corpus,
        params=MassParameters(),
        domain_seed_words=DOMAIN_VOCABULARIES,
        max_staleness=0.05,
        instrumentation=Instrumentation.enabled(),
    )
    yield store
    store.close()


class TestInitialState:
    def test_snapshot_matches_report(self, store):
        snapshot = store.snapshot
        assert snapshot.top(5) == store.report.top_influencers(5)
        assert snapshot.epoch == store.snapshot.epoch

    def test_refresh_with_empty_queue_is_noop(self, store):
        before = store.snapshot
        assert store.refresh_now() is before

    def test_empty_delta_is_dropped(self, store):
        store.submit(CorpusDelta())
        assert store.pending_deltas == 0

    def test_params_exposed(self, store):
        assert store.params == MassParameters()

    def test_bad_staleness_rejected(self, small_blogosphere):
        corpus, _ = small_blogosphere
        with pytest.raises(ReproError, match="max_staleness"):
            SnapshotStore(corpus, max_staleness=-1.0)

    def test_classifier_and_seed_words_are_exclusive(self, small_blogosphere):
        from repro.nlp import NaiveBayesClassifier

        corpus, _ = small_blogosphere
        classifier = NaiveBayesClassifier.from_seed_vocabulary(
            DOMAIN_VOCABULARIES
        )
        with pytest.raises(ReproError, match="not both"):
            SnapshotStore(
                corpus,
                domain_seed_words=DOMAIN_VOCABULARIES,
                classifier=classifier,
            )


class TestSynchronousRefresh:
    def test_swap_changes_epoch_and_folds_delta(self, store,
                                                small_blogosphere):
        corpus, _ = small_blogosphere
        old = store.snapshot
        store.submit(make_delta(corpus))
        assert store.pending_deltas == 1
        fresh = store.refresh_now()
        assert fresh.epoch != old.epoch
        assert store.snapshot is fresh
        assert "newcomer-00" in fresh.blogger_ids
        assert store.pending_deltas == 0
        # Old snapshot still answers consistently from its own analysis.
        assert "newcomer-00" not in old.blogger_ids

    def test_refreshed_snapshot_matches_batch_on_grown_corpus(
        self, store, small_blogosphere
    ):
        corpus, _ = small_blogosphere
        store.submit(make_delta(corpus))
        fresh = store.refresh_now()
        report = store.report  # the incremental analyzer's current report
        assert fresh.top(10) == report.top_influencers(10)
        for domain in fresh.domains:
            assert (fresh.top(5, domain=domain)
                    == report.top_influencers(5, domain))

    def test_multiple_deltas_coalesce_into_one_swap(self, store,
                                                    small_blogosphere):
        corpus, _ = small_blogosphere
        store.submit(make_delta(corpus, seq=1))
        store.submit(make_delta(corpus, seq=2))
        fresh = store.refresh_now()
        assert "newcomer-01" in fresh.blogger_ids
        assert "newcomer-02" in fresh.blogger_ids

    def test_swap_metrics_recorded(self, store, small_blogosphere):
        corpus, _ = small_blogosphere
        store.submit(make_delta(corpus))
        store.refresh_now()
        metrics = store._instr.metrics
        assert metrics.get("repro_serve_snapshot_swaps_total").value == 1
        assert metrics.get("repro_serve_deltas_applied_total").value == 1
        assert metrics.get("repro_serve_refresh_seconds").count == 1


class TestBackgroundRefresher:
    def test_submitted_delta_served_within_staleness_bound(
        self, store, small_blogosphere
    ):
        corpus, _ = small_blogosphere
        old_epoch = store.snapshot.epoch
        with store:
            store.submit(make_delta(corpus))
            deadline = time.monotonic() + 10.0
            while (store.snapshot.epoch == old_epoch
                   and time.monotonic() < deadline):
                time.sleep(0.01)
        assert store.snapshot.epoch != old_epoch
        assert "newcomer-00" in store.snapshot.blogger_ids

    def test_start_is_idempotent(self, store):
        store.start()
        thread = store._thread
        store.start()
        assert store._thread is thread

    def test_close_drains_remaining_deltas(self, store, small_blogosphere):
        corpus, _ = small_blogosphere
        store.start()
        store.submit(make_delta(corpus, seq=5))
        store.close()
        assert store.pending_deltas == 0
        assert "newcomer-05" in store.snapshot.blogger_ids


class TestDurableMode:
    def durable_store(self, corpus, directory, **kwargs):
        from repro.ingest import IngestConfig

        return SnapshotStore(
            corpus,
            params=MassParameters(),
            domain_seed_words=DOMAIN_VOCABULARIES,
            max_staleness=0.05,
            durable_dir=directory,
            ingest_config=IngestConfig(checkpoint_interval=1),
            **kwargs,
        )

    def test_ingest_config_requires_durable_dir(self, fig1_corpus):
        from repro.ingest import IngestConfig

        with pytest.raises(ReproError, match="durable_dir"):
            SnapshotStore(fig1_corpus, ingest_config=IngestConfig())

    def test_pipeline_exposed_only_in_durable_mode(self, fig1_corpus,
                                                   tmp_path):
        plain = SnapshotStore(fig1_corpus,
                              domain_seed_words=DOMAIN_VOCABULARIES)
        assert plain.pipeline is None
        plain.close()
        durable = self.durable_store(fig1_corpus, tmp_path / "d")
        assert durable.pipeline is not None
        durable.close()

    def test_refresh_writes_one_wal_record_per_swap(self, fig1_corpus,
                                                    tmp_path):
        store = self.durable_store(fig1_corpus, tmp_path / "d")
        store.submit(make_delta(fig1_corpus, seq=1))
        store.submit(make_delta(fig1_corpus, seq=2))
        store.refresh_now()
        assert store.pipeline.applied_seq == 1  # both deltas, one record
        assert "newcomer-01" in store.snapshot.blogger_ids
        assert "newcomer-02" in store.snapshot.blogger_ids
        store.close()

    def test_restart_recovers_the_served_snapshot(self, fig1_corpus,
                                                  tmp_path):
        store = self.durable_store(fig1_corpus, tmp_path / "d")
        store.submit(make_delta(fig1_corpus))
        epoch = store.refresh_now().epoch
        store.close()

        recovered = self.durable_store(fig1_corpus, tmp_path / "d")
        assert recovered.snapshot.epoch == epoch
        assert "newcomer-00" in recovered.snapshot.blogger_ids
        recovered.close()

    def test_restart_after_crash_replays_the_wal(self, fig1_corpus,
                                                 tmp_path):
        from repro.ingest import IngestConfig

        store = SnapshotStore(
            fig1_corpus,
            domain_seed_words=DOMAIN_VOCABULARIES,
            durable_dir=tmp_path / "d",
            # Interval high enough that the delta lives only in the WAL.
            ingest_config=IngestConfig(checkpoint_interval=100),
        )
        store.submit(make_delta(fig1_corpus))
        epoch = store.refresh_now().epoch
        # No close(): simulate a crash; state must come back from WAL.
        recovered = SnapshotStore(
            fig1_corpus,
            domain_seed_words=DOMAIN_VOCABULARIES,
            durable_dir=tmp_path / "d",
            ingest_config=IngestConfig(checkpoint_interval=100),
        )
        assert recovered.snapshot.epoch == epoch
        recovered.close()
