"""Integration tests: instrumentation threaded through the pipeline.

These pin the observable contract documented in docs/observability.md:
the metric names each layer emits, the span tree shape of one analysis,
and the telemetry views (report diagnostics, incremental savings).
"""

import logging

import pytest

from repro.core import (
    CorpusDelta,
    IncrementalAnalyzer,
    InfluenceSolver,
    MassModel,
    MassParameters,
)
from repro.crawler import BlogCrawler, CrawlConfig, SimulatedBlogService
from repro.data import figure1_corpus, figure1_domains
from repro.nlp.naive_bayes import NaiveBayesClassifier
from repro.obs import Instrumentation
from repro.synth import (
    DOMAIN_VOCABULARIES,
    BlogosphereConfig,
    generate_blogosphere,
)
from repro.system import MassSystem


@pytest.fixture()
def instr() -> Instrumentation:
    return Instrumentation.enabled()


@pytest.fixture(scope="module")
def small_corpus_and_truth():
    return generate_blogosphere(
        BlogosphereConfig(num_bloggers=60, posts_per_blogger=5.0), seed=11
    )


class TestSolverInstrumentation:
    def test_solver_metrics_and_span_events(self, instr):
        corpus = figure1_corpus()
        scores = InfluenceSolver(corpus, instrumentation=instr).solve()
        metrics = instr.metrics.as_dict()
        assert metrics["repro_solver_solves_total"]["value"] == 1
        assert (metrics["repro_solver_iterations_total"]["value"]
                == scores.iterations)
        assert (metrics["repro_solver_last_iterations"]["value"]
                == scores.iterations)
        assert metrics["repro_solver_residual"]["value"] == scores.residual
        assert metrics["repro_solver_contraction_bound"]["value"] == (
            pytest.approx(MassParameters().contraction_bound())
        )
        solver_span = instr.tracer.find("solver")
        assert solver_span is not None
        assert len(solver_span.events) == scores.iterations
        assert solver_span.events[-1]["residual"] == scores.residual
        # Residuals contract geometrically, so the trajectory decreases.
        residuals = [event["residual"] for event in solver_span.events]
        assert residuals == sorted(residuals, reverse=True)

    def test_non_convergence_warns_with_bound(self, caplog):
        corpus = figure1_corpus()
        params = MassParameters(max_iterations=1, tolerance=1e-12)
        logging.getLogger("repro").propagate = True
        with caplog.at_level(logging.WARNING, logger="repro.solver"):
            scores = InfluenceSolver(corpus, params).solve(strict=False)
        assert not scores.converged
        (record,) = [r for r in caplog.records
                     if "did not converge" in r.message]
        assert "residual" in record.message
        assert "contraction bound" in record.message

    def test_non_convergence_counter(self, instr):
        corpus = figure1_corpus()
        params = MassParameters(max_iterations=1, tolerance=1e-12)
        InfluenceSolver(corpus, params, instrumentation=instr).solve()
        metrics = instr.metrics.as_dict()
        assert metrics["repro_solver_non_converged_total"]["value"] == 1


class TestAnalyzeTrace:
    def test_analyze_span_decomposes_into_stages(self, instr):
        corpus = figure1_corpus()
        model = MassModel(
            domain_seed_words=figure1_domains(), instrumentation=instr
        )
        report = model.fit(corpus)
        (root,) = instr.tracer.roots
        assert root.name == "analyze"
        child_names = [child.name for child in root.children]
        for stage in ("classify", "quality", "gl", "solver"):
            assert stage in child_names, child_names
        assert report.converged

    def test_corpus_gauges_set(self, instr):
        corpus = figure1_corpus()
        MassModel(
            domain_seed_words=figure1_domains(), instrumentation=instr
        ).fit(corpus)
        metrics = instr.metrics.as_dict()
        stats = corpus.stats()
        assert metrics["repro_corpus_bloggers"]["value"] == stats.num_bloggers
        assert metrics["repro_corpus_posts"]["value"] == stats.num_posts
        assert metrics["repro_corpus_comments"]["value"] == stats.num_comments
        assert metrics["repro_analyze_seconds"]["count"] == 1


class TestCrawlerInstrumentation:
    def test_crawl_counters_and_wave_spans(self, instr,
                                           small_corpus_and_truth):
        corpus, _ = small_corpus_and_truth
        service = SimulatedBlogService(corpus)
        crawler = BlogCrawler(
            service, CrawlConfig(radius=1, num_threads=2),
            instrumentation=instr,
        )
        result = crawler.crawl([corpus.blogger_ids()[0]])
        metrics = instr.metrics.as_dict()
        assert (metrics["repro_crawler_pages_fetched_total"]["value"]
                == len(result.fetched))
        assert metrics["repro_crawler_fetch_failures_total"]["value"] == 0
        assert metrics["repro_crawler_crawl_seconds"]["count"] == 1
        crawl_span = instr.tracer.find("crawl")
        assert crawl_span is not None
        wave_names = [child.name for child in crawl_span.children]
        assert wave_names[0] == "wave-0"
        assert wave_names[-1] == "assemble"
        wave0 = crawl_span.children[0]
        assert wave0.events[0]["spaces"] == 1

    def test_failures_counted(self, instr, small_corpus_and_truth):
        corpus, _ = small_corpus_and_truth
        service = SimulatedBlogService(corpus)
        crawler = BlogCrawler(
            service,
            CrawlConfig(radius=0, max_retries=0),
            instrumentation=instr,
        )
        result = crawler.crawl(
            [corpus.blogger_ids()[0], "no-such-blogger"]
        )
        assert "no-such-blogger" in result.failed
        metrics = instr.metrics.as_dict()
        assert metrics["repro_crawler_fetch_failures_total"]["value"] == 1
        assert metrics["repro_crawler_pages_fetched_total"]["value"] == 1


class TestSystemFacade:
    def test_mass_system_threads_instrumentation(self, instr,
                                                 small_corpus_and_truth):
        corpus, _ = small_corpus_and_truth
        system = MassSystem(
            domain_seed_words=DOMAIN_VOCABULARIES, instrumentation=instr
        )
        assert system.instrumentation is instr
        system.load_dataset(corpus)
        system.analyze()
        metrics = instr.metrics.as_dict()
        assert metrics["repro_solver_solves_total"]["value"] == 1
        assert (metrics["repro_corpus_bloggers"]["value"]
                == len(corpus.bloggers))
        span_names = [root.name for root in instr.tracer.roots]
        assert "load-dataset" in span_names
        assert "analyze" in span_names

    def test_uninstrumented_system_records_nothing(self,
                                                   small_corpus_and_truth):
        corpus, _ = small_corpus_and_truth
        system = MassSystem(domain_seed_words=DOMAIN_VOCABULARIES)
        system.load_dataset(corpus)
        system.analyze()
        assert system.instrumentation.metrics.as_dict() == {}
        assert system.instrumentation.tracer.roots == []


class TestIncrementalInstrumentation:
    def test_warm_start_savings_tracked(self, instr,
                                        small_corpus_and_truth):
        corpus, _ = small_corpus_and_truth
        classifier = NaiveBayesClassifier.from_seed_vocabulary(
            DOMAIN_VOCABULARIES
        )
        analyzer = IncrementalAnalyzer(classifier, instrumentation=instr)
        analyzer.fit(corpus)
        cold = analyzer.last_iterations

        blogger_id = corpus.blogger_ids()[0]
        post = corpus.posts_by(blogger_id)[0]
        from repro.data import Comment

        delta = CorpusDelta(comments=(
            Comment(
                comment_id="obs-new-comment",
                post_id=post.post_id,
                commenter_id=corpus.blogger_ids()[1],
                text="insightful, I agree",
            ),
        ))
        analyzer.apply(delta)
        metrics = instr.metrics.as_dict()
        assert metrics["repro_incremental_deltas_total"]["value"] == 1
        assert metrics["repro_incremental_entities_total"]["value"] == 1
        warm = metrics["repro_incremental_last_iterations"]["value"]
        savings = metrics["repro_incremental_iteration_savings"]["value"]
        assert warm == analyzer.last_iterations
        assert savings == max(0, cold - warm)
        assert instr.tracer.find("incremental-apply") is not None
