"""Tests for the durable ingestion pipeline."""

import threading
import time
from unittest import mock

import pytest

from repro.core import CorpusDelta, IncrementalAnalyzer
from repro.core.incremental import _copy_corpus
from repro.data import Blogger, Comment, Link, Post
from repro.errors import BackpressureError, CorpusError, IngestError
from repro.ingest import IngestConfig, IngestPipeline
from repro.nlp import NaiveBayesClassifier
from repro.obs import Instrumentation
from repro.synth import DOMAIN_VOCABULARIES


@pytest.fixture(scope="module")
def classifier():
    return NaiveBayesClassifier.from_seed_vocabulary(DOMAIN_VOCABULARIES)


def make_pipeline(tmp_path, classifier, **config_kwargs):
    analyzer = IncrementalAnalyzer(classifier)
    return IngestPipeline(
        tmp_path / "durable", analyzer, IngestConfig(**config_kwargs)
    )


def delta(seq, anchor=None):
    """One new blogger and post, optionally linking to ``anchor``."""
    blogger_id = f"pipe-{seq:03d}"
    links = (Link(blogger_id, anchor, 1.0),) if anchor else ()
    return CorpusDelta(
        bloggers=(Blogger(blogger_id, name=f"P{seq}",
                          profile_text="blogs about sports games",
                          joined_day=seq),),
        posts=(Post(f"pipe-post-{seq:03d}", blogger_id,
                    title="game day", body="the stadium game was great",
                    created_day=seq),),
        links=links,
    )


class TestLifecycle:
    def test_open_bootstraps_and_checkpoints(self, tmp_path, classifier,
                                             fig1_corpus):
        pipeline = make_pipeline(tmp_path, classifier)
        report = pipeline.open(fig1_corpus)
        assert pipeline.applied_seq == 0
        # The bootstrap checkpoint is written off the critical path.
        pipeline.wait_recovery_checkpoint()
        assert pipeline.checkpoints.latest_seq() == 0
        assert report is pipeline.report
        # Idempotent per process.
        assert pipeline.open(fig1_corpus) is report
        pipeline.close()

    def test_open_without_state_or_corpus_fails(self, tmp_path, classifier):
        pipeline = make_pipeline(tmp_path, classifier)
        with pytest.raises(IngestError, match="nothing to recover"):
            pipeline.open()

    def test_apply_before_open_fails(self, tmp_path, classifier):
        pipeline = make_pipeline(tmp_path, classifier)
        with pytest.raises(IngestError, match="open"):
            pipeline.apply(delta(1))

    def test_close_is_reentrant(self, tmp_path, classifier, fig1_corpus):
        pipeline = make_pipeline(tmp_path, classifier)
        pipeline.open(fig1_corpus)
        pipeline.close()
        pipeline.close()

    def test_recovery_checkpoint_is_off_the_open_path(self, tmp_path,
                                                      classifier,
                                                      fig1_corpus):
        """open() returns live state while the fresh checkpoint is
        still being written in the background."""
        from repro.core import IncrementalAnalyzer
        from repro.ingest.checkpoint import CheckpointManager

        first = make_pipeline(tmp_path, classifier, checkpoint_interval=100)
        first.open(fig1_corpus)
        first.wait_recovery_checkpoint()
        first.apply(delta(1))
        first.apply(delta(2))
        # Abandon without close(): seq 1-2 live only in the WAL, so the
        # next open() replays them and owes a fresh checkpoint.

        release = threading.Event()
        real_write = CheckpointManager.write

        def gated_write(manager, *args, **kwargs):
            assert release.wait(timeout=10)
            return real_write(manager, *args, **kwargs)

        second = IngestPipeline(
            tmp_path / "durable", IncrementalAnalyzer(classifier),
            IngestConfig(checkpoint_interval=100),
        )
        with mock.patch.object(CheckpointManager, "write", gated_write):
            report = second.open()  # returns with the write still gated
            assert second.applied_seq == 2
            assert "pipe-002" in report.corpus
            assert second.checkpoints.latest_seq() == 0  # still the old one
            release.set()
            second.wait_recovery_checkpoint()
        assert second.checkpoints.latest_seq() == 2
        second.close()


class TestDurableApply:
    def test_apply_advances_seq_and_logs(self, tmp_path, classifier,
                                         fig1_corpus):
        pipeline = make_pipeline(tmp_path, classifier)
        pipeline.open(fig1_corpus)
        for seq in (1, 2, 3):
            pipeline.apply(delta(seq))
            assert pipeline.applied_seq == seq
            assert pipeline.wal.last_seq == seq
        assert "pipe-003" in pipeline.report.corpus
        pipeline.close()

    def test_matches_direct_analyzer(self, tmp_path, classifier,
                                     fig1_corpus):
        pipeline = make_pipeline(tmp_path, classifier)
        pipeline.open(fig1_corpus)
        for seq in (1, 2):
            pipeline.apply(delta(seq))
        direct = IncrementalAnalyzer(classifier)
        direct.fit(fig1_corpus)
        for seq in (1, 2):
            direct.apply(delta(seq))
        assert pipeline.report.general_scores() == \
            direct.report.general_scores()
        pipeline.close()

    def test_poison_delta_never_reaches_the_wal(self, tmp_path, classifier,
                                                fig1_corpus):
        pipeline = make_pipeline(tmp_path, classifier)
        pipeline.open(fig1_corpus)
        poison = CorpusDelta(comments=(
            Comment("bad", "no-such-post", "blogger-01", text="x",
                    created_day=1),
        ))
        before = pipeline.wal.last_seq
        with pytest.raises(CorpusError, match="unknown post"):
            pipeline.apply(poison)
        assert pipeline.wal.last_seq == before
        assert pipeline.applied_seq == 0
        pipeline.close()

    def test_periodic_checkpoint_and_wal_truncation(self, tmp_path,
                                                    classifier, fig1_corpus):
        pipeline = make_pipeline(tmp_path, classifier, checkpoint_interval=2)
        pipeline.open(fig1_corpus)
        for seq in range(1, 5):
            pipeline.apply(delta(seq))
        assert pipeline.checkpoints.latest_seq() == 4
        # Segments fully covered by the checkpoint were deleted.
        audit = pipeline.diagnostics()["seq_audit"]
        assert audit["contiguous"]
        assert audit["records_after_checkpoint"] == 0
        pipeline.close()

    def test_close_seals_a_final_checkpoint(self, tmp_path, classifier,
                                            fig1_corpus):
        pipeline = make_pipeline(tmp_path, classifier,
                                 checkpoint_interval=100)
        pipeline.open(fig1_corpus)
        pipeline.wait_recovery_checkpoint()
        pipeline.apply(delta(1))
        assert pipeline.checkpoints.latest_seq() == 0
        pipeline.close()
        assert pipeline.checkpoints.latest_seq() == 1


class TestQueue:
    def test_drain_coalesces_to_one_wal_record(self, tmp_path, classifier,
                                               fig1_corpus):
        pipeline = make_pipeline(tmp_path, classifier)
        pipeline.open(fig1_corpus)
        for seq in (1, 2, 3):
            pipeline.submit(delta(seq))
        assert pipeline.pending == 3
        pipeline.drain()
        assert pipeline.pending == 0
        assert pipeline.applied_seq == 1  # ONE merged batch, ONE record
        assert pipeline.wal.last_seq == 1
        assert "pipe-003" in pipeline.report.corpus
        pipeline.close()

    def test_empty_submit_dropped_and_empty_drain_noop(self, tmp_path,
                                                       classifier,
                                                       fig1_corpus):
        pipeline = make_pipeline(tmp_path, classifier)
        report = pipeline.open(fig1_corpus)
        pipeline.submit(CorpusDelta())
        assert pipeline.pending == 0
        assert pipeline.drain() is report
        pipeline.close()

    def test_shed_backpressure(self, tmp_path, classifier, fig1_corpus):
        pipeline = make_pipeline(tmp_path, classifier, queue_capacity=1,
                                 backpressure="shed")
        pipeline.open(fig1_corpus)
        pipeline.submit(delta(1))
        before = pipeline.wal.last_seq
        with pytest.raises(BackpressureError, match="full"):
            pipeline.submit(delta(2))
        assert pipeline.wal.last_seq == before  # shed delta never logged
        pipeline.drain()
        pipeline.submit(delta(2))  # room again after the drain
        pipeline.close()

    def test_block_backpressure_waits_for_room(self, tmp_path, classifier,
                                               fig1_corpus):
        import threading

        pipeline = make_pipeline(tmp_path, classifier, queue_capacity=1,
                                 backpressure="block")
        pipeline.open(fig1_corpus)
        pipeline.submit(delta(1))
        release = threading.Timer(0.2, pipeline.drain)
        release.start()
        started = time.monotonic()
        pipeline.submit(delta(2))  # blocks until the timed drain runs
        assert time.monotonic() - started >= 0.15
        release.join()
        pipeline.drain()
        assert "pipe-002" in pipeline.report.corpus
        pipeline.close()

    def test_background_drainer(self, tmp_path, classifier, fig1_corpus):
        pipeline = make_pipeline(tmp_path, classifier)
        pipeline.open(fig1_corpus)
        pipeline.start()
        pipeline.submit(delta(1))
        deadline = time.monotonic() + 5.0
        while pipeline.pending and time.monotonic() < deadline:
            time.sleep(0.01)
        pipeline.close()
        assert "pipe-001" in pipeline.report.corpus
        assert pipeline.applied_seq >= 1


class TestCrawlIngestion:
    def test_ingest_crawl_applies_the_difference(self, tmp_path, classifier,
                                                 fig1_corpus):
        from repro.crawler import SimulatedBlogService

        grown = _copy_corpus(fig1_corpus)
        fresh = delta(77, anchor=fig1_corpus.blogger_ids()[0])
        grown.extend(bloggers=fresh.bloggers, posts=fresh.posts,
                     comments=fresh.comments, links=fresh.links)
        service = SimulatedBlogService(grown.freeze())

        pipeline = make_pipeline(tmp_path, classifier)
        pipeline.open(fig1_corpus)
        report = pipeline.ingest_crawl(
            service, seeds=[fig1_corpus.blogger_ids()[0], "pipe-077"]
        )
        assert "pipe-077" in report.corpus
        assert pipeline.applied_seq == 1
        # A second identical crawl finds nothing new.
        assert pipeline.ingest_crawl(
            service, seeds=[fig1_corpus.blogger_ids()[0], "pipe-077"]
        ) is pipeline.report
        assert pipeline.applied_seq == 1
        pipeline.close()


class TestDiagnostics:
    def test_seq_audit_shape(self, tmp_path, classifier, fig1_corpus):
        pipeline = make_pipeline(tmp_path, classifier,
                                 checkpoint_interval=100)
        pipeline.open(fig1_corpus)
        pipeline.apply(delta(1))
        pipeline.apply(delta(2))
        diag = pipeline.diagnostics()
        assert diag["applied_seq"] == 2
        assert diag["checkpoint_seq"] == 0
        assert diag["wal_last_seq"] == 2
        audit = diag["seq_audit"]
        assert audit == {
            "contiguous": True,
            "records_after_checkpoint": 2,
            "no_double_apply": True,
            "no_loss": True,
        }
        pipeline.close()

    def test_ingest_metrics_registered(self, tmp_path, classifier,
                                       fig1_corpus):
        instr = Instrumentation.enabled()
        analyzer = IncrementalAnalyzer(classifier, instrumentation=instr)
        pipeline = IngestPipeline(
            tmp_path / "durable", analyzer, IngestConfig(),
            instrumentation=instr,
        )
        pipeline.open(fig1_corpus)
        pipeline.submit(delta(1))
        pipeline.drain()
        pipeline.close()
        names = set(instr.metrics.names())
        for expected in (
            "repro_ingest_wal_appends_total",
            "repro_ingest_wal_fsyncs_total",
            "repro_ingest_checkpoints_total",
            "repro_ingest_submitted_total",
            "repro_ingest_batches_total",
            "repro_ingest_queue_depth",
            "repro_ingest_applied_seq",
            "repro_ingest_recovery_seconds",
        ):
            assert expected in names
        pipeline.close()
