"""Shared fixtures for the test suite.

Expensive artifacts (generated blogospheres, fitted reports) are
session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.core import MassModel


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden fixtures under tests/golden/ from the "
             "current model output instead of asserting against them",
    )


@pytest.fixture()
def update_golden(request: pytest.FixtureRequest) -> bool:
    """Whether this run should regenerate golden fixtures."""
    return bool(request.config.getoption("--update-golden"))
from repro.data import BlogCorpus, CorpusBuilder, figure1_corpus, figure1_domains
from repro.synth import (
    DOMAIN_VOCABULARIES,
    BlogosphereConfig,
    generate_blogosphere,
)


@pytest.fixture()
def tiny_corpus() -> BlogCorpus:
    """Three bloggers, two posts, two comments, two links (mutable copy)."""
    builder = CorpusBuilder()
    builder.blogger("alice").blogger("bob").blogger("carol")
    post_a = builder.post("alice", title="On gardens",
                          body="roses and tulips in the garden " * 5)
    post_b = builder.post("bob", body="short note")
    builder.comment(post_a.post_id, "bob", text="I agree, lovely flowers")
    builder.comment(post_b.post_id, "carol", text="this is wrong and boring")
    builder.link("bob", "alice").link("carol", "alice")
    return builder.build()


@pytest.fixture(scope="session")
def fig1_corpus() -> BlogCorpus:
    """The paper's Fig. 1 nine-blogger sample (session-scoped)."""
    return figure1_corpus()


@pytest.fixture(scope="session")
def fig1_seed_words() -> dict[str, list[str]]:
    """Seed vocabularies for the two Fig. 1 domains."""
    return figure1_domains()


@pytest.fixture(scope="session")
def small_blogosphere():
    """A 120-blogger synthetic blogosphere with ground truth."""
    return generate_blogosphere(
        BlogosphereConfig(num_bloggers=120, posts_per_blogger=5), seed=7
    )


@pytest.fixture(scope="session")
def medium_blogosphere():
    """A 400-blogger blogosphere for integration-grade assertions."""
    return generate_blogosphere(
        BlogosphereConfig(num_bloggers=400, posts_per_blogger=7), seed=13
    )


@pytest.fixture(scope="session")
def medium_report(medium_blogosphere):
    """A fitted MASS report over the medium blogosphere."""
    corpus, _ = medium_blogosphere
    model = MassModel(domain_seed_words=DOMAIN_VOCABULARIES)
    return model.fit(corpus)


@pytest.fixture(scope="session")
def medium_model_and_report(medium_blogosphere):
    """(model, report) pair so app engines can reuse the classifier."""
    corpus, _ = medium_blogosphere
    model = MassModel(domain_seed_words=DOMAIN_VOCABULARIES)
    report = model.fit(corpus)
    return model, report
