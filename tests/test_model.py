"""Unit tests for the MassModel facade (classifier resolution, fitting)."""

import pytest

from repro.core import MassModel, MassParameters
from repro.errors import ClassifierError, ParameterError
from repro.nlp import NaiveBayesClassifier


class TestClassifierResolution:
    def test_seed_words_mode(self, fig1_corpus, fig1_seed_words):
        model = MassModel(domain_seed_words=fig1_seed_words)
        report = model.fit(fig1_corpus)
        assert set(report.domains) == {"Computer", "Economics"}
        assert model.classifier is not None

    def test_pretrained_classifier_mode(self, fig1_corpus):
        classifier = NaiveBayesClassifier().fit(
            ["programming code software", "economy markets stocks"],
            ["Computer", "Economics"],
        )
        report = MassModel(classifier=classifier).fit(fig1_corpus)
        assert set(report.domains) == {"Computer", "Economics"}

    def test_training_data_mode(self, fig1_corpus):
        report = MassModel().fit(
            fig1_corpus,
            train_texts=["programming code software compiler",
                         "economy markets stocks inflation"],
            train_labels=["Computer", "Economics"],
        )
        assert set(report.domains) == {"Computer", "Economics"}

    def test_no_domain_model_rejected(self, fig1_corpus):
        with pytest.raises(ClassifierError, match="no domain model"):
            MassModel().fit(fig1_corpus)

    def test_both_classifier_and_training_rejected(self, fig1_corpus):
        classifier = NaiveBayesClassifier().fit(
            ["a b", "c d"], ["X", "Y"]
        )
        with pytest.raises(ParameterError, match="only one"):
            MassModel(classifier=classifier).fit(
                fig1_corpus, train_texts=["x"], train_labels=["X"]
            )

    def test_texts_without_labels_rejected(self, fig1_corpus,
                                           fig1_seed_words):
        with pytest.raises(ParameterError, match="together"):
            MassModel(domain_seed_words=fig1_seed_words).fit(
                fig1_corpus, train_texts=["x"]
            )


class TestFitting:
    def test_custom_params_flow_through(self, fig1_corpus, fig1_seed_words):
        params = MassParameters(alpha=1.0)
        report = MassModel(
            params=params, domain_seed_words=fig1_seed_words
        ).fit(fig1_corpus)
        assert report.params.alpha == 1.0

    def test_unfrozen_corpus_validated(self, fig1_seed_words):
        from repro.data import CorpusBuilder

        builder = CorpusBuilder()
        builder.blogger("a")
        builder.post("a", body="programming code software")
        corpus = builder.build(freeze=False)
        report = MassModel(domain_seed_words=fig1_seed_words).fit(corpus)
        assert report.top_influencers(1)[0][0] == "a"

    def test_deterministic_across_fits(self, fig1_corpus, fig1_seed_words):
        report1 = MassModel(domain_seed_words=fig1_seed_words).fit(fig1_corpus)
        report2 = MassModel(domain_seed_words=fig1_seed_words).fit(fig1_corpus)
        assert report1.general_scores() == report2.general_scores()
        assert report1.ranking("Computer") == report2.ranking("Computer")
