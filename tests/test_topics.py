"""Unit tests for automatic domain discovery (spherical k-means)."""

import pytest

from repro.errors import ClassifierError
from repro.nlp import discover_domains

SPORTS = [
    "stadium match league game goal team",
    "marathon athlete team game stadium medal",
    "football team coach game match league",
]
ART = [
    "painting canvas gallery sculpture art museum",
    "museum portrait painting brush palette art",
    "gallery sculpture canvas art painting exhibition",
]
ECON = [
    "market stocks inflation bank trade",
    "budget deficit tax market trade bank",
    "mortgage loan bank stocks dividend market",
]
TEXTS = SPORTS + ART + ECON


class TestDiscovery:
    def test_three_clusters_separate_topics(self):
        result = discover_domains(TEXTS, k=3, seed=0)
        assert result.k == 3
        # Documents of the same topic land in the same cluster.
        for group in (range(0, 3), range(3, 6), range(6, 9)):
            clusters = {result.assignments[i] for i in group}
            assert len(clusters) == 1, result.assignments
        # And the three groups land in three different clusters.
        assert len({result.assignments[0], result.assignments[3],
                    result.assignments[6]}) == 3

    def test_names_derived_from_content(self):
        result = discover_domains(TEXTS, k=3, seed=0)
        sports_cluster = result.assignments[0]
        name = result.names[sports_cluster]
        sports_words = set(" ".join(SPORTS).split())
        assert any(part in sports_words for part in name.split("-"))

    def test_deterministic(self):
        a = discover_domains(TEXTS, k=3, seed=5)
        b = discover_domains(TEXTS, k=3, seed=5)
        assert a.assignments == b.assignments
        assert a.names == b.names

    def test_seed_changes_initialization(self):
        # Different seeds may converge to the same partition on easy
        # data, but must at least run without error.
        discover_domains(TEXTS, k=3, seed=1)
        discover_domains(TEXTS, k=3, seed=2)

    def test_inertia_in_unit_range(self):
        result = discover_domains(TEXTS, k=3, seed=0)
        assert 0.0 <= result.inertia <= 1.0 + 1e-9

    def test_cluster_sizes_sum_to_documents(self):
        result = discover_domains(TEXTS, k=3, seed=0)
        assert sum(result.cluster_sizes()) == len(TEXTS)

    def test_names_unique(self):
        result = discover_domains(TEXTS + TEXTS, k=4, seed=0)
        assert len(set(result.names)) == len(result.names)


class TestSeedVocabularies:
    def test_plug_into_mass_model(self):
        result = discover_domains(TEXTS, k=3, seed=0)
        vocabularies = result.seed_vocabularies(terms_per_domain=10)
        assert set(vocabularies) == set(result.names)
        assert all(1 <= len(words) <= 10 for words in vocabularies.values())

        from repro.nlp import NaiveBayesClassifier

        classifier = NaiveBayesClassifier.from_seed_vocabulary(vocabularies)
        sports_cluster = result.names[result.assignments[0]]
        assert classifier.predict("an athlete at the stadium") == \
            sports_cluster

    def test_bad_terms_per_domain(self):
        result = discover_domains(TEXTS, k=3, seed=0)
        with pytest.raises(ClassifierError):
            result.seed_vocabularies(terms_per_domain=0)


class TestValidation:
    def test_k_too_small(self):
        with pytest.raises(ClassifierError, match="k must be"):
            discover_domains(TEXTS, k=1)

    def test_no_texts(self):
        with pytest.raises(ClassifierError, match="zero texts"):
            discover_domains([], k=2)

    def test_not_enough_nonempty_texts(self):
        with pytest.raises(ClassifierError, match="non-empty"):
            discover_domains(["only one usable doc", "", "  "], k=2)

    def test_bad_max_iterations(self):
        with pytest.raises(ClassifierError, match="max_iterations"):
            discover_domains(TEXTS, k=2, max_iterations=0)

    def test_empty_documents_still_assigned(self):
        result = discover_domains(TEXTS + [""], k=3, seed=0)
        assert len(result.assignments) == len(TEXTS) + 1
