"""Tests for incremental re-analysis with warm starts."""

import pytest

from repro.core import (
    CorpusDelta,
    IncrementalAnalyzer,
    MassModel,
    MassParameters,
)
from repro.data import Blogger, Comment, Link, Post
from repro.errors import ReproError
from repro.nlp import NaiveBayesClassifier
from repro.synth import DOMAIN_VOCABULARIES


@pytest.fixture(scope="module")
def classifier():
    return NaiveBayesClassifier.from_seed_vocabulary(DOMAIN_VOCABULARIES)


def make_delta(corpus, seq=0):
    """A small realistic delta: one new blogger, post, comment, link."""
    existing = corpus.blogger_ids()[0]
    new_id = f"newcomer-{seq:02d}"
    post = Post(f"newpost-{seq:02d}", new_id,
                body="a new post about the marathon stadium game " * 4,
                created_day=300)
    comment = Comment(f"newcomment-{seq:02d}", post.post_id, existing,
                      text="I agree, a wonderful read", created_day=301)
    return CorpusDelta(
        bloggers=[Blogger(new_id)],
        posts=[post],
        comments=[comment],
        links=[Link(existing, new_id)],
    )


class TestLifecycle:
    def test_report_before_fit_rejected(self, classifier):
        analyzer = IncrementalAnalyzer(classifier)
        with pytest.raises(ReproError, match="no analysis yet"):
            analyzer.report
        with pytest.raises(ReproError, match="call fit"):
            analyzer.apply(CorpusDelta())

    def test_fit_matches_batch_model(self, classifier, small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        incremental = analyzer.fit(corpus)
        batch = MassModel(classifier=classifier).fit(corpus)
        assert incremental.general_scores() == batch.general_scores()

    def test_empty_delta_is_noop(self, classifier, small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        report = analyzer.fit(corpus)
        assert analyzer.apply(CorpusDelta()) is report


class TestApply:
    def test_delta_entities_visible(self, classifier, small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        analyzer.fit(corpus)
        report = analyzer.apply(make_delta(corpus))
        assert "newcomer-00" in report.corpus
        assert "newcomer-00" in report.general_scores()
        # Original corpus untouched.
        assert "newcomer-00" not in corpus

    def test_incremental_equals_full_reanalysis(self, classifier,
                                                small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        analyzer.fit(corpus)
        incremental = analyzer.apply(make_delta(corpus))

        # Build the same grown corpus from scratch and batch-analyze.
        from repro.core.incremental import _copy_corpus

        grown = _copy_corpus(corpus)
        delta = make_delta(corpus)
        grown.extend(bloggers=delta.bloggers, posts=delta.posts,
                     comments=delta.comments, links=delta.links)
        grown.freeze()
        batch = MassModel(classifier=classifier).fit(grown)

        for blogger_id, value in batch.general_scores().items():
            assert incremental.general_scores()[blogger_id] == pytest.approx(
                value, abs=1e-8
            )

    def test_warm_start_saves_iterations(self, classifier,
                                         small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        analyzer.fit(corpus)
        cold_iterations = analyzer.last_iterations
        analyzer.apply(make_delta(corpus))
        warm_iterations = analyzer.last_iterations
        assert warm_iterations < cold_iterations

    def test_successive_deltas(self, classifier, small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        analyzer.fit(corpus)
        for seq in range(3):
            report = analyzer.apply(make_delta(analyzer.report.corpus, seq))
        assert len(report.corpus) == len(corpus) + 3

    def test_comment_delta_shifts_influence(self, classifier,
                                            small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        before = analyzer.fit(corpus)
        # Shower an author with fresh positive comments.
        target_post = next(iter(sorted(corpus.posts)))
        author = corpus.post(target_post).author_id
        commenters = [b for b in corpus.blogger_ids() if b != author][:5]
        delta = CorpusDelta(
            comments=[
                Comment(f"extra-{i}", target_post, commenter,
                        text="excellent, I agree and support this")
                for i, commenter in enumerate(commenters)
            ]
        )
        before_score = before.general_scores()[author]
        after = analyzer.apply(delta)
        assert after.general_scores()[author] > before_score


class TestSparseWarmStart:
    """Dirty-row re-assembly under the sparse backend.

    The incremental analyzer's AssemblyCache must hand back compiled
    arrays that are indistinguishable from a cold compile — the scores
    after a delta have to match a from-scratch analysis of the grown
    corpus, while re-assembling strictly fewer rows than a cold pass.
    """

    def test_refresh_engages_and_matches_cold_solve(self, classifier,
                                                    small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(
            classifier, MassParameters(solver_backend="sparse")
        )
        analyzer.fit(corpus)
        assert analyzer.assembly_cache.last_mode == "cold"

        incremental = analyzer.apply(make_delta(corpus))
        cache = analyzer.assembly_cache
        assert cache.last_mode == "refresh"
        assert 0 < cache.last_dirty_rows < len(incremental.corpus.bloggers)

        from repro.core.incremental import _copy_corpus

        grown = _copy_corpus(corpus)
        delta = make_delta(corpus)
        grown.extend(bloggers=delta.bloggers, posts=delta.posts,
                     comments=delta.comments, links=delta.links)
        grown.freeze()
        cold = MassModel(
            classifier=classifier,
            params=MassParameters(solver_backend="sparse"),
        ).fit(grown)
        for blogger_id, value in cold.general_scores().items():
            assert incremental.general_scores()[blogger_id] == pytest.approx(
                value, abs=1e-9
            )

    def test_successive_refreshes_stay_consistent(self, classifier,
                                                  small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(
            classifier, MassParameters(solver_backend="sparse")
        )
        analyzer.fit(corpus)
        for seq in range(3):
            report = analyzer.apply(make_delta(analyzer.report.corpus, seq))
            assert analyzer.assembly_cache.last_mode == "refresh"
        cold = MassModel(
            classifier=classifier,
            params=MassParameters(solver_backend="sparse"),
        ).fit(report.corpus)
        for blogger_id, value in cold.general_scores().items():
            assert report.general_scores()[blogger_id] == pytest.approx(
                value, abs=1e-9
            )

    def test_sentiment_cache_grows_with_corpus(self, classifier,
                                               small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(
            classifier, MassParameters(solver_backend="sparse")
        )
        analyzer.fit(corpus)
        before = len(analyzer.assembly_cache.sentiment_cache)
        analyzer.apply(make_delta(corpus))
        after = len(analyzer.assembly_cache.sentiment_cache)
        assert after == before + 1  # exactly the one new comment

    def test_reference_backend_still_works_incrementally(
            self, classifier, small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(
            classifier, MassParameters(solver_backend="reference")
        )
        analyzer.fit(corpus)
        report = analyzer.apply(make_delta(corpus))
        assert "newcomer-00" in report.general_scores()
        assert report.scores.backend == "reference"


class TestDelta:
    def test_size_and_empty(self):
        assert CorpusDelta().is_empty()
        assert CorpusDelta().size() == 0
        delta = CorpusDelta(bloggers=[Blogger("x")])
        assert not delta.is_empty()
        assert delta.size() == 1


class TestMerge:
    def test_merge_preserves_arrival_order(self):
        first = CorpusDelta(bloggers=[Blogger("a")],
                            links=[Link("a", "a2", 1.0)])
        second = CorpusDelta(bloggers=[Blogger("b"), Blogger("a2")])
        merged = CorpusDelta.merge(first, second)
        assert [b.blogger_id for b in merged.bloggers] == ["a", "b", "a2"]
        assert merged.size() == first.size() + second.size()

    def test_merge_of_nothing_is_empty(self):
        assert CorpusDelta.merge().is_empty()
        assert CorpusDelta.merge(CorpusDelta(), CorpusDelta()).is_empty()

    @pytest.mark.parametrize("kind,delta", [
        ("blogger", CorpusDelta(bloggers=[Blogger("dup")])),
        ("post", CorpusDelta(posts=[Post("dup", "x", created_day=1)])),
        ("comment", CorpusDelta(
            comments=[Comment("dup", "p", "x", created_day=1)])),
    ])
    def test_merge_rejects_duplicate_ids(self, kind, delta):
        from repro.errors import CorpusError

        with pytest.raises(CorpusError, match=f"duplicate {kind} id 'dup'"):
            CorpusDelta.merge(delta, delta)

    def test_parallel_links_merge_without_conflict(self):
        first = CorpusDelta(links=[Link("a", "b", 1.0)])
        second = CorpusDelta(links=[Link("a", "b", 2.0)])
        merged = CorpusDelta.merge(first, second)
        assert len(merged.links) == 2  # corpus adds weights on apply

    def test_merged_apply_equals_sequential_applies(self, classifier,
                                                    small_blogosphere):
        """One merged apply converges to the same fixed point.

        Only to solver precision, not bit-exactly: the warm-start path
        differs, and the iteration cutoff freezes different final ulps.
        (This is why the durable pipeline logs one WAL record per
        *merged* batch — replay must re-walk the same path.)
        """
        corpus, _ = small_blogosphere
        sequential = IncrementalAnalyzer(classifier)
        sequential.fit(corpus)
        deltas = [make_delta(corpus, seq) for seq in range(3)]
        for delta in deltas:
            sequential.apply(delta)

        merged = IncrementalAnalyzer(classifier)
        merged.fit(corpus)
        merged.apply(CorpusDelta.merge(*deltas))
        expected = sequential.report.general_scores()
        actual = merged.report.general_scores()
        assert actual.keys() == expected.keys()
        for blogger_id, score in expected.items():
            assert actual[blogger_id] == pytest.approx(score, rel=1e-9)


class TestBetween:
    def test_between_finds_the_difference(self, classifier,
                                          small_blogosphere):
        from repro.core.incremental import _copy_corpus

        corpus, _ = small_blogosphere
        grown = _copy_corpus(corpus)
        delta = make_delta(corpus)
        grown.extend(bloggers=delta.bloggers, posts=delta.posts,
                     comments=delta.comments, links=delta.links)
        diff = CorpusDelta.between(corpus, grown)
        assert [b.blogger_id for b in diff.bloggers] == ["newcomer-00"]
        assert [p.post_id for p in diff.posts] == ["newpost-00"]
        assert [c.comment_id for c in diff.comments] == ["newcomment-00"]
        assert len(diff.links) == 1

    def test_between_identical_corpora_is_empty(self, small_blogosphere):
        corpus, _ = small_blogosphere
        assert CorpusDelta.between(corpus, corpus).is_empty()

    def test_between_rejects_shrinkage_when_strict(self, tiny_corpus):
        from repro.core.incremental import _copy_corpus
        from repro.errors import CorpusError

        grown = _copy_corpus(tiny_corpus)
        delta = CorpusDelta(bloggers=[Blogger("dave")])
        grown.extend(bloggers=delta.bloggers)
        with pytest.raises(CorpusError, match="missing blogger"):
            CorpusDelta.between(grown, tiny_corpus)
        # The partial-view mode shrugs instead.
        assert CorpusDelta.between(grown, tiny_corpus,
                                   strict=False).is_empty()

    def test_between_carries_link_weight_growth(self, tiny_corpus):
        from repro.core.incremental import _copy_corpus

        grown = _copy_corpus(tiny_corpus)
        grown.extend(links=[Link("bob", "alice", 2.5)])  # parallel link
        diff = CorpusDelta.between(tiny_corpus, grown)
        assert len(diff.links) == 1
        link = diff.links[0]
        assert (link.source_id, link.target_id) == ("bob", "alice")
        assert link.weight == 2.5


class TestValidateDelta:
    def test_validate_before_fit_rejected(self, classifier):
        analyzer = IncrementalAnalyzer(classifier)
        with pytest.raises(ReproError, match="call fit"):
            analyzer.validate_delta(CorpusDelta())

    def test_valid_delta_passes_without_mutation(self, classifier,
                                                 small_blogosphere):
        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        analyzer.fit(corpus)
        delta = make_delta(corpus)
        analyzer.validate_delta(delta)
        assert "newcomer-00" not in analyzer.report.corpus

    @pytest.mark.parametrize("bad,match", [
        (lambda c: CorpusDelta(bloggers=[Blogger(c.blogger_ids()[0])]),
         "duplicate blogger"),
        (lambda c: CorpusDelta(
            posts=[Post("px", "ghost", created_day=1)]),
         "unknown blogger"),
        (lambda c: CorpusDelta(
            comments=[Comment("cx", "no-post", c.blogger_ids()[0],
                              created_day=1)]),
         "unknown post"),
        (lambda c: CorpusDelta(links=[Link(c.blogger_ids()[0], "ghost")]),
         "unknown blogger"),
    ])
    def test_invalid_delta_rejected_atomically(self, classifier,
                                               small_blogosphere, bad,
                                               match):
        from repro.errors import CorpusError

        corpus, _ = small_blogosphere
        analyzer = IncrementalAnalyzer(classifier)
        before = analyzer.fit(corpus)
        with pytest.raises(CorpusError, match=match):
            analyzer.apply(bad(corpus))
        # Atomic apply-or-reject: state is untouched.
        assert analyzer.report is before


class TestRestore:
    def test_restore_resumes_from_saved_report(self, classifier,
                                               small_blogosphere, tmp_path):
        from repro.core.report_io import load_report, save_report

        corpus, _ = small_blogosphere
        original = IncrementalAnalyzer(classifier)
        original.fit(corpus)
        save_report(original.report, tmp_path / "report.xml")

        restored = IncrementalAnalyzer(classifier)
        restored.restore(corpus, load_report(tmp_path / "report.xml",
                                             corpus))
        a = original.apply(make_delta(corpus))
        b = restored.apply(make_delta(corpus))
        assert a.general_scores() == b.general_scores()
        assert a.scores.iterations == b.scores.iterations

    def test_restore_rejects_foreign_params(self, classifier,
                                            small_blogosphere):
        corpus, _ = small_blogosphere
        original = IncrementalAnalyzer(
            classifier, MassParameters(alpha=0.9))
        original.fit(corpus)
        other = IncrementalAnalyzer(classifier, MassParameters(alpha=0.1))
        with pytest.raises(ReproError, match="different parameters"):
            other.restore(corpus, original.report)
