"""Load harness over the multi-process tier: sustained concurrency,
zero torn reads under live refresh, p99 and error budgets, 429 legs.

This is the serving tier's endurance test: the reusable generator in
``tests/loadgen.py`` drives a mixed keep-alive workload against a
2-worker cluster while the master refreshes snapshots underneath it.
Every recorded response body is then replayed against per-epoch ground
truth — a response that mixes two epochs' analyses matches neither, so
exact equality is the torn-read detector.
"""

import threading
import time

import pytest

from repro.core import CorpusDelta, MassParameters, top_k
from repro.data import Blogger, Comment, Link, Post
from repro.serve import (
    TENANT_HEADER,
    ClusterConfig,
    ServiceConfig,
    ServingCluster,
    SnapshotStore,
    cluster_supported,
)
from tests.loadgen import LoadReport, RequestSpec, run_load

pytestmark = pytest.mark.skipif(
    not cluster_supported(),
    reason="pre-fork tier needs fork and SO_REUSEPORT",
)

WEIGHTS = {"Sports": 0.6, "Art": 0.4}

#: Generous client-observed ceiling: the contract is "bounded during
#: refresh", not a latency benchmark — CI boxes are noisy.
P99_CEILING_SECONDS = 1.0


def _make_delta(seq):
    anchor = "blogger-0000"
    new_id = f"load-{seq:02d}"
    post = Post(f"loadpost-{seq:02d}", new_id,
                body="fresh thoughts on the stadium marathon game " * 3,
                created_day=240 + seq)
    comment = Comment(f"loadcomment-{seq:02d}", post.post_id, anchor,
                      text="what a wonderful insightful read",
                      created_day=241 + seq)
    return CorpusDelta(
        bloggers=[Blogger(new_id)],
        posts=[post],
        comments=[comment],
        links=[Link(anchor, new_id)],
    )


def _expected_answers(report):
    """Ground-truth answers, keyed by the query mix below."""
    canonical = dict(sorted(WEIGHTS.items()))
    return {
        "top": tuple(report.top_influencers(5)),
        "top_sports": tuple(report.top_influencers(3, "Sports")),
        "weighted": tuple(top_k(
            report.domain_influence.weighted_scores(canonical), 5
        )),
    }


def _mix():
    """The mixed workload: singles, a POST query, and a batch."""
    return [
        RequestSpec(path="/top?k=5"),
        RequestSpec(path="/top?k=3&domain=Sports"),
        RequestSpec(path="/query", method="POST",
                    body={"weights": WEIGHTS, "k": 5}),
        RequestSpec(path="/query/batch", method="POST", queries=3,
                    body={"queries": [
                        {"kind": "top", "k": 5},
                        {"kind": "top", "k": 3, "domain": "Sports"},
                        {"kind": "query", "weights": WEIGHTS, "k": 5},
                    ]}),
    ]


def _rows(body):
    return tuple(
        (row["blogger_id"], row["score"]) for row in body["results"]
    )


def _check_against_truth(kind, body, truth):
    """One response must exactly match one epoch's batch answers."""
    epoch = body["epoch"]
    assert epoch in truth, \
        f"response stamped with never-existing epoch {epoch[:12]}"
    assert _rows(body) == truth[epoch][kind][:len(body["results"])]


class TestLoadUnderRefresh:
    @pytest.fixture()
    def rig(self, small_blogosphere):
        corpus, _ = small_blogosphere
        store = SnapshotStore(corpus, params=MassParameters())
        cluster = ServingCluster(
            store,
            ServiceConfig(port=0, max_inflight=32),
            ClusterConfig(workers=2),
        )
        with store, cluster:
            cluster.wait_ready()
            yield store, cluster

    def test_sustained_load_with_concurrent_refresh(self, rig):
        store, cluster = rig
        truth = {store.snapshot.epoch: _expected_answers(store.report)}
        refresher_failures = []
        stop_refreshing = threading.Event()

        def refresher():
            seq = 0
            try:
                while not stop_refreshing.is_set():
                    store.submit(_make_delta(seq))
                    fresh = store.refresh_now()
                    truth[fresh.epoch] = _expected_answers(store.report)
                    seq += 1
                    time.sleep(0.05)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                refresher_failures.append(exc)

        refresh_thread = threading.Thread(target=refresher, daemon=True)
        refresh_thread.start()
        try:
            report = run_load(
                cluster.url, _mix(), concurrency=4, duration=2.0,
                keep_alive=True, record_bodies=True,
            )
        finally:
            stop_refreshing.set()
            refresh_thread.join(timeout=30)
        assert not refresher_failures, refresher_failures

        # Error budget: nothing but 200s, no transport failures.
        assert report.errors == []
        assert report.non_2xx == 0
        assert report.requests > 100, "load generator barely ran"
        assert report.queries > report.requests  # batches carry 3

        # Latency: p99 bounded while snapshots swapped underneath.
        assert len(truth) >= 3, "refresher produced no epochs under load"
        assert report.percentile(99) < P99_CEILING_SECONDS

        # Torn reads: every recorded body matches exactly one epoch's
        # ground truth; batch items must all share the batch's epoch.
        kinds = ("top", "top_sports", "weighted")
        for spec_index, status, body in report.bodies:
            assert status == 200
            position = spec_index % 4
            if position < 3:
                _check_against_truth(kinds[position], body, truth)
            else:
                assert body["count"] == 3
                for item_kind, item in zip(kinds, body["results"]):
                    assert item["epoch"] == body["epoch"], \
                        "batch items span epochs: snapshot not pinned"
                    _check_against_truth(item_kind, item, truth)
        epochs_seen = {body["epoch"] for _, _, body in report.bodies}
        assert len(epochs_seen) >= 2, \
            "load never overlapped a refresh; the test proved nothing"

    def test_rate_limited_tenant_is_isolated_under_load(
        self, small_blogosphere
    ):
        corpus, _ = small_blogosphere
        store = SnapshotStore(corpus, params=MassParameters())
        cluster = ServingCluster(
            store,
            ServiceConfig(port=0, max_inflight=32,
                          rate_limit_qps=25.0, rate_limit_burst=10.0),
            ClusterConfig(workers=2),
        )
        with store, cluster:
            cluster.wait_ready()
            hot = run_load(
                cluster.url,
                [RequestSpec(path="/top?k=3",
                             headers={TENANT_HEADER: "hot"})],
                concurrency=2, duration=1.5, keep_alive=True,
            )
            calm = run_load(
                cluster.url,
                [RequestSpec(path="/top?k=3",
                             headers={TENANT_HEADER: "calm"})],
                concurrency=1, duration=0.5, max_requests=5,
                keep_alive=True,
            )
        # The hot tenant was throttled but never errored out.
        assert hot.count(429) > 0
        assert hot.errors == []
        assert hot.count(200) > 0
        # Per-worker budget: each keep-alive connection pins a worker,
        # so grants <= workers * (burst + rate * duration) + slack.
        ceiling = 2 * (10.0 + 25.0 * hot.duration) * 1.25
        assert hot.count(200) <= ceiling
        # The calm tenant rode through untouched.
        assert calm.count(429) == 0
        assert calm.count(200) == 5


class TestLoadReport:
    """The report arithmetic the assertions above lean on."""

    def test_percentiles_and_rates(self):
        report = LoadReport(duration=2.0)
        report.latencies = [0.001 * n for n in range(1, 101)]
        report.requests = 100
        report.queries = 300
        assert report.percentile(50) == pytest.approx(0.050)
        assert report.percentile(99) == pytest.approx(0.099)
        assert report.percentile(100) == pytest.approx(0.100)
        assert report.rps == pytest.approx(50.0)
        assert report.qps == pytest.approx(150.0)

    def test_empty_report_is_quiet(self):
        report = LoadReport()
        assert report.percentile(99) == 0.0
        assert report.rps == 0.0
        assert report.non_2xx == 0

    def test_merge_folds_everything(self):
        merged = LoadReport(duration=1.0)
        left = LoadReport(requests=2, queries=2,
                          statuses={200: 2}, latencies=[0.1, 0.2])
        right = LoadReport(requests=3, queries=5,
                           statuses={200: 2, 429: 1},
                           latencies=[0.3], errors=["boom"])
        merged.merge(left)
        merged.merge(right)
        assert merged.requests == 5
        assert merged.queries == 7
        assert merged.statuses == {200: 4, 429: 1}
        assert merged.non_2xx == 1
        assert len(merged.latencies) == 3
        assert merged.errors == ["boom"]

    def test_summary_is_json_shaped(self):
        report = LoadReport(duration=1.0, requests=10, queries=10,
                            statuses={200: 10},
                            latencies=[0.001] * 10)
        summary = report.summary()
        assert summary["rps"] == 10.0
        assert summary["statuses"] == {"200": 10}
        assert summary["p99_ms"] == pytest.approx(1.0)

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            run_load("http://127.0.0.1:1", [])
