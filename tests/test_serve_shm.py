"""Shared-memory serving primitives: seqlock, arenas, cross-fork stats.

The multi-process tier stands on three guarantees tested here:

1. **Seqlock epoch-swap** — a reader concurrent with publishes sees an
   old payload or a new payload, never a mix (torn read), in the same
   thread *and* across ``fork``.
2. **Snapshot replication fidelity** — a snapshot round-tripped through
   the arena answers every query identically to the original.
3. **Shared stats lanes** — counters written by forked children are
   visible, exact, and correctly aggregated in the parent's render.
"""

import multiprocessing
import os
import pickle
import threading
import time

import pytest

from repro.core import MassModel, MassParameters
from repro.core.parallel import SeqlockArena, SharedF64Array
from repro.errors import ReproError
from repro.serve import (
    ArenaSnapshotSource,
    ClusterStatusBoard,
    InfluenceSnapshot,
    SharedHttpStats,
    SnapshotArena,
)
from repro.serve.snapshot import PAYLOAD_FORMAT

_FORK = multiprocessing.get_context("fork")


def _payload_for(tag: str) -> bytes:
    """A payload derivable from its tag, so readers can cross-check."""
    return (tag * 97).encode("ascii")


@pytest.fixture(scope="module")
def small_snapshot(small_blogosphere):
    from repro.synth import DOMAIN_VOCABULARIES

    corpus, _ = small_blogosphere
    report = MassModel(
        domain_seed_words=DOMAIN_VOCABULARIES, params=MassParameters()
    ).fit(corpus)
    return InfluenceSnapshot.compile(report)


class TestSeqlockArena:
    def test_empty_arena_reads_none(self):
        arena = SeqlockArena(1024)
        try:
            assert arena.read() is None
            assert arena.version == 0
        finally:
            arena.close()

    def test_roundtrip_and_version_progression(self):
        arena = SeqlockArena(1024)
        try:
            first = arena.publish(b"alpha", tag="one")
            assert first == 2  # odd while writing, even when stable
            version, tag, payload = arena.read()
            assert (version, tag, payload) == (2, "one", b"alpha")
            assert arena.publish(b"beta-longer", tag="two") == 4
            version, tag, payload = arena.read()
            assert (version, tag, payload) == (4, "two", b"beta-longer")
        finally:
            arena.close()

    def test_payload_larger_than_capacity_is_rejected(self):
        arena = SeqlockArena(16)
        try:
            with pytest.raises(ReproError, match="capacity"):
                arena.publish(b"x" * 17)
            # the failed publish must not have wedged the version word
            arena.publish(b"y" * 16)
            assert arena.read()[2] == b"y" * 16
        finally:
            arena.close()

    def test_capacity_validation(self):
        with pytest.raises(ReproError):
            SeqlockArena(0)

    def test_no_torn_reads_under_threaded_publish(self):
        """Readers racing a publisher only ever see (tag, f(tag)) pairs."""
        arena = SeqlockArena(64 << 10)
        stop = threading.Event()
        failures = []
        observed = set()

        def reader():
            try:
                while not stop.is_set():
                    record = arena.read()
                    if record is None:
                        continue
                    _, tag, payload = record
                    if payload != _payload_for(tag):
                        failures.append((tag, len(payload)))
                        return
                    observed.add(tag)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        try:
            for seq in range(400):
                tag = f"epoch-{seq:04d}"
                arena.publish(_payload_for(tag), tag=tag)
            # Publishing 400 epochs can outrun thread startup; keep the
            # last payload up until every reader has observed something.
            deadline = time.monotonic() + 5.0
            while not observed and not failures \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=30)
        try:
            assert not failures, f"torn reads observed: {failures[:3]}"
            assert observed, "readers never saw a stable payload"
        finally:
            arena.close()

    def test_no_torn_reads_across_fork(self):
        """A forked reader hammering the arena never sees a torn pair."""
        arena = SeqlockArena(64 << 10)
        arena.publish(_payload_for("epoch-0000"), tag="epoch-0000")

        def child_reader():
            deadline = time.monotonic() + 5.0
            seen = set()
            while time.monotonic() < deadline and len(seen) < 50:
                record = arena.read()
                if record is None:
                    os._exit(2)
                _, tag, payload = record
                if payload != _payload_for(tag):
                    os._exit(3)  # torn read
                seen.add(tag)
            os._exit(0 if len(seen) >= 2 else 4)

        child = _FORK.Process(target=child_reader)
        child.start()
        try:
            seq = 0
            while child.is_alive():
                seq += 1
                tag = f"epoch-{seq:04d}"
                arena.publish(_payload_for(tag), tag=tag)
                if seq % 64 == 0:
                    time.sleep(0.001)
            child.join(timeout=30)
            assert child.exitcode == 0, f"child exit {child.exitcode}"
        finally:
            if child.is_alive():
                child.kill()
                child.join(timeout=10)
            arena.close()


class TestSharedF64Array:
    def test_set_get_add_snapshot(self):
        array = SharedF64Array(4)
        try:
            assert len(array) == 4
            assert array.snapshot() == [0.0, 0.0, 0.0, 0.0]
            array[1] = 2.5
            array.add(1, 0.5)
            array.add(3, 7.0)
            assert array[1] == 3.0
            assert array.snapshot() == [0.0, 3.0, 0.0, 7.0]
        finally:
            array.close()

    def test_fork_visibility(self):
        """A child's stores land in the parent's mapping."""
        array = SharedF64Array(2)

        def child_writer():
            for _ in range(1000):
                array.add(0, 1.0)
            array[1] = 42.0
            os._exit(0)

        child = _FORK.Process(target=child_writer)
        child.start()
        child.join(timeout=30)
        try:
            assert child.exitcode == 0
            assert array.snapshot() == [1000.0, 42.0]
        finally:
            array.close()


class TestSnapshotArena:
    def test_replication_is_query_identical(self, small_snapshot):
        arena = SnapshotArena(32 << 20)
        try:
            arena.publish(small_snapshot)
            version, replica, meta = arena.read()
            assert version == 2
            assert replica.epoch == small_snapshot.epoch
            assert meta["trace"] is None
            # Fidelity: the replica answers queries byte-identically.
            assert replica.top(10) == small_snapshot.top(10)
            assert replica.top(5, "Sports") == small_snapshot.top(5, "Sports")
            assert replica.query({"Sports": 0.7, "Art": 0.3}, 5) \
                == small_snapshot.query({"Sports": 0.7, "Art": 0.3}, 5)
            assert replica.profile(replica.blogger_ids[0]) \
                == small_snapshot.profile(small_snapshot.blogger_ids[0])
            assert replica.stats() == small_snapshot.stats()
        finally:
            arena.close()

    def test_trace_context_rides_the_envelope(self, small_snapshot):
        arena = SnapshotArena(32 << 20)
        try:
            arena.publish(
                small_snapshot,
                trace={"trace_id": "t-123", "span_id": "s-456"},
            )
            _, _, meta = arena.read()
            assert meta["trace"] == {"trace_id": "t-123", "span_id": "s-456"}
            assert meta["published_monotonic"] <= time.monotonic()
        finally:
            arena.close()

    def test_payload_format_mismatch_is_loud(self, small_snapshot):
        stale = pickle.loads(pickle.dumps(small_snapshot.to_payload()))
        blob = pickle.loads(stale)
        assert blob["format"] == PAYLOAD_FORMAT
        blob["format"] = PAYLOAD_FORMAT + 1
        with pytest.raises(ReproError, match="format"):
            InfluenceSnapshot.from_payload(pickle.dumps(blob))


class TestArenaSnapshotSource:
    def test_empty_arena_raises(self):
        arena = SnapshotArena(1 << 20)
        try:
            source = ArenaSnapshotSource(arena)
            with pytest.raises(ReproError, match="empty"):
                source.snapshot  # noqa: B018 - property raises
        finally:
            arena.close()

    def test_attach_once_per_epoch(self, small_snapshot):
        arena = SnapshotArena(32 << 20)
        try:
            arena.publish(small_snapshot)
            source = ArenaSnapshotSource(arena)
            first = source.snapshot
            # Same version: the very same object, no re-deserialization.
            assert source.snapshot is first
            arena.publish(small_snapshot)  # same epoch, new version
            second = source.snapshot
            assert second is not first
            assert second.epoch == first.epoch
            assert source.published_meta["version"] == 4
            # The store-protocol stubs the HTTP layer reads:
            assert source.pending_deltas == 0
            assert source.staleness_seconds == 0.0
            assert source.pipeline is None
        finally:
            arena.close()


class TestSharedHttpStats:
    def test_totals_aggregate_across_workers(self):
        stats = SharedHttpStats(workers=3)
        try:
            stats.counter(0, "requests").inc()
            stats.counter(0, "requests").inc()
            stats.counter(1, "requests").inc(3.0)
            stats.counter(2, "errors").inc()
            assert stats.totals()["requests"] == 5.0
            assert stats.totals()["errors"] == 1.0
            assert stats.per_worker("requests") == [2.0, 3.0, 0.0]
        finally:
            stats.close()

    def test_counter_rejects_negative(self):
        stats = SharedHttpStats(workers=1)
        try:
            with pytest.raises(ReproError):
                stats.counter(0, "requests").inc(-1.0)
        finally:
            stats.close()

    def test_histogram_aggregation_and_render(self):
        stats = SharedHttpStats(workers=2, buckets=(0.01, 0.1, 1.0))
        try:
            stats.histogram(0).observe(0.005)
            stats.histogram(0).observe(0.05)
            stats.histogram(1).observe(0.5)
            stats.histogram(1).observe(5.0)  # lands in +Inf
            counts, total_sum, total_count = stats.histogram_totals()
            assert counts == [1.0, 1.0, 1.0, 1.0]
            assert total_count == 4.0
            assert total_sum == pytest.approx(5.555)
            text = stats.render_text()
            assert "repro_http_requests_total 0" in text
            assert 'le="+Inf"} 4' in text
            assert "repro_http_request_seconds_count 4" in text
        finally:
            stats.close()

    def test_render_reports_per_worker_request_lines(self):
        stats = SharedHttpStats(workers=2)
        try:
            stats.counter(0, "requests").inc(7.0)
            stats.counter(1, "requests").inc(2.0)
            text = stats.render_text()
            assert 'repro_http_worker_requests_total{worker="0"} 7' in text
            assert 'repro_http_worker_requests_total{worker="1"} 2' in text
            assert "repro_http_requests_total 9" in text
        finally:
            stats.close()

    def test_cross_fork_counting_is_exact(self):
        """Two forked children each own a lane; parent sums exactly."""
        stats = SharedHttpStats(workers=2)

        def child(worker_id, increments):
            counter = stats.counter(worker_id, "requests")
            timer_hist = stats.histogram(worker_id)
            for _ in range(increments):
                counter.inc()
                timer_hist.observe(0.001)
            os._exit(0)

        children = [
            _FORK.Process(target=child, args=(0, 500)),
            _FORK.Process(target=child, args=(1, 700)),
        ]
        for proc in children:
            proc.start()
        for proc in children:
            proc.join(timeout=60)
        try:
            assert all(proc.exitcode == 0 for proc in children)
            assert stats.totals()["requests"] == 1200.0
            assert stats.per_worker("requests") == [500.0, 700.0]
            _, _, total_count = stats.histogram_totals()
            assert total_count == 1200.0
        finally:
            stats.close()

    def test_out_of_range_worker_rejected(self):
        stats = SharedHttpStats(workers=1)
        try:
            with pytest.raises(ReproError):
                stats.counter(1, "requests")
            with pytest.raises(ReproError):
                stats.counter(0, "no-such-key")
        finally:
            stats.close()


class TestClusterStatusBoard:
    def test_roundtrip(self):
        board = ClusterStatusBoard()
        try:
            assert board.read() is None
            board.publish({"workers": 2, "pids": [11, 12], "respawns": 0})
            assert board.read() == {
                "workers": 2, "pids": [11, 12], "respawns": 0,
            }
            board.publish({"workers": 2, "respawns": 1})
            assert board.read()["respawns"] == 1
        finally:
            board.close()
