"""Unit tests for novelty detection (original vs reproduced content)."""

import pytest

from repro.core import (
    CompositeNoveltyDetector,
    LexiconNoveltyDetector,
    ShingleNoveltyDetector,
)
from repro.data import Post


def post(body: str, post_id: str = "p", day: int = 0) -> Post:
    return Post(post_id, "author", body=body, created_day=day)


class TestLexiconDetector:
    def test_original_post(self):
        detector = LexiconNoveltyDetector()
        assert detector.novelty(post("my own fresh thoughts today")) == 1.0

    @pytest.mark.parametrize(
        "marker",
        ["reposted from", "originally posted", "copied from", "excerpt from"],
    )
    def test_copy_markers_fire(self, marker):
        detector = LexiconNoveltyDetector(copied_value=0.07)
        assert detector.novelty(post(f"{marker} some other blog: text")) == 0.07

    def test_marker_with_punctuation(self):
        detector = LexiconNoveltyDetector()
        assert detector.is_copy(post("Reposted from: example.com!"))

    def test_partial_phrase_does_not_fire(self):
        detector = LexiconNoveltyDetector(phrases=["reposted from"])
        assert detector.novelty(post("I reposted my own article")) == 1.0

    def test_value_in_paper_range(self):
        with pytest.raises(ValueError, match=r"\(0, 0.1\]"):
            LexiconNoveltyDetector(copied_value=0.2)
        with pytest.raises(ValueError, match=r"\(0, 0.1\]"):
            LexiconNoveltyDetector(copied_value=0.0)

    def test_custom_phrases(self):
        detector = LexiconNoveltyDetector(phrases=["stolen text"])
        assert detector.is_copy(post("this is stolen text indeed"))
        assert not detector.is_copy(post("reposted from elsewhere"))

    def test_empty_phrase_rejected(self):
        with pytest.raises(ValueError):
            LexiconNoveltyDetector(phrases=["..."])
        with pytest.raises(ValueError):
            LexiconNoveltyDetector(phrases=[])

    def test_title_also_scanned(self):
        detector = LexiconNoveltyDetector()
        copied = Post("p", "a", title="Reposted from the news", body="text")
        assert detector.is_copy(copied)


class TestShingleDetector:
    ORIGINAL = "alpha beta gamma delta epsilon zeta eta theta iota kappa"

    def test_duplicate_of_earlier_post_flagged(self):
        first = post(self.ORIGINAL, "p1", day=1)
        second = post("intro words. " + self.ORIGINAL, "p2", day=2)
        detector = ShingleNoveltyDetector([first, second], threshold=0.5)
        assert detector.novelty(first) == 1.0
        assert detector.is_copy(second)

    def test_order_by_day_decides_original(self):
        late_original = post(self.ORIGINAL, "p1", day=9)
        early_copy = post(self.ORIGINAL, "p2", day=1)
        detector = ShingleNoveltyDetector([late_original, early_copy])
        # p2 is earlier: it is the original; p1 is the copy.
        assert detector.novelty(early_copy) == 1.0
        assert detector.is_copy(late_original)

    def test_distinct_posts_both_original(self):
        a = post("one two three four five six seven", "p1", day=1)
        b = post("red orange yellow green blue indigo violet", "p2", day=2)
        detector = ShingleNoveltyDetector([a, b])
        assert detector.novelty(a) == 1.0
        assert detector.novelty(b) == 1.0

    def test_bad_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            ShingleNoveltyDetector([], threshold=0.0)

    def test_bad_copied_value(self):
        with pytest.raises(ValueError, match="copied_value"):
            ShingleNoveltyDetector([], copied_value=0.5)


class TestCompositeDetector:
    def test_minimum_wins(self):
        lexicon = LexiconNoveltyDetector(copied_value=0.05)
        first = post(TestShingleDetector.ORIGINAL, "p1", day=1)
        reposted = post("reposted from elsewhere: new words here", "p2", day=2)
        shingle = ShingleNoveltyDetector([first, reposted])
        composite = CompositeNoveltyDetector([lexicon, shingle])
        # Lexicon flags p2; shingle does not. Composite takes the min.
        assert composite.is_copy(reposted)
        assert composite.novelty(first) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeNoveltyDetector([])
