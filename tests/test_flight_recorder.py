"""Flight-recorder ring buffer: recording, capping, capture, dumps."""

import logging
import threading

import pytest

from repro.obs import FlightRecorder, Instrumentation, Tracer, get_logger
from repro.obs.context import new_trace, use_trace


class TestRing:
    def test_note_events_land_in_order(self):
        recorder = FlightRecorder()
        recorder.note("first", n=1)
        recorder.note("second", n=2)
        first, second = recorder.tail()
        assert (first["name"], second["name"]) == ("first", "second")
        assert first["seq"] < second["seq"]
        assert first["ts"] <= second["ts"]

    def test_capacity_evicts_oldest_and_counts_drops(self):
        recorder = FlightRecorder(capacity=3)
        for n in range(5):
            recorder.note("e", n=n)
        events = recorder.tail()
        assert [event["n"] for event in events] == [2, 3, 4]
        assert recorder.dropped == 2
        assert len(recorder) == 3

    def test_tail_limit(self):
        recorder = FlightRecorder()
        for n in range(10):
            recorder.note("e", n=n)
        assert [e["n"] for e in recorder.tail(2)] == [8, 9]

    def test_tail_returns_copies(self):
        recorder = FlightRecorder()
        recorder.note("e")
        recorder.tail()[0]["mutated"] = True
        assert "mutated" not in recorder.tail()[0]

    def test_active_trace_id_stamped(self):
        recorder = FlightRecorder()
        ctx = new_trace()
        with use_trace(ctx):
            recorder.note("traced")
        recorder.note("untraced")
        traced, untraced = recorder.tail()
        assert traced["trace_id"] == ctx.trace_id
        assert "trace_id" not in untraced

    def test_disabled_recorder_records_nothing(self):
        recorder = FlightRecorder(enabled=False)
        recorder.note("e")
        recorder.dump("incident")
        assert recorder.tail() == []
        assert recorder.dumps() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_concurrent_notes_keep_unique_seqs(self):
        recorder = FlightRecorder(capacity=4096)
        threads = [
            threading.Thread(
                target=lambda: [recorder.note("e") for _ in range(200)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seqs = [event["seq"] for event in recorder.tail()]
        assert len(seqs) == 1600
        assert len(set(seqs)) == 1600


class TestSpanFeed:
    def test_instrumentation_wires_tracer_on_close(self):
        instr = Instrumentation.enabled()
        assert instr.tracer.on_close == instr.recorder.record_span

    def test_closed_spans_ring(self):
        recorder = FlightRecorder()
        tracer = Tracer(on_close=recorder.record_span)
        ctx = new_trace()
        with use_trace(ctx):
            with tracer.span("outer"):
                with tracer.span("inner") as span:
                    span.event(step=1)
        inner, outer = recorder.tail()  # children close first
        assert inner["kind"] == "span"
        assert inner["name"] == "inner"
        assert inner["trace_id"] == ctx.trace_id
        assert inner["parent_id"] == outer["span_id"]
        assert inner["events"] == 1
        assert inner["duration_ms"] >= 0.0


class TestLogCapture:
    @pytest.fixture(autouse=True)
    def _clean_logger(self):
        logger = logging.getLogger("repro")
        saved = list(logger.handlers)
        yield
        for handler in list(logger.handlers):
            if handler not in saved:
                logger.removeHandler(handler)

    def test_capture_rings_repro_logs_with_trace_id(self):
        recorder = FlightRecorder()
        recorder.capture_logs()
        try:
            ctx = new_trace()
            with use_trace(ctx):
                get_logger("test.capture").warning("ring %s", "me")
        finally:
            recorder.release_logs()
        (event,) = [e for e in recorder.tail() if e["kind"] == "log"]
        assert event["message"] == "ring me"
        assert event["level"] == "WARNING"
        assert event["logger"] == "repro.test.capture"
        assert event["trace_id"] == ctx.trace_id

    def test_capture_is_idempotent_and_released_once(self):
        recorder = FlightRecorder()
        logger = logging.getLogger("repro")
        before = len(logger.handlers)
        recorder.capture_logs()
        recorder.capture_logs()
        assert len(logger.handlers) == before + 1
        recorder.release_logs()
        recorder.release_logs()
        assert len(logger.handlers) == before


class TestDumps:
    def test_dump_snapshots_reason_trace_and_events(self):
        recorder = FlightRecorder()
        recorder.note("before-incident")
        ctx = new_trace()
        with use_trace(ctx):
            snapshot = recorder.dump("load-shed", extra={"route": "/top"})
        assert snapshot["reason"] == "load-shed"
        assert snapshot["trace_id"] == ctx.trace_id
        assert snapshot["route"] == "/top"
        assert any(
            e["name"] == "before-incident"
            for e in snapshot["events"]
            if e["kind"] == "event"
        )
        assert recorder.dumps()[-1]["reason"] == "load-shed"

    def test_dump_retention_is_bounded(self):
        recorder = FlightRecorder(dump_keep=2)
        for n in range(4):
            recorder.dump(f"reason-{n}")
        reasons = [d["reason"] for d in recorder.dumps()]
        assert reasons == ["reason-2", "reason-3"]

    def test_as_dict_shape(self):
        recorder = FlightRecorder(capacity=7)
        recorder.note("e")
        view = recorder.as_dict()
        assert view["capacity"] == 7
        assert view["dropped"] == 0
        assert view["events"][0]["name"] == "e"
