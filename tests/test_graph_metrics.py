"""Unit tests for network metrics, plus generator realism checks."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import (
    Digraph,
    average_clustering,
    clustering_coefficient,
    degree_histogram,
    gini_coefficient,
    link_graph,
    post_reply_graph,
    reciprocity,
    summarize_network,
)


def triangle_plus_tail() -> Digraph:
    graph = Digraph()
    graph.add_edges([("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
    return graph


class TestDegreeHistogram:
    def test_counts(self):
        histogram = degree_histogram(triangle_plus_tail(), "in")
        # a, b, c, d all have in-degree 1.
        assert histogram == {1: 4}

    def test_out_direction(self):
        histogram = degree_histogram(triangle_plus_tail(), "out")
        # a and b have out-degree 1, c has 2, d has 0.
        assert histogram == {0: 1, 1: 2, 2: 1}

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            degree_histogram(Digraph(), "sideways")


class TestGini:
    def test_equal_values_zero(self):
        assert gini_coefficient([5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_concentrated_high(self):
        assert gini_coefficient([0.0] * 9 + [100.0]) > 0.85

    def test_empty_and_zero(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1.0, 2.0])

    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                    max_size=30))
    def test_bounded(self, values):
        value = gini_coefficient(values)
        assert -1e-9 <= value <= 1.0

    @given(st.lists(st.floats(0.01, 100, allow_nan=False), min_size=2,
                    max_size=30), st.floats(0.1, 10))
    def test_scale_invariant(self, values, scale):
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient([v * scale for v in values]), abs=1e-9
        )


class TestReciprocity:
    def test_no_edges(self):
        assert reciprocity(Digraph()) == 0.0

    def test_fully_mutual(self):
        graph = Digraph()
        graph.add_edges([("a", "b"), ("b", "a")])
        assert reciprocity(graph) == 1.0

    def test_one_way(self):
        graph = Digraph()
        graph.add_edges([("a", "b"), ("b", "c")])
        assert reciprocity(graph) == 0.0

    def test_mixed(self):
        graph = Digraph()
        graph.add_edges([("a", "b"), ("b", "a"), ("a", "c"), ("a", "d")])
        assert reciprocity(graph) == 0.5


class TestClustering:
    def test_triangle_node(self):
        graph = triangle_plus_tail()
        # a's neighbours are b and c, which are connected -> 1.0.
        assert clustering_coefficient(graph, "a") == 1.0

    def test_tail_node(self):
        graph = triangle_plus_tail()
        assert clustering_coefficient(graph, "d") == 0.0

    def test_hub_of_unconnected_spokes(self):
        graph = Digraph()
        graph.add_edges([("hub", "x"), ("hub", "y"), ("hub", "z")])
        assert clustering_coefficient(graph, "hub") == 0.0

    def test_average(self):
        graph = triangle_plus_tail()
        # a: 1.0, b: 1.0, c: 1/3 (neighbours a,b,d; only a-b linked), d: 0.
        expected = (1.0 + 1.0 + 1 / 3 + 0.0) / 4
        assert average_clustering(graph) == pytest.approx(expected)

    def test_average_empty(self):
        assert average_clustering(Digraph()) == 0.0


class TestSummary:
    def test_summary_fields(self):
        graph = triangle_plus_tail()
        graph.add_node("loner")
        summary = summarize_network(graph)
        assert summary.nodes == 5
        assert summary.edges == 4
        assert summary.isolated_nodes == 1
        assert summary.max_in_degree == 1
        assert len(summary.rows()) == 8


class TestGeneratorRealism:
    """The synthetic blogosphere must look like a real one."""

    def test_comment_indegree_heavy_tailed(self, medium_blogosphere):
        corpus, _ = medium_blogosphere
        graph = post_reply_graph(corpus)
        degrees = [graph.in_degree(node, weighted=True) for node in graph]
        # Strong inequality: a small elite receives most comments.
        assert gini_coefficient(degrees) > 0.5
        assert max(degrees) > 5 * (sum(degrees) / len(degrees))

    def test_link_graph_skewed_but_less(self, medium_blogosphere):
        corpus, _ = medium_blogosphere
        graph = link_graph(corpus)
        degrees = [graph.in_degree(node) for node in graph]
        assert gini_coefficient(degrees) > 0.3

    def test_reciprocity_low(self, medium_blogosphere):
        # Endorsement links point up the influence gradient, so mutual
        # links are rare — as in real blogrolls.
        corpus, _ = medium_blogosphere
        assert reciprocity(link_graph(corpus)) < 0.3

    def test_summary_runs_at_scale(self, medium_blogosphere):
        corpus, _ = medium_blogosphere
        summary = summarize_network(post_reply_graph(corpus))
        assert summary.nodes == 400
        assert summary.mean_in_degree > 1.0
