"""Tests for the MassSystem facade (Fig. 2 wiring)."""

import pytest

from repro.crawler import SimulatedBlogService
from repro.errors import ReproError
from repro.system import MassSystem


@pytest.fixture()
def loaded_system(small_blogosphere) -> MassSystem:
    corpus, _ = small_blogosphere
    system = MassSystem()
    system.load_dataset(corpus)
    return system


class TestDataLoading:
    def test_no_dataset_rejected(self):
        with pytest.raises(ReproError, match="no data set"):
            MassSystem().corpus

    def test_load_corpus_object(self, loaded_system, small_blogosphere):
        assert loaded_system.corpus is small_blogosphere[0]

    def test_load_xml_directory(self, fig1_corpus, tmp_path):
        from repro.data import save_corpus, figure1_domains

        save_corpus(fig1_corpus, tmp_path)
        system = MassSystem(domain_seed_words=figure1_domains())
        corpus = system.load_dataset(tmp_path)
        assert len(corpus) == 9

    def test_crawl_sets_corpus(self, small_blogosphere, tmp_path):
        corpus, _ = small_blogosphere
        system = MassSystem()
        seed = corpus.blogger_ids()[0]
        result = system.crawl(
            SimulatedBlogService(corpus), [seed], radius=1,
            save_to=tmp_path,
        )
        assert system.corpus is result.corpus
        assert (tmp_path / "index.xml").exists()


class TestAnalysis:
    def test_report_lazy(self, loaded_system):
        report = loaded_system.report
        assert report.converged
        assert loaded_system.report is report  # cached

    def test_top_influencers(self, loaded_system):
        top = loaded_system.top_influencers(3, domain="Sports")
        assert len(top) == 3

    def test_set_parameters_invalidates(self, loaded_system):
        report_before = loaded_system.report
        params = loaded_system.set_parameters(alpha=0.9)
        assert params.alpha == 0.9
        report_after = loaded_system.report
        assert report_after is not report_before
        assert report_after.params.alpha == 0.9

    def test_new_dataset_invalidates(self, loaded_system, fig1_corpus):
        from repro.data import figure1_domains

        first = loaded_system.report
        system = MassSystem(domain_seed_words=figure1_domains())
        system.load_dataset(fig1_corpus)
        assert system.report is not first

    def test_blogger_detail(self, loaded_system):
        top_id = loaded_system.top_influencers(1)[0][0]
        detail = loaded_system.blogger_detail(top_id)
        assert detail.blogger_id == top_id


class TestUiBackends:
    def test_advertising_engine(self, loaded_system, small_blogosphere):
        _, truth = small_blogosphere
        engine = loaded_system.advertising()
        result = engine.recommend_for_domains(["Travel"], k=3)
        assert len(result.blogger_ids) == 3

    def test_recommendation_engine(self, loaded_system):
        engine = loaded_system.recommendations()
        rec = engine.recommend_for_profile(
            "military army navy defense strategy", k=2
        )
        assert len(rec.blogger_ids) == 2

    def test_visualize_ego(self, loaded_system):
        top_id = loaded_system.top_influencers(1)[0][0]
        viz = loaded_system.visualize(center=top_id, radius=1)
        assert top_id in {node.blogger_id for node in viz.nodes}
        assert len(viz) >= 1


class TestAnalysisPersistence:
    def test_save_load_roundtrip(self, small_blogosphere, tmp_path):
        corpus, _ = small_blogosphere
        system = MassSystem()
        system.load_dataset(corpus)
        system.set_parameters(alpha=0.7)
        original = system.analyze()
        path = system.save_analysis(tmp_path / "analysis.xml")

        fresh = MassSystem()
        fresh.load_dataset(corpus)
        restored = fresh.load_analysis(path)
        assert restored.general_scores() == original.general_scores()
        assert fresh.params.alpha == 0.7
        assert fresh.top_influencers(3) == system.top_influencers(3)

    def test_engines_work_after_load(self, small_blogosphere, tmp_path):
        corpus, _ = small_blogosphere
        system = MassSystem()
        system.load_dataset(corpus)
        system.analyze()
        path = system.save_analysis(tmp_path / "analysis.xml")

        fresh = MassSystem()
        fresh.load_dataset(corpus)
        fresh.load_analysis(path)
        ad = fresh.advertising().recommend_for_domains(["Sports"], k=2)
        assert len(ad.blogger_ids) == 2
        rec = fresh.recommendations().recommend_for_profile(
            "travel flight hotel", k=2
        )
        assert len(rec.blogger_ids) == 2

    def test_load_against_wrong_corpus_rejected(self, small_blogosphere,
                                                fig1_corpus, tmp_path):
        from repro.errors import XmlFormatError
        from repro.data import figure1_domains

        corpus, _ = small_blogosphere
        system = MassSystem()
        system.load_dataset(corpus)
        system.analyze()
        path = system.save_analysis(tmp_path / "analysis.xml")

        other = MassSystem(domain_seed_words=figure1_domains())
        other.load_dataset(fig1_corpus)
        with pytest.raises(XmlFormatError):
            other.load_analysis(path)
