"""The stdlib sampling profiler: lifecycle, output format, accounting."""

import threading
import time

import pytest

from repro.errors import ParameterError
from repro.obs import SamplingProfiler


def spin(seconds):
    """Burn CPU in a recognizably-named frame."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += 1
    return total


class TestLifecycle:
    def test_interval_must_be_positive(self):
        with pytest.raises(ParameterError, match="interval"):
            SamplingProfiler(interval=0.0)

    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        profiler.start()
        profiler.stop()
        profiler.stop()
        assert profiler.active_seconds >= 0.0

    def test_context_manager_samples_the_body(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.05)
        assert profiler.sample_count > 0
        assert profiler.active_seconds >= 0.05

    def test_counts_survive_stop_and_clear_resets(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.05)
        count = profiler.sample_count
        assert count > 0
        assert profiler.sample_count == count  # stopped, counts kept
        profiler.clear()
        assert profiler.sample_count == 0
        assert profiler.render_collapsed() == ""

    def test_sampler_thread_is_daemon_and_named(self):
        profiler = SamplingProfiler(interval=0.01)
        profiler.start()
        try:
            names = [t.name for t in threading.enumerate()]
            assert "repro-profiler" in names
            sampler = next(
                t for t in threading.enumerate()
                if t.name == "repro-profiler"
            )
            assert sampler.daemon
        finally:
            profiler.stop()


class TestOutput:
    def test_collapsed_stack_format(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.1)
        lines = profiler.render_collapsed().strip().splitlines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack
            assert int(count) >= 1
        assert any("spin" in line for line in lines)

    def test_hottest_stack_first(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.05)
        lines = profiler.render_collapsed().strip().splitlines()
        counts = [int(line.rpartition(" ")[2]) for line in lines]
        assert counts == sorted(counts, reverse=True)

    def test_own_sampler_thread_not_profiled(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.05)
        assert "SamplingProfiler._sample" not in profiler.render_collapsed()

    def test_write_creates_parent_dirs(self, tmp_path):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.02)
        target = profiler.write(tmp_path / "deep" / "profile.folded")
        assert target.exists()
        assert target.read_text() == profiler.render_collapsed()
