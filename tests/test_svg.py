"""Tests for the SVG renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.core import MassModel
from repro.viz import VisualizationGraph, render_svg, save_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def fig1_viz(fig1_corpus, fig1_seed_words):
    report = MassModel(domain_seed_words=fig1_seed_words).fit(fig1_corpus)
    return VisualizationGraph.from_report(report)


class TestRenderSvg:
    def test_valid_xml(self, fig1_viz):
        document = render_svg(fig1_viz)
        root = ET.fromstring(document)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_circle_per_node(self, fig1_viz):
        root = ET.fromstring(render_svg(fig1_viz))
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == len(fig1_viz)

    def test_one_line_per_edge(self, fig1_viz):
        root = ET.fromstring(render_svg(fig1_viz))
        lines = root.findall(f".//{SVG_NS}line")
        assert len(lines) == len(fig1_viz.edges)

    def test_edge_count_labels(self, fig1_viz):
        # Cary commented twice on Amery: a "2" edge label must exist.
        root = ET.fromstring(render_svg(fig1_viz))
        labels = [
            el.text
            for el in root.findall(f".//{SVG_NS}text")
            if el.get("class") == "edge-label"
        ]
        assert "2" in labels

    def test_node_tooltips(self, fig1_viz):
        root = ET.fromstring(render_svg(fig1_viz))
        titles = root.findall(f".//{SVG_NS}circle/{SVG_NS}title")
        assert len(titles) == len(fig1_viz)
        assert any("influence" in (t.text or "") for t in titles)

    def test_labels_limited(self, fig1_viz):
        root = ET.fromstring(render_svg(fig1_viz, max_labels=2))
        node_labels = [
            el
            for el in root.findall(f".//{SVG_NS}text")
            if el.get("class") == "node-label"
        ]
        assert len(node_labels) == 2

    def test_influence_scales_radius(self, fig1_viz):
        root = ET.fromstring(render_svg(fig1_viz))
        radii = {}
        for circle in root.findall(f".//{SVG_NS}circle"):
            title = circle.find(f"{SVG_NS}title").text or ""
            radii[title.split(":")[0]] = float(circle.get("r"))
        assert radii["Amery"] > radii["Bob"]

    def test_title_escaped(self, fig1_viz):
        document = render_svg(fig1_viz, title="a <b> & c")
        ET.fromstring(document)  # would raise if unescaped
        assert "a &lt;b&gt; &amp; c" in document

    def test_small_canvas_rejected(self, fig1_viz):
        with pytest.raises(ValueError):
            render_svg(fig1_viz, width=50, height=50)


class TestSaveSvg:
    def test_writes_file(self, fig1_viz, tmp_path):
        path = save_svg(fig1_viz, tmp_path / "network.svg")
        assert path.exists()
        ET.fromstring(path.read_text(encoding="utf-8"))
