"""Tests for the metrics registry (counters, gauges, histograms)."""

import json
import threading

import pytest

from repro.errors import ParameterError
from repro.obs import MetricsRegistry
from repro.obs.metrics import _NULL_METRIC


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_cannot_decrease(self, registry):
        with pytest.raises(ParameterError, match="cannot decrease"):
            registry.counter("c").inc(-1)

    def test_get_or_create_returns_same_instance(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self, registry):
        registry.counter("c")
        with pytest.raises(ParameterError, match="already registered"):
            registry.gauge("c")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0


class TestHistogram:
    def test_bucket_assignment_is_cumulative(self, registry):
        histogram = registry.histogram("h", buckets=(1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 100.0):
            histogram.observe(value)
        snapshot = histogram.as_dict()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(104.2)
        assert snapshot["buckets"] == {"1": 2, "5": 3, "+Inf": 4}

    def test_boundary_value_falls_in_bucket(self, registry):
        histogram = registry.histogram("h", buckets=(1.0,))
        histogram.observe(1.0)  # le="1" is inclusive
        assert histogram.as_dict()["buckets"]["1"] == 1

    def test_time_context_manager_observes(self, registry):
        histogram = registry.histogram("h")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.sum >= 0.0

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(ParameterError, match="at least one bucket"):
            registry.histogram("h", buckets=())

    def test_concurrent_observe_keeps_buckets_consistent(self, registry):
        # Many threads hammering observe() across every bucket: count,
        # sum, and the cumulative bucket ladder must all agree at the
        # end — a racy bucket-index update would break monotonicity.
        histogram = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        values = (0.05, 0.5, 5.0, 50.0)
        per_thread = 500
        threads = [
            threading.Thread(
                target=lambda: [
                    histogram.observe(value)
                    for _ in range(per_thread)
                    for value in values
                ]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = 8 * per_thread * len(values)
        snapshot = histogram.as_dict()
        assert snapshot["count"] == total
        assert snapshot["sum"] == pytest.approx(
            8 * per_thread * sum(values)
        )
        expected_quarter = total // 4
        assert snapshot["buckets"] == {
            "0.1": expected_quarter,
            "1": 2 * expected_quarter,
            "10": 3 * expected_quarter,
            "+Inf": total,
        }
        ladder = list(snapshot["buckets"].values())
        assert ladder == sorted(ladder)


class TestRegistry:
    def test_as_dict_snapshot(self, registry):
        registry.counter("a", help="first").inc(2)
        registry.gauge("b").set(7)
        snapshot = registry.as_dict()
        assert snapshot["a"] == {"type": "counter", "help": "first",
                                 "value": 2.0}
        assert snapshot["b"]["value"] == 7.0

    def test_render_json_is_valid_json(self, registry):
        registry.counter("a").inc()
        registry.histogram("h", buckets=(0.1,)).observe(0.05)
        parsed = json.loads(registry.render_json())
        assert parsed["a"]["value"] == 1
        assert parsed["h"]["buckets"]["+Inf"] == 1

    def test_render_text_exposition_format(self, registry):
        registry.counter("repro_x_total", help="things").inc(3)
        registry.histogram("repro_h_seconds", buckets=(0.5,)).observe(0.2)
        text = registry.render_text()
        assert "# HELP repro_x_total things" in text
        assert "# TYPE repro_x_total counter" in text
        assert "repro_x_total 3" in text
        assert 'repro_h_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_h_seconds_count 1" in text

    def test_thread_safety_under_contention(self, registry):
        counter = registry.counter("c")
        histogram = registry.histogram("h", buckets=(0.5,))

        def hammer():
            for _ in range(1000):
                counter.inc()
                histogram.observe(0.1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0
        assert histogram.count == 8000

    def test_disabled_registry_hands_out_null_metrics(self):
        registry = MetricsRegistry(enabled=False)
        metric = registry.counter("c")
        assert metric is _NULL_METRIC
        metric.inc()
        metric.set(5)
        metric.observe(1.0)
        with metric.time():
            pass
        assert registry.as_dict() == {}
        assert registry.render_text() == ""
