"""Unit tests for interest-vector mining (Scenario 1 & 2 front end)."""

import math

import pytest

from repro.errors import ClassifierError
from repro.nlp import InterestMiner, InterestVector, NaiveBayesClassifier

SEEDS = {
    "Sports": ["game", "match", "stadium", "marathon"],
    "Art": ["painting", "canvas", "gallery", "sculpture"],
    "Economics": ["market", "stocks", "inflation", "bank"],
}


@pytest.fixture(scope="module")
def miner() -> InterestMiner:
    classifier = NaiveBayesClassifier.from_seed_vocabulary(SEEDS)
    return InterestMiner(classifier, domain_vocabularies=SEEDS)


class TestInterestVector:
    def test_from_weights_normalizes(self):
        vec = InterestVector.from_weights({"A": 3.0, "B": 1.0})
        assert math.isclose(vec["A"], 0.75)
        assert math.isclose(sum(vec.values()), 1.0)

    def test_missing_domain_reads_zero(self):
        vec = InterestVector.from_weights({"A": 1.0})
        assert vec["nope"] == 0.0

    def test_all_zero_becomes_uniform(self):
        vec = InterestVector.from_weights({"A": 0.0, "B": 0.0})
        assert math.isclose(vec["A"], 0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            InterestVector.from_weights({"A": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no domains"):
            InterestVector.from_weights({})

    def test_single_domain(self):
        vec = InterestVector.single_domain("Art", ["Art", "Sports"])
        assert vec["Art"] == 1.0
        assert vec["Sports"] == 0.0

    def test_single_domain_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown domain"):
            InterestVector.single_domain("X", ["Art"])

    def test_top_domains_ordering(self):
        vec = InterestVector.from_weights({"A": 1.0, "B": 3.0, "C": 1.0})
        assert vec.top_domains(2)[0] == ("B", 0.6)
        assert vec.dominant_domain() == "B"

    def test_dominant_on_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            InterestVector().dominant_domain()


class TestInterestMiner:
    def test_classifier_strategy(self, miner):
        vec = miner.mine("a marathon in the stadium, what a game")
        assert vec.dominant_domain() == "Sports"
        assert math.isclose(sum(vec.values()), 1.0)

    def test_keyword_strategy(self, miner):
        vec = miner.mine("gallery sculpture painting", strategy="keyword")
        assert vec.dominant_domain() == "Art"

    def test_keyword_without_vocabularies_rejected(self):
        classifier = NaiveBayesClassifier.from_seed_vocabulary(SEEDS)
        bare = InterestMiner(classifier)
        with pytest.raises(ClassifierError, match="requires domain_vocabularies"):
            bare.mine("anything", strategy="keyword")

    def test_unknown_strategy_rejected(self, miner):
        with pytest.raises(ValueError, match="unknown strategy"):
            miner.mine("text", strategy="magic")

    def test_missing_vocabulary_domain_rejected(self):
        classifier = NaiveBayesClassifier.from_seed_vocabulary(SEEDS)
        with pytest.raises(ClassifierError, match="missing"):
            InterestMiner(classifier, domain_vocabularies={"Sports": ["x"]})

    def test_ad_and_profile_aliases(self, miner):
        ad = miner.mine_advertisement("stocks and the market")
        profile = miner.mine_profile("stocks and the market")
        assert ad == profile
        assert ad.dominant_domain() == "Economics"

    def test_domains_property(self, miner):
        assert set(miner.domains) == set(SEEDS)
