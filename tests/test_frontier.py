"""Unit tests for the BFS crawl frontier."""

import pytest

from repro.crawler import Frontier


class TestWaves:
    def test_seed_wave_first(self):
        frontier = Frontier(["b", "a"], radius=2)
        assert frontier.next_wave() == ["a", "b"]
        assert frontier.current_depth == 0

    def test_duplicate_seeds_deduped(self):
        frontier = Frontier(["a", "a"], radius=1)
        assert frontier.next_wave() == ["a"]

    def test_discovery_advances_depth(self):
        frontier = Frontier(["seed"], radius=2)
        frontier.next_wave()
        frontier.discover(["n1", "n2"])
        assert frontier.next_wave() == ["n1", "n2"]
        assert frontier.current_depth == 1
        frontier.discover(["n3"])
        assert frontier.next_wave() == ["n3"]
        assert frontier.current_depth == 2

    def test_radius_limits_expansion(self):
        frontier = Frontier(["seed"], radius=0)
        frontier.next_wave()
        frontier.discover(["n1"])
        assert frontier.next_wave() == []

    def test_already_discovered_not_requeued(self):
        frontier = Frontier(["seed"], radius=3)
        frontier.next_wave()
        frontier.discover(["seed", "n1"])
        assert frontier.next_wave() == ["n1"]
        frontier.discover(["n1", "seed"])
        assert frontier.next_wave() == []

    def test_empty_when_nothing_discovered(self):
        frontier = Frontier(["seed"], radius=5)
        frontier.next_wave()
        assert frontier.next_wave() == []


class TestBudget:
    def test_max_spaces_caps_admission(self):
        frontier = Frontier(["s"], radius=3, max_spaces=3)
        frontier.next_wave()
        frontier.discover(["a", "b", "c", "d"])
        wave = frontier.next_wave()
        assert wave == ["a", "b"]  # 1 seed + 2 = 3
        assert frontier.scheduled == 3

    def test_budget_spans_waves(self):
        frontier = Frontier(["s"], radius=3, max_spaces=2)
        frontier.next_wave()
        frontier.discover(["a"])
        assert frontier.next_wave() == ["a"]
        frontier.discover(["b"])
        assert frontier.next_wave() == []


class TestValidation:
    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            Frontier([], radius=1)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError, match="radius"):
            Frontier(["a"], radius=-1)

    def test_bad_max_spaces_rejected(self):
        with pytest.raises(ValueError, match="max_spaces"):
            Frontier(["a"], radius=1, max_spaces=0)
