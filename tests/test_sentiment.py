"""Unit tests for the lexicon sentiment classifier (the attitude facet)."""

import pytest

from repro.nlp import Sentiment, SentimentClassifier


@pytest.fixture(scope="module")
def clf() -> SentimentClassifier:
    return SentimentClassifier()


class TestPaperExemplars:
    """The paper names "agree", "support", "conform" as positive words."""

    @pytest.mark.parametrize("word", ["agree", "support", "conform"])
    def test_paper_positive_words(self, clf, word):
        assert clf.classify(f"I {word} with this post") is Sentiment.POSITIVE


class TestBasicPolarities:
    def test_positive(self, clf):
        assert clf.classify("what a wonderful, insightful post") is \
            Sentiment.POSITIVE

    def test_negative(self, clf):
        assert clf.classify("this is wrong and misleading") is \
            Sentiment.NEGATIVE

    def test_neutral_no_polar_words(self, clf):
        assert clf.classify("see my notes from last week") is \
            Sentiment.NEUTRAL

    def test_empty_text_neutral(self, clf):
        assert clf.classify("") is Sentiment.NEUTRAL

    def test_tie_is_neutral(self, clf):
        assert clf.classify("good points but wrong conclusion") is \
            Sentiment.NEUTRAL


class TestNegation:
    def test_negated_positive_reads_negative(self, clf):
        assert clf.classify("I don't agree with this") is Sentiment.NEGATIVE

    def test_negated_negative_reads_positive(self, clf):
        assert clf.classify("this is not wrong at all") is Sentiment.POSITIVE

    def test_negation_through_intensifier(self, clf):
        # "not really agree": intensifier must not break the window.
        assert clf.classify("I do not really agree here") is \
            Sentiment.NEGATIVE

    def test_negation_out_of_window(self, clf):
        # Negator four content words back: out of the default window.
        assert clf.classify(
            "never mind the other stuff people agree"
        ) is Sentiment.POSITIVE


class TestAnalyze:
    def test_breakdown_counts(self, clf):
        breakdown = clf.analyze("great great terrible")
        assert breakdown.positive_hits == 2
        assert breakdown.negative_hits == 1
        assert breakdown.sentiment is Sentiment.POSITIVE
        assert breakdown.tokens == 3


class TestCustomLexicons:
    def test_custom_words(self):
        clf = SentimentClassifier(
            positive_words=["yay"], negative_words=["boo"]
        )
        assert clf.classify("yay") is Sentiment.POSITIVE
        assert clf.classify("boo") is Sentiment.NEGATIVE
        # Built-ins are replaced, not extended.
        assert clf.classify("wonderful") is Sentiment.NEUTRAL

    def test_overlapping_lexicons_rejected(self):
        with pytest.raises(ValueError, match="both positive and negative"):
            SentimentClassifier(positive_words=["x"], negative_words=["x"])

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="negation_window"):
            SentimentClassifier(negation_window=-1)

    def test_zero_window_disables_negation(self):
        clf = SentimentClassifier(negation_window=0)
        assert clf.classify("I don't agree") is Sentiment.POSITIVE
