"""Snapshot compilation: batch equivalence, epochs, immutability."""

import pytest

from repro.core import MassModel, MassParameters, top_k
from repro.errors import QueryError
from repro.serve import InfluenceSnapshot, compile_snapshot


@pytest.fixture(scope="module")
def fig1_report(fig1_corpus, fig1_seed_words):
    return MassModel(domain_seed_words=fig1_seed_words).fit(fig1_corpus)


@pytest.fixture(scope="module")
def fig1_snapshot(fig1_report):
    return InfluenceSnapshot.compile(fig1_report)


@pytest.fixture(scope="module")
def small_report(small_blogosphere):
    from repro.synth import DOMAIN_VOCABULARIES

    corpus, _ = small_blogosphere
    return MassModel(domain_seed_words=DOMAIN_VOCABULARIES).fit(corpus)


@pytest.fixture(scope="module")
def small_snapshot(small_report):
    return compile_snapshot(small_report)


class TestBatchEquivalence:
    """Every served query shape is byte-identical to the batch call."""

    @pytest.mark.parametrize("k", [1, 3, 9, 50])
    def test_general_top(self, small_snapshot, small_report, k):
        assert small_snapshot.top(k) == small_report.top_influencers(k)

    @pytest.mark.parametrize("k", [1, 5, 120])
    def test_domain_top(self, small_snapshot, small_report, k):
        for domain in small_snapshot.domains:
            assert (small_snapshot.top(k, domain=domain)
                    == small_report.top_influencers(k, domain))

    def test_pagination_is_a_slice_of_the_batch_ranking(
        self, small_snapshot, small_report
    ):
        for offset in (0, 1, 5, 40):
            assert (small_snapshot.top(4, offset=offset)
                    == small_report.top_influencers(offset + 4)[offset:])

    @pytest.mark.parametrize("weights", [
        {"Sports": 1.0},
        {"Sports": 0.7, "Art": 0.3},
        {"Travel": 0.2, "Computer": 0.5, "Politics": 0.3},
    ])
    def test_weighted_query_matches_eq5_batch(
        self, small_snapshot, small_report, weights
    ):
        canonical = dict(sorted(weights.items()))
        batch_scores = small_report.domain_influence.weighted_scores(canonical)
        assert small_snapshot.weighted_scores(weights) == batch_scores
        assert small_snapshot.query(weights, 7) == top_k(batch_scores, 7)

    def test_weight_order_does_not_matter(self, small_snapshot):
        forward = small_snapshot.query({"Sports": 0.7, "Art": 0.3}, 5)
        backward = small_snapshot.query({"Art": 0.3, "Sports": 0.7}, 5)
        assert forward == backward

    def test_profile_matches_blogger_detail(self, fig1_snapshot, fig1_report):
        for blogger_id in fig1_snapshot.blogger_ids:
            detail = fig1_report.blogger_detail(blogger_id)
            profile = fig1_snapshot.profile(blogger_id)
            assert profile["name"] == detail.name
            assert profile["influence"] == detail.influence
            assert profile["ap"] == detail.ap
            assert profile["gl"] == detail.gl
            assert profile["num_posts"] == detail.num_posts
            assert profile["domain_scores"] == detail.domain_scores
            assert profile["top_posts"] == [list(p) for p in detail.top_posts]


class TestEpoch:
    def test_recompilation_is_stable(self, fig1_report):
        first = InfluenceSnapshot.compile(fig1_report)
        second = InfluenceSnapshot.compile(fig1_report)
        assert first.epoch == second.epoch

    def test_different_params_different_epoch(self, fig1_corpus,
                                              fig1_seed_words):
        base = MassModel(domain_seed_words=fig1_seed_words).fit(fig1_corpus)
        other = MassModel(
            params=MassParameters(alpha=0.8),
            domain_seed_words=fig1_seed_words,
        ).fit(fig1_corpus)
        assert (InfluenceSnapshot.compile(base).epoch
                != InfluenceSnapshot.compile(other).epoch)

    def test_different_corpus_different_epoch(self, fig1_snapshot,
                                              small_snapshot):
        assert fig1_snapshot.epoch != small_snapshot.epoch

    def test_epoch_carries_params_fingerprint(self, fig1_snapshot,
                                              fig1_report):
        assert (fig1_snapshot.params_fingerprint
                == fig1_report.params.fingerprint())


class TestValidation:
    @pytest.mark.parametrize("k", [0, -2])
    def test_bad_k(self, fig1_snapshot, k):
        with pytest.raises(QueryError, match="k must be >= 1"):
            fig1_snapshot.top(k)

    def test_bad_offset(self, fig1_snapshot):
        with pytest.raises(QueryError, match="offset"):
            fig1_snapshot.top(3, offset=-1)

    def test_unknown_domain(self, fig1_snapshot):
        with pytest.raises(QueryError, match="unknown domain"):
            fig1_snapshot.top(3, domain="Astrology")

    def test_unknown_blogger(self, fig1_snapshot):
        with pytest.raises(QueryError, match="unknown blogger"):
            fig1_snapshot.profile("nobody")

    def test_empty_weights(self, fig1_snapshot):
        with pytest.raises(QueryError, match="at least one domain"):
            fig1_snapshot.query({}, 3)

    def test_unknown_weight_domain(self, fig1_snapshot):
        with pytest.raises(QueryError, match="unknown domains"):
            fig1_snapshot.query({"Astrology": 1.0}, 3)

    @pytest.mark.parametrize("weight", [0.0, -1.0, float("nan"),
                                        float("inf")])
    def test_bad_weight_values(self, fig1_snapshot, weight):
        domain = fig1_snapshot.domains[0]
        with pytest.raises(QueryError):
            fig1_snapshot.query({domain: weight}, 3)


class TestImmutability:
    def test_profile_returns_a_defensive_copy(self, fig1_snapshot):
        blogger_id = fig1_snapshot.blogger_ids[0]
        profile = fig1_snapshot.profile(blogger_id)
        profile["domain_scores"].clear()
        profile["influence"] = -1.0
        fresh = fig1_snapshot.profile(blogger_id)
        assert fresh["domain_scores"]
        assert fresh["influence"] != -1.0

    def test_top_returns_a_fresh_list(self, fig1_snapshot):
        first = fig1_snapshot.top(3)
        first.append(("junk", 0.0))
        assert fig1_snapshot.top(3) != first

    def test_stats_is_a_copy(self, fig1_snapshot):
        stats = fig1_snapshot.stats()
        stats["bloggers"] = -1
        assert fig1_snapshot.stats()["bloggers"] != -1
