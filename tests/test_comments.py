"""Unit tests for the CommentScore machinery (Eq. 3)."""

import math

import pytest

from repro.core import CommentModel, MassParameters
from repro.data import CorpusBuilder
from repro.nlp import Sentiment


def build_corpus():
    builder = CorpusBuilder()
    for blogger_id in ("author", "fan", "critic", "busy"):
        builder.blogger(blogger_id)
    post = builder.post("author", body="the main post " * 10)
    other = builder.post("busy", body="another post")
    builder.comment(post.post_id, "fan", text="I agree, wonderful work")
    builder.comment(post.post_id, "critic", text="this is wrong and misleading")
    # "busy" writes two comments in total: one here, one on their own post.
    builder.comment(post.post_id, "busy",
                    text="some notes on the thing from last week")
    builder.comment(other.post_id, "busy", text="adding a note to myself")
    return builder.build(), post.post_id, other.post_id


class TestTerms:
    def test_sentiments_resolved(self):
        corpus, post_id, _ = build_corpus()
        model = CommentModel(corpus, MassParameters())
        sentiments = {
            term.commenter_id: term.sentiment
            for term in model.terms_for(post_id)
        }
        assert sentiments["fan"] is Sentiment.POSITIVE
        assert sentiments["critic"] is Sentiment.NEGATIVE
        assert sentiments["busy"] is Sentiment.NEUTRAL

    def test_tc_counts_all_comments(self):
        corpus, post_id, _ = build_corpus()
        model = CommentModel(corpus, MassParameters())
        busy_term = next(
            term for term in model.terms_for(post_id)
            if term.commenter_id == "busy"
        )
        # busy wrote 2 comments overall -> TC = 2, weight = 0.5/2.
        assert busy_term.total_comments == 2
        assert math.isclose(busy_term.citation_weight, 0.5 / 2)

    def test_self_comments_excluded_by_default(self):
        corpus, _, other_id = build_corpus()
        model = CommentModel(corpus, MassParameters())
        assert model.terms_for(other_id) == []

    def test_self_comments_included_when_enabled(self):
        corpus, _, other_id = build_corpus()
        model = CommentModel(
            corpus, MassParameters(include_self_comments=True)
        )
        assert len(model.terms_for(other_id)) == 1

    def test_uncommented_post_empty(self):
        corpus, _, _ = build_corpus()
        model = CommentModel(corpus, MassParameters())
        assert model.terms_for("no-such-post") == []


class TestCommentScore:
    def test_eq3_hand_computed(self):
        corpus, post_id, _ = build_corpus()
        model = CommentModel(corpus, MassParameters())
        influence = {"fan": 2.0, "critic": 1.0, "busy": 4.0}
        # fan: 2.0*1.0/1; critic: 1.0*0.1/1; busy: 4.0*0.5/2 = 1.0
        expected = 2.0 + 0.1 + 1.0
        assert math.isclose(model.comment_score(post_id, influence), expected)

    def test_zero_for_uncommented(self):
        corpus, _, _ = build_corpus()
        model = CommentModel(corpus, MassParameters())
        assert model.comment_score("ghost", {"fan": 1.0}) == 0.0

    def test_missing_influence_reads_zero(self):
        corpus, post_id, _ = build_corpus()
        model = CommentModel(corpus, MassParameters())
        assert model.comment_score(post_id, {}) == 0.0

    def test_citation_off_counts_sentiment(self):
        corpus, post_id, _ = build_corpus()
        model = CommentModel(corpus, MassParameters(use_citation=False))
        # Influence-free: sum of SF values = 1.0 + 0.1 + 0.5.
        score = model.comment_score(post_id, {"fan": 99.0})
        assert math.isclose(score, 1.6)

    def test_sentiment_off_all_neutral(self):
        corpus, post_id, _ = build_corpus()
        model = CommentModel(corpus, MassParameters(use_sentiment=False))
        influence = {"fan": 1.0, "critic": 1.0, "busy": 1.0}
        # All SF = 0.5: 0.5/1 + 0.5/1 + 0.5/2.
        assert math.isclose(
            model.comment_score(post_id, influence), 0.5 + 0.5 + 0.25
        )


class TestDiagnostics:
    def test_sentiment_distribution(self):
        corpus, _, _ = build_corpus()
        model = CommentModel(corpus, MassParameters())
        distribution = model.sentiment_distribution()
        assert distribution[Sentiment.POSITIVE] == 1
        assert distribution[Sentiment.NEGATIVE] == 1
        assert distribution[Sentiment.NEUTRAL] == 1  # self-comment skipped

    def test_num_commented_posts(self):
        corpus, _, _ = build_corpus()
        model = CommentModel(corpus, MassParameters())
        assert model.num_commented_posts() == 1


class TestGradedSentiment:
    def test_graded_sf_interpolates(self):
        corpus, post_id, _ = build_corpus()
        model = CommentModel(
            corpus, MassParameters(sentiment_mode="graded")
        )
        sfs = {
            term.commenter_id: term.sf for term in model.terms_for(post_id)
        }
        # "I agree, wonderful work": two positive hits, zero negative
        # -> full positive factor.
        assert sfs["fan"] == pytest.approx(1.0)
        # "this is wrong and misleading": two negative hits -> full
        # negative factor.
        assert sfs["critic"] == pytest.approx(0.1)
        # Hit-free comment stays neutral.
        assert sfs["busy"] == pytest.approx(0.5)

    def test_mixed_comment_lands_between(self):
        builder = CorpusBuilder()
        builder.blogger("author").blogger("mixed")
        post = builder.post("author", body="post " * 10)
        builder.comment(
            post.post_id, "mixed",
            text="great great great but wrong in one place",
        )
        corpus = builder.build()
        graded = CommentModel(
            corpus, MassParameters(sentiment_mode="graded")
        ).terms_for(post.post_id)[0]
        discrete = CommentModel(
            corpus, MassParameters()
        ).terms_for(post.post_id)[0]
        # Discrete mode calls it positive (3 vs 1 hits) -> SF 1.0;
        # graded tempers it: 0.5 + (2/4)*0.5 = 0.75.
        assert discrete.sf == 1.0
        assert graded.sf == pytest.approx(0.75)

    def test_invalid_mode_rejected(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError, match="sentiment_mode"):
            MassParameters(sentiment_mode="fuzzy")

    def test_graded_respects_sentiment_toggle(self):
        corpus, post_id, _ = build_corpus()
        model = CommentModel(
            corpus,
            MassParameters(sentiment_mode="graded", use_sentiment=False),
        )
        assert all(
            term.sf == 0.5 for term in model.terms_for(post_id)
        )


class TestDegenerateCitation:
    """TC <= 0 is unreachable through validated ingestion (a comment
    always counts toward its commenter's TC) but reachable through
    external corpus mutation; the term must drop its citation mass
    instead of dividing by zero, identically on every backend."""

    def test_tc_zero_term_contributes_nothing(self):
        from repro.core.comments import CommentTerm

        term = CommentTerm("ghost", Sentiment.NEUTRAL, 0.5, 0)
        assert term.citation_weight == 0.0
        assert CommentTerm("ghost", Sentiment.NEUTRAL, 0.5, -3
                           ).citation_weight == 0.0
        assert CommentTerm("ghost", Sentiment.NEUTRAL, 0.5, 2
                           ).citation_weight == 0.25

    def test_tc_zero_emits_typed_warning(self, monkeypatch):
        from repro.errors import DegenerateCitationWarning

        corpus, post_id, _ = build_corpus()
        real = corpus.total_comments_by
        monkeypatch.setattr(
            corpus, "total_comments_by",
            lambda blogger_id: 0 if blogger_id == "fan" else real(blogger_id),
        )
        with pytest.warns(DegenerateCitationWarning, match="TC=0"):
            model = CommentModel(corpus, MassParameters())
        fan = next(
            term for term in model.terms_for(post_id)
            if term.commenter_id == "fan"
        )
        assert fan.total_comments == 0
        assert fan.citation_weight == 0.0

    def test_tc_zero_consistent_across_backends(self, monkeypatch):
        import warnings

        from repro.core import InfluenceSolver
        from repro.errors import DegenerateCitationWarning

        corpus, _, _ = build_corpus()
        corpus.freeze()
        real = corpus.total_comments_by
        monkeypatch.setattr(
            corpus, "total_comments_by",
            lambda blogger_id: 0 if blogger_id == "fan" else real(blogger_id),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegenerateCitationWarning)
            reference = InfluenceSolver(
                corpus, MassParameters(solver_backend="reference")
            ).solve()
            sparse = InfluenceSolver(
                corpus, MassParameters(solver_backend="sparse")
            ).solve()
        for blogger_id, value in reference.influence.items():
            assert sparse.influence[blogger_id] == pytest.approx(
                value, abs=1e-9
            )
