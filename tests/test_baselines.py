"""Unit tests for the comparator baselines."""

import pytest

from repro.baselines import (
    GeneralInfluenceBaseline,
    HitsBaseline,
    IFinderBaseline,
    LiveIndexBaseline,
    OpinionLeaderBaseline,
    PageRankBaseline,
)
from repro.core import MassParameters
from repro.data import CorpusBuilder
from repro.errors import ParameterError

ALL_BASELINES = [
    GeneralInfluenceBaseline(),
    LiveIndexBaseline(),
    IFinderBaseline(),
    PageRankBaseline(),
    PageRankBaseline(include_replies=True),
    HitsBaseline(),
    OpinionLeaderBaseline(),
]


class TestCommonContract:
    @pytest.mark.parametrize(
        "ranker", ALL_BASELINES, ids=lambda r: r.name
    )
    def test_scores_every_blogger(self, fig1_corpus, ranker):
        scores = ranker.score_bloggers(fig1_corpus)
        assert set(scores) == set(fig1_corpus.blogger_ids())
        assert all(value >= 0 for value in scores.values())

    @pytest.mark.parametrize(
        "ranker", ALL_BASELINES, ids=lambda r: r.name
    )
    def test_rank_and_top_ids(self, fig1_corpus, ranker):
        ranking = ranker.rank(fig1_corpus, 3)
        assert len(ranking) == 3
        assert ranker.top_ids(fig1_corpus, 3) == [b for b, _ in ranking]

    @pytest.mark.parametrize(
        "ranker", ALL_BASELINES, ids=lambda r: r.name
    )
    def test_deterministic(self, fig1_corpus, ranker):
        assert ranker.score_bloggers(fig1_corpus) == ranker.score_bloggers(
            fig1_corpus
        )


class TestLiveIndex:
    def test_amery_tops_fig1(self, fig1_corpus):
        # Amery has the most in-links (3) and 2 posts.
        assert LiveIndexBaseline().top_ids(fig1_corpus, 1) == ["amery"]

    def test_pages_weight_matters(self):
        builder = CorpusBuilder()
        builder.blogger("writer").blogger("linked").blogger("fan")
        for _ in range(5):
            builder.post("writer", body="content here")
        builder.link("fan", "linked")
        corpus = builder.build()
        pages_only = LiveIndexBaseline(inlink_weight=0.0, pages_weight=1.0)
        assert pages_only.top_ids(corpus, 1) == ["writer"]
        links_only = LiveIndexBaseline(inlink_weight=1.0, pages_weight=0.0)
        assert links_only.top_ids(corpus, 1) == ["linked"]

    def test_invalid_weights(self):
        with pytest.raises(ParameterError):
            LiveIndexBaseline(inlink_weight=-1)
        with pytest.raises(ParameterError):
            LiveIndexBaseline(inlink_weight=0.0, pages_weight=0.0)


class TestIFinder:
    def test_commented_long_posts_win(self, fig1_corpus):
        scores = IFinderBaseline().score_bloggers(fig1_corpus)
        # Amery: longest posts, most comments.
        assert max(scores, key=scores.get) == "amery"

    def test_scores_normalized_to_unit_max(self, fig1_corpus):
        scores = IFinderBaseline().score_bloggers(fig1_corpus)
        assert max(scores.values()) == pytest.approx(1.0)

    def test_no_comments_falls_back_to_eloquence(self):
        builder = CorpusBuilder()
        builder.blogger("a").blogger("b")
        builder.post("a", body="word " * 100)
        builder.post("b", body="word")
        corpus = builder.build()
        scores = IFinderBaseline().score_bloggers(corpus)
        assert scores["a"] >= scores["b"]

    def test_empty_corpus(self):
        builder = CorpusBuilder()
        builder.blogger("a")
        corpus = builder.build()
        assert IFinderBaseline().score_bloggers(corpus) == {"a": 0.0}

    def test_outlinks_dampen(self):
        def build(outlinks: int):
            builder = CorpusBuilder()
            builder.blogger("a").blogger("fan")
            for index in range(outlinks):
                builder.blogger(f"t{index}")
                builder.link("a", f"t{index}")
            post = builder.post("a", body="word " * 30)
            builder.comment(post.post_id, "fan", text="nice")
            return builder.build()

        few = IFinderBaseline().score_bloggers(build(0))["a"]
        # Normalization is max-based; compare a against the fan instead.
        many_scores = IFinderBaseline(w_out=2.0).score_bloggers(build(8))
        assert many_scores["a"] <= few

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            IFinderBaseline(w_in=-1)
        with pytest.raises(ParameterError):
            IFinderBaseline(iterations=0)

    def test_top_posts(self, fig1_corpus):
        posts = IFinderBaseline().top_posts(fig1_corpus, 2)
        assert len(posts) == 2
        assert posts[0][0] == "post1"  # longest + two comments


class TestLinkAnalysis:
    def test_pagerank_baseline_matches_amery(self, fig1_corpus):
        assert PageRankBaseline().top_ids(fig1_corpus, 1) == ["amery"]

    def test_hits_baseline(self, fig1_corpus):
        assert HitsBaseline().top_ids(fig1_corpus, 1) == ["amery"]

    def test_include_replies_changes_name_and_scores(self, small_blogosphere):
        # Fig. 1 is degenerate here (every commenter has a single reply
        # target, so per-source normalization hides the extra edges);
        # the generated blogosphere is not.
        corpus, _ = small_blogosphere
        plain = PageRankBaseline()
        combined = PageRankBaseline(include_replies=True)
        assert combined.name != plain.name
        assert combined.score_bloggers(corpus) != plain.score_bloggers(corpus)


class TestOpinionLeaders:
    def test_copied_content_demoted(self):
        def build(copied: bool):
            builder = CorpusBuilder()
            builder.blogger("x").blogger("y").blogger("fan")
            body = "word " * 40
            if copied:
                body = "reposted from elsewhere. " + body
            builder.post("x", body=body)
            builder.post("y", body="word " * 40)
            builder.link("fan", "x").link("fan", "y")
            return builder.build()

        original = OpinionLeaderBaseline().score_bloggers(build(False))
        copied = OpinionLeaderBaseline().score_bloggers(build(True))
        assert copied["x"] < original["x"]

    def test_invalid_damping(self):
        with pytest.raises(ParameterError):
            OpinionLeaderBaseline(damping=1.0)

    def test_teleport_uniform_when_no_posts(self):
        builder = CorpusBuilder()
        builder.blogger("a").blogger("b")
        builder.link("a", "b")
        corpus = builder.build()
        scores = OpinionLeaderBaseline().score_bloggers(corpus)
        assert scores["b"] > scores["a"]


class TestGeneralBaseline:
    def test_matches_solver_influence(self, fig1_corpus):
        from repro.core import InfluenceSolver

        baseline_scores = GeneralInfluenceBaseline().score_bloggers(fig1_corpus)
        solver_scores = InfluenceSolver(fig1_corpus).solve().influence
        assert baseline_scores == solver_scores

    def test_custom_params(self, fig1_corpus):
        alpha_zero = GeneralInfluenceBaseline(MassParameters(alpha=0.0))
        scores = alpha_zero.score_bloggers(fig1_corpus)
        default = GeneralInfluenceBaseline().score_bloggers(fig1_corpus)
        assert scores != default
