"""Unit tests for MassParameters validation and the contraction bound."""

import math

import pytest

from repro.core import DEFAULT_DOMAINS, MassParameters
from repro.errors import ParameterError
from repro.nlp import Sentiment


class TestDefaults:
    def test_paper_defaults(self):
        params = MassParameters()
        assert params.alpha == 0.5
        assert params.beta == 0.6
        assert params.sf_positive == 1.0
        assert params.sf_neutral == 0.5
        assert params.sf_negative == 0.1

    def test_ten_default_domains(self):
        assert len(DEFAULT_DOMAINS) == 10
        assert "Sports" in DEFAULT_DOMAINS and "Travel" in DEFAULT_DOMAINS

    def test_default_contraction(self):
        params = MassParameters()
        assert math.isclose(params.contraction_bound(), 0.2)
        assert params.is_contractive


class TestValidation:
    @pytest.mark.parametrize("alpha", [-0.1, 1.1])
    def test_alpha_range(self, alpha):
        with pytest.raises(ParameterError, match="alpha"):
            MassParameters(alpha=alpha)

    @pytest.mark.parametrize("beta", [-0.01, 2.0])
    def test_beta_range(self, beta):
        with pytest.raises(ParameterError, match="beta"):
            MassParameters(beta=beta)

    def test_negative_sf_rejected(self):
        with pytest.raises(ParameterError, match="sf_negative"):
            MassParameters(sf_negative=-0.1)

    @pytest.mark.parametrize("value", [0.0, 0.11, 0.5])
    def test_novelty_copied_paper_range(self, value):
        with pytest.raises(ParameterError, match="novelty_copied"):
            MassParameters(novelty_copied=value)

    def test_novelty_copied_boundary_ok(self):
        assert MassParameters(novelty_copied=0.1).novelty_copied == 0.1

    def test_bad_length_normalization(self):
        with pytest.raises(ParameterError, match="length_normalization"):
            MassParameters(length_normalization="huge")

    def test_bad_gl_method(self):
        with pytest.raises(ParameterError, match="gl_method"):
            MassParameters(gl_method="votes")

    def test_bad_gl_normalization(self):
        with pytest.raises(ParameterError, match="gl_normalization"):
            MassParameters(gl_normalization="median")

    def test_bad_solver_settings(self):
        with pytest.raises(ParameterError, match="tolerance"):
            MassParameters(tolerance=0.0)
        with pytest.raises(ParameterError, match="max_iterations"):
            MassParameters(max_iterations=0)
        with pytest.raises(ParameterError, match="pagerank_damping"):
            MassParameters(pagerank_damping=1.0)


class TestSentimentFactor:
    def test_mapping(self):
        params = MassParameters()
        assert params.sentiment_factor(Sentiment.POSITIVE) == 1.0
        assert params.sentiment_factor(Sentiment.NEGATIVE) == 0.1
        assert params.sentiment_factor(Sentiment.NEUTRAL) == 0.5

    def test_sentiment_disabled_flattens_to_neutral(self):
        params = MassParameters(use_sentiment=False)
        for sentiment in Sentiment:
            assert params.sentiment_factor(sentiment) == 0.5

    def test_sf_max(self):
        assert MassParameters().sf_max == 1.0
        assert MassParameters(use_sentiment=False).sf_max == 0.5


class TestContraction:
    def test_bound_formula(self):
        params = MassParameters(alpha=0.8, beta=0.25)
        assert math.isclose(params.contraction_bound(), 0.8 * 0.75 * 1.0)

    def test_noncontractive_combination(self):
        params = MassParameters(alpha=1.0, beta=0.0)
        assert not params.is_contractive

    def test_citation_off_bound_is_inf(self):
        params = MassParameters(use_citation=False)
        assert params.contraction_bound() == float("inf")

    def test_with_overrides(self):
        params = MassParameters().with_overrides(alpha=0.9)
        assert params.alpha == 0.9
        assert params.beta == 0.6  # untouched
        with pytest.raises(ParameterError):
            MassParameters().with_overrides(alpha=3.0)


class TestFingerprint:
    def test_stable_across_construction_order(self):
        a = MassParameters(alpha=0.4, beta=0.7, gl_method="hits")
        b = MassParameters(gl_method="hits", beta=0.7, alpha=0.4)
        assert a.fingerprint() == b.fingerprint()

    def test_defaults_collide(self):
        assert MassParameters().fingerprint() == MassParameters().fingerprint()

    def test_every_changed_field_changes_the_fingerprint(self):
        base = MassParameters()
        changed = [
            base.with_overrides(alpha=0.4),
            base.with_overrides(beta=0.5),
            base.with_overrides(sf_positive=0.9),
            base.with_overrides(novelty_copied=0.01),
            base.with_overrides(gl_method="hits"),
            base.with_overrides(use_sentiment=False),
            base.with_overrides(solver_backend="reference"),
            base.with_overrides(max_iterations=100),
        ]
        fingerprints = {params.fingerprint() for params in changed}
        assert len(fingerprints) == len(changed)
        assert base.fingerprint() not in fingerprints

    def test_fingerprint_is_hex_sha256(self):
        fingerprint = MassParameters().fingerprint()
        assert len(fingerprint) == 64
        assert set(fingerprint) <= set("0123456789abcdef")

    def test_canonical_dict_sorted_and_complete(self):
        canonical = MassParameters().canonical_dict()
        assert list(canonical) == sorted(canonical)
        assert canonical["alpha"] == 0.5
        assert canonical["solver_backend"] == "auto"
