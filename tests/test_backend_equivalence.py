"""Backend equivalence: reference and sparse solvers agree to 1e-9.

The reference solver is the executable specification of Eqs. 1–4; the
sparse backend compiles the corpus to CSR arrays and sweeps them (with
either the numpy or the pure-python kernel).  Assembly preserves the
reference accumulation order, so the two backends may differ only by
float-summation noise — these tests pin that to 1e-9 on every fixture,
every kernel, and across the ablation grid.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core import InfluenceSolver, MassParameters
from repro.core.sparse_solver import HAS_NUMPY
from tests.test_properties import corpora

TOL = 1e-9

KERNELS = ["python"] + (["numpy"] if HAS_NUMPY else [])

PARAM_GRID = [
    MassParameters(),
    MassParameters(alpha=0.8, beta=0.3),
    MassParameters(alpha=0.0),
    MassParameters(beta=1.0),
    MassParameters(use_citation=False),
    MassParameters(use_sentiment=False),
    MassParameters(use_novelty=False),
    MassParameters(include_self_comments=True),
    MassParameters(gl_method="inlinks", gl_normalization="sum"),
    MassParameters(sentiment_mode="graded"),
]


def assert_scores_match(reference, sparse, tol=TOL):
    """Field-by-field comparison of two InfluenceScores."""
    assert set(sparse.influence) == set(reference.influence)
    assert set(sparse.post_influence) == set(reference.post_influence)
    for blogger_id, value in reference.influence.items():
        assert sparse.influence[blogger_id] == pytest.approx(value, abs=tol)
        assert sparse.ap[blogger_id] == pytest.approx(
            reference.ap[blogger_id], abs=tol
        )
        assert sparse.gl[blogger_id] == pytest.approx(
            reference.gl[blogger_id], abs=tol
        )
    for post_id, value in reference.post_influence.items():
        assert sparse.post_influence[post_id] == pytest.approx(value, abs=tol)
        assert sparse.comment_score[post_id] == pytest.approx(
            reference.comment_score[post_id], abs=tol
        )
        assert sparse.quality[post_id] == pytest.approx(
            reference.quality[post_id], abs=tol
        )
    assert sparse.converged == reference.converged


def solve_both(corpus, params, kernel, monkeypatch, initial=None):
    monkeypatch.setenv("REPRO_SPARSE_KERNEL", kernel)
    reference = InfluenceSolver(
        corpus, params.with_overrides(solver_backend="reference")
    ).solve(initial=initial)
    sparse = InfluenceSolver(
        corpus, params.with_overrides(solver_backend="sparse")
    ).solve(initial=initial)
    assert reference.backend == "reference"
    assert sparse.backend == "sparse"
    return reference, sparse


class TestFixtureEquivalence:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_tiny_corpus(self, tiny_corpus, kernel, monkeypatch):
        reference, sparse = solve_both(
            tiny_corpus.freeze(), MassParameters(), kernel, monkeypatch
        )
        assert_scores_match(reference, sparse)

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize(
        "params", PARAM_GRID, ids=lambda p: "grid"
    )
    def test_fig1_parameter_grid(self, fig1_corpus, kernel, params,
                                 monkeypatch):
        reference, sparse = solve_both(
            fig1_corpus, params, kernel, monkeypatch
        )
        assert_scores_match(reference, sparse)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_small_blogosphere(self, small_blogosphere, kernel, monkeypatch):
        corpus, _ = small_blogosphere
        reference, sparse = solve_both(
            corpus, MassParameters(), kernel, monkeypatch
        )
        assert_scores_match(reference, sparse)

    def test_medium_blogosphere(self, medium_blogosphere, monkeypatch):
        corpus, _ = medium_blogosphere
        reference, sparse = solve_both(
            corpus, MassParameters(), KERNELS[-1], monkeypatch
        )
        assert_scores_match(reference, sparse)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_warm_start_equivalence(self, fig1_corpus, kernel, monkeypatch):
        base = InfluenceSolver(fig1_corpus, MassParameters()).solve()
        perturbed = {
            blogger_id: value * 2.0 + 0.5
            for blogger_id, value in base.influence.items()
        }
        reference, sparse = solve_both(
            fig1_corpus, MassParameters(), kernel, monkeypatch,
            initial=perturbed,
        )
        assert_scores_match(reference, sparse, tol=1e-8)

    def test_iteration_counts_match(self, fig1_corpus, monkeypatch):
        # Same start, same tolerance, same residual definition — the
        # two backends take the same number of sweeps.
        reference, sparse = solve_both(
            fig1_corpus, MassParameters(), KERNELS[-1], monkeypatch
        )
        assert sparse.iterations == reference.iterations
        assert sparse.residual == pytest.approx(
            reference.residual, abs=1e-12
        )


class TestKernelEquivalence:
    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy unavailable")
    def test_python_and_numpy_kernels_agree(self, fig1_corpus, monkeypatch):
        params = MassParameters(solver_backend="sparse")
        monkeypatch.setenv("REPRO_SPARSE_KERNEL", "python")
        python_scores = InfluenceSolver(fig1_corpus, params).solve()
        monkeypatch.setenv("REPRO_SPARSE_KERNEL", "numpy")
        numpy_scores = InfluenceSolver(fig1_corpus, params).solve()
        assert_scores_match(python_scores, numpy_scores)


class TestPropertyEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(corpus=corpora())
    def test_random_corpora_agree(self, corpus):
        params = MassParameters()
        reference = InfluenceSolver(
            corpus, params.with_overrides(solver_backend="reference")
        ).solve()
        sparse = InfluenceSolver(
            corpus, params.with_overrides(solver_backend="sparse")
        ).solve()
        assert_scores_match(reference, sparse)
