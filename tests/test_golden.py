"""Golden regression fixtures for the influence solver.

Each case solves a small canonical corpus and compares every score
layer against a checked-in JSON snapshot under ``tests/golden/``.  The
snapshots pin the *numbers*, not just the invariants — any change to
sentiment factors, quality normalization, GL, or solver arithmetic
shows up as a diff here.

Regenerate deliberately with::

    pytest tests/test_golden.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import InfluenceSolver, MassParameters
from repro.data import CorpusBuilder, figure1_corpus

GOLDEN_DIR = Path(__file__).parent / "golden"

TOL = 1e-9


def village_corpus():
    """A hand-written six-blogger corpus exercising every facet."""
    builder = CorpusBuilder()
    for name in ("ava", "bruno", "chen", "dara", "emil", "fritz"):
        builder.blogger(name)
    p1 = builder.post("ava", title="Trail review",
                      body="the mountain trail winds past three lakes "
                           "and a glacier " * 4)
    p2 = builder.post("ava", body="short travel note about the harbour")
    p3 = builder.post("bruno", title="Market recap",
                      body="markets closed higher on strong earnings "
                           "and steady rates " * 3)
    p4 = builder.post("chen", body="I painted the old bridge at dawn "
                                   "with thin washes " * 2)
    builder.comment(p1.post_id, "bruno", text="wonderful, I agree completely")
    builder.comment(p1.post_id, "chen", text="lovely route, great photos")
    builder.comment(p1.post_id, "dara", text="this is wrong and overrated")
    builder.comment(p2.post_id, "emil", text="useful note")
    builder.comment(p3.post_id, "ava", text="I agree with this analysis")
    builder.comment(p3.post_id, "dara", text="terrible take, disagree")
    builder.comment(p4.post_id, "bruno", text="beautiful work, excellent")
    builder.link("bruno", "ava").link("chen", "ava").link("dara", "ava")
    builder.link("ava", "bruno").link("emil", "bruno").link("fritz", "chen")
    return builder.build().freeze()


def scores_to_dict(scores) -> dict:
    return {
        "influence": dict(sorted(scores.influence.items())),
        "ap": dict(sorted(scores.ap.items())),
        "gl": dict(sorted(scores.gl.items())),
        "quality": dict(sorted(scores.quality.items())),
        "comment_score": dict(sorted(scores.comment_score.items())),
        "post_influence": dict(sorted(scores.post_influence.items())),
        "iterations": scores.iterations,
        "converged": scores.converged,
    }


def check_golden(name: str, payload: dict, update: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    if update:
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"golden fixture {path} missing — run with --update-golden"
    )
    expected = json.loads(path.read_text())
    assert payload.keys() == expected.keys()
    for key, want in expected.items():
        got = payload[key]
        if isinstance(want, dict):
            assert got.keys() == want.keys(), f"{name}.{key} keys changed"
            for entry, value in want.items():
                assert got[entry] == pytest.approx(value, abs=TOL), (
                    f"{name}.{key}[{entry}] drifted"
                )
        else:
            assert got == want, f"{name}.{key} changed"


CASES = {
    "village_defaults": (village_corpus, MassParameters()),
    "village_toolbar": (
        village_corpus, MassParameters(alpha=0.7, beta=0.4)
    ),
    "village_no_citation": (
        village_corpus, MassParameters(use_citation=False)
    ),
    "fig1_defaults": (figure1_corpus, MassParameters()),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_scores(name, update_golden):
    build, params = CASES[name]
    scores = InfluenceSolver(build(), params).solve()
    check_golden(name, scores_to_dict(scores), update_golden)


def test_golden_backends_share_fixture(update_golden):
    """Both backends must reproduce the same golden numbers."""
    corpus = village_corpus()
    for backend in ("reference", "sparse"):
        scores = InfluenceSolver(
            corpus, MassParameters(solver_backend=backend)
        ).solve()
        check_golden("village_defaults", scores_to_dict(scores), False)
