"""Unit and property tests for the multinomial naive Bayes classifier."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ClassifierError
from repro.nlp import NaiveBayesClassifier

TRAIN_TEXTS = [
    "the marathon race and the stadium crowd",
    "football match in the league final",
    "stock market crash and inflation fears",
    "bank interest rates and the budget deficit",
]
TRAIN_LABELS = ["Sports", "Sports", "Economics", "Economics"]


@pytest.fixture()
def trained() -> NaiveBayesClassifier:
    return NaiveBayesClassifier().fit(TRAIN_TEXTS, TRAIN_LABELS)


class TestTraining:
    def test_classes_sorted(self, trained):
        assert trained.classes == ["Economics", "Sports"]

    def test_untrained_predict_rejected(self):
        with pytest.raises(ClassifierError, match="not trained"):
            NaiveBayesClassifier().predict("anything")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ClassifierError, match="texts but"):
            NaiveBayesClassifier().fit(["a"], ["x", "y"])

    def test_empty_corpus_rejected(self):
        with pytest.raises(ClassifierError, match="empty corpus"):
            NaiveBayesClassifier().fit([], [])

    def test_single_class_rejected(self):
        with pytest.raises(ClassifierError, match="at least 2 classes"):
            NaiveBayesClassifier().fit(["a", "b"], ["X", "X"])

    def test_stopword_only_corpus_rejected(self):
        with pytest.raises(ClassifierError, match="no usable tokens"):
            NaiveBayesClassifier().fit(["the a of", "and or"], ["X", "Y"])

    def test_bad_smoothing_rejected(self):
        with pytest.raises(ClassifierError, match="smoothing"):
            NaiveBayesClassifier(smoothing=0.0)

    def test_vocabulary_size(self, trained):
        assert trained.vocabulary_size > 0


class TestPrediction:
    def test_predicts_obvious_classes(self, trained):
        assert trained.predict("a new marathon record") == "Sports"
        assert trained.predict("inflation hits the market") == "Economics"

    def test_proba_sums_to_one(self, trained):
        probabilities = trained.predict_proba("football and stocks")
        assert math.isclose(sum(probabilities.values()), 1.0)
        assert set(probabilities) == {"Economics", "Sports"}

    def test_oov_text_falls_back_to_priors(self, trained):
        probabilities = trained.predict_proba("zzz qqq www")
        # Uniform priors here (2 docs per class).
        assert math.isclose(probabilities["Sports"], 0.5)

    def test_more_evidence_moves_posterior(self, trained):
        weak = trained.predict_proba("marathon")["Sports"]
        strong = trained.predict_proba("marathon stadium football")["Sports"]
        assert strong > weak

    def test_score_accuracy(self, trained):
        accuracy = trained.score(TRAIN_TEXTS, TRAIN_LABELS)
        assert accuracy == 1.0

    def test_score_validates_input(self, trained):
        with pytest.raises(ClassifierError):
            trained.score(["a"], [])
        with pytest.raises(ClassifierError):
            trained.score([], [])


class TestSeedVocabulary:
    def test_seed_mode_classifies(self):
        clf = NaiveBayesClassifier.from_seed_vocabulary(
            {"Sports": ["game", "match"], "Art": ["painting", "canvas"]}
        )
        assert clf.predict("a painting on canvas") == "Art"
        assert clf.predict("the match was a great game") == "Sports"

    def test_seed_mode_uniform_priors(self):
        clf = NaiveBayesClassifier.from_seed_vocabulary(
            {"A": ["alpha"], "B": ["beta"]}
        )
        probabilities = clf.predict_proba("unrelated words entirely")
        assert math.isclose(probabilities["A"], 0.5)

    def test_empty_seed_rejected(self):
        with pytest.raises(ClassifierError, match="empty"):
            NaiveBayesClassifier.from_seed_vocabulary({"A": [], "B": ["x"]})


class TestProperties:
    @given(
        st.lists(
            st.sampled_from(["alpha beta", "gamma delta", "alpha gamma"]),
            min_size=2,
            max_size=10,
        )
    )
    def test_posterior_always_normalized(self, texts):
        labels = ["X" if i % 2 == 0 else "Y" for i in range(len(texts))]
        if len(set(labels)) < 2:
            return
        clf = NaiveBayesClassifier(use_stopwords=False).fit(texts, labels)
        for text in texts + ["alpha", "unknown zzz"]:
            probabilities = clf.predict_proba(text)
            assert math.isclose(sum(probabilities.values()), 1.0)
            assert all(0.0 <= p <= 1.0 for p in probabilities.values())

    @given(st.integers(0, 2**31))
    def test_prediction_deterministic(self, seed):
        clf1 = NaiveBayesClassifier().fit(TRAIN_TEXTS, TRAIN_LABELS)
        clf2 = NaiveBayesClassifier().fit(TRAIN_TEXTS, TRAIN_LABELS)
        text = f"marathon {seed % 7} market"
        assert clf1.predict_proba(text) == clf2.predict_proba(text)
