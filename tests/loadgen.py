"""Reusable in-process HTTP load generator for the serving tier.

Used by ``tests/test_serve_loadgen.py``, ``scripts/serve_load_smoke.py``
and ``benchmarks/bench_service2.py`` — one implementation so the smoke
job, the concurrency tests, and the throughput benchmark all measure
the same way.

Shape: N threads, each owning one keep-alive HTTP/1.1 connection,
round-robin through a configurable query mix until a duration elapses
(or a request budget runs out).  Per-request wall latency, status
counts, transport errors, and (optionally) every decoded JSON body are
recorded, so callers can assert on p99, error budgets, and — by
replaying the recorded ``(epoch, results)`` pairs against ground truth
— on torn reads during concurrent snapshot refresh.

Latency numbers are *client-observed* (connect amortized away by
keep-alive, but scheduling noise from the GIL included), which is the
number an operator's SLO cares about.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from urllib.parse import urlsplit

__all__ = ["RequestSpec", "LoadReport", "LoadGenerator", "run_load"]


@dataclass(frozen=True)
class RequestSpec:
    """One element of the query mix.

    ``queries`` is the *logical* query count the request carries — 1
    for ``GET /top``, ``len(queries)`` for a ``POST /query/batch`` —
    so throughput can be reported in queries/second, the unit the
    single-process baseline benchmark uses.
    """

    path: str
    method: str = "GET"
    body: dict | None = None
    queries: int = 1
    headers: dict = field(default_factory=dict)

    def encoded_body(self) -> bytes | None:
        # Encoded once: a batch body is kilobytes, and re-dumping it on
        # every request would bill server-side throughput for client-
        # side JSON (both sides share the CPU in-process).
        if self.body is None:
            return None
        cached = getattr(self, "_encoded", None)
        if cached is None:
            cached = json.dumps(self.body).encode("utf-8")
            object.__setattr__(self, "_encoded", cached)
        return cached


@dataclass
class LoadReport:
    """What a load run observed."""

    duration: float = 0.0
    requests: int = 0                 # completed request/response cycles
    queries: int = 0                  # logical queries inside 2xx responses
    statuses: dict = field(default_factory=dict)  # status code -> count
    latencies: list = field(default_factory=list)  # seconds, per request
    errors: list = field(default_factory=list)     # transport-level failures
    bodies: list = field(default_factory=list)     # (spec_index, status, json)

    @property
    def rps(self) -> float:
        """Completed requests per second."""
        return self.requests / self.duration if self.duration > 0 else 0.0

    @property
    def qps(self) -> float:
        """Successfully answered logical queries per second."""
        return self.queries / self.duration if self.duration > 0 else 0.0

    def count(self, status: int) -> int:
        """Responses with ``status``."""
        return self.statuses.get(status, 0)

    @property
    def non_2xx(self) -> int:
        """Responses outside the 2xx class (429s included)."""
        return sum(count for status, count in self.statuses.items()
                   if not 200 <= status < 300)

    def percentile(self, pct: float) -> float:
        """Latency percentile in seconds (0 < pct <= 100)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(0, min(len(ordered) - 1,
                          int(round(pct / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def merge(self, other: "LoadReport") -> None:
        """Fold a per-thread report into this one (duration kept)."""
        self.requests += other.requests
        self.queries += other.queries
        for status, count in other.statuses.items():
            self.statuses[status] = self.statuses.get(status, 0) + count
        self.latencies.extend(other.latencies)
        self.errors.extend(other.errors)
        self.bodies.extend(other.bodies)

    def summary(self) -> dict:
        """JSON-able digest for bench output files."""
        return {
            "duration_seconds": round(self.duration, 4),
            "requests": self.requests,
            "queries": self.queries,
            "rps": round(self.rps, 1),
            "qps": round(self.qps, 1),
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "transport_errors": len(self.errors),
            "p50_ms": round(self.percentile(50) * 1e3, 3),
            "p99_ms": round(self.percentile(99) * 1e3, 3),
        }


class LoadGenerator:
    """Drives a fixed query mix against one base URL."""

    def __init__(
        self,
        url: str,
        mix: list,
        *,
        concurrency: int = 4,
        duration: float = 2.0,
        max_requests: int | None = None,
        keep_alive: bool = True,
        record_bodies: bool = False,
        timeout: float = 10.0,
    ) -> None:
        if not mix:
            raise ValueError("query mix must not be empty")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        parts = urlsplit(url)
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80
        self._mix = list(mix)
        self._concurrency = concurrency
        self._duration = duration
        self._keep_alive = keep_alive
        self._record_bodies = record_bodies
        self._timeout = timeout
        self._budget = max_requests
        self._budget_lock = threading.Lock()

    def _take_budget(self) -> bool:
        if self._budget is None:
            return True
        with self._budget_lock:
            if self._budget <= 0:
                return False
            self._budget -= 1
            return True

    def run(self) -> LoadReport:
        """Run the load to completion and return the merged report."""
        deadline = time.monotonic() + self._duration
        reports = [LoadReport() for _ in range(self._concurrency)]
        threads = [
            threading.Thread(
                target=self._worker, args=(offset, deadline, reports[offset]),
                name=f"loadgen-{offset}", daemon=True,
            )
            for offset in range(self._concurrency)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self._duration + 60.0)
        merged = LoadReport(duration=time.perf_counter() - started)
        for report in reports:
            merged.merge(report)
        return merged

    def _worker(self, offset: int, deadline: float, report: LoadReport) -> None:
        conn: http.client.HTTPConnection | None = None
        # Staggered starting offsets keep the workers from hammering
        # the same mix element in lockstep.
        index = offset
        while time.monotonic() < deadline and self._take_budget():
            spec = self._mix[index % len(self._mix)]
            index += 1
            try:
                if conn is None:
                    conn = http.client.HTTPConnection(
                        self._host, self._port, timeout=self._timeout
                    )
                started = time.perf_counter()
                conn.request(
                    spec.method, spec.path, body=spec.encoded_body(),
                    headers=spec.headers,
                )
                response = conn.getresponse()
                payload = response.read()  # drain: keep-alive needs it
                report.latencies.append(time.perf_counter() - started)
                report.requests += 1
                status = response.status
                report.statuses[status] = report.statuses.get(status, 0) + 1
                if 200 <= status < 300:
                    report.queries += spec.queries
                if self._record_bodies:
                    report.bodies.append((
                        index - 1, status,
                        json.loads(payload.decode("utf-8")),
                    ))
                if not self._keep_alive or response.will_close:
                    conn.close()
                    conn = None
            except (OSError, http.client.HTTPException) as exc:
                # Transport failure (connection reset by a killed
                # worker, refused during respawn, ...): note it,
                # reconnect, keep going.
                report.errors.append(f"{type(exc).__name__}: {exc}")
                if conn is not None:
                    conn.close()
                    conn = None
        if conn is not None:
            conn.close()


def run_load(url: str, mix: list, **kwargs: object) -> LoadReport:
    """One-call façade over :class:`LoadGenerator`."""
    return LoadGenerator(url, mix, **kwargs).run()
