"""Unit tests for HITS."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graph import Digraph, hits

node = st.sampled_from(list("abcdef"))


def star_to_center() -> Digraph:
    # One connected component: h, a, b all endorse "center"; h also
    # fans out to x and y, making it the strongest hub.
    graph = Digraph()
    graph.add_edges(
        [("h", "center"), ("a", "center"), ("b", "center"),
         ("h", "x"), ("h", "y")]
    )
    return graph


class TestBasics:
    def test_empty_graph(self):
        result = hits(Digraph())
        assert result.authorities == {}
        assert result.converged

    def test_authority_vs_hub_roles(self):
        result = hits(star_to_center())
        best_authority = max(result.authorities, key=result.authorities.get)
        assert best_authority == "center"
        best_hub = max(result.hubs, key=result.hubs.get)
        assert best_hub == "h"

    def test_scores_sum_to_one(self):
        result = hits(star_to_center())
        assert math.isclose(sum(result.authorities.values()), 1.0)
        assert math.isclose(sum(result.hubs.values()), 1.0)

    def test_isolated_nodes_zero(self):
        graph = Digraph()
        graph.add_edge("a", "b")
        graph.add_node("loner")
        result = hits(graph)
        assert result.authorities["loner"] == 0.0
        assert result.hubs["loner"] == 0.0

    def test_weights_matter(self):
        graph = Digraph()
        graph.add_edge("h", "heavy", 5.0)
        graph.add_edge("h", "light", 1.0)
        result = hits(graph)
        assert result.authorities["heavy"] > result.authorities["light"]


class TestValidation:
    def test_bad_tolerance(self):
        with pytest.raises(ParameterError):
            hits(star_to_center(), tolerance=-1)

    def test_bad_max_iterations(self):
        with pytest.raises(ParameterError):
            hits(star_to_center(), max_iterations=0)

    def test_nonconverged_flagged(self):
        graph = Digraph()
        graph.add_edges([("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")])
        result = hits(graph, max_iterations=1, tolerance=1e-18)
        assert not result.converged


class TestProperties:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(node, node), min_size=1, max_size=25))
    def test_nonnegative_and_normalized(self, edges):
        graph = Digraph()
        for source, target in edges:
            graph.add_edge(source, target)
        result = hits(graph)
        assert all(value >= 0 for value in result.authorities.values())
        total = sum(result.authorities.values())
        if total > 0:
            assert math.isclose(total, 1.0, abs_tol=1e-6)
