"""Unit and property tests for the influence fixed-point solver.

The hand-computed cases pin the solver to Eqs. 1-4 exactly; the
property tests check convergence and monotonicity over generated
corpora and parameters.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InfluenceSolver, MassParameters, compute_gl_scores
from repro.data import CorpusBuilder
from repro.errors import ConvergenceError


def one_post_one_comment():
    """A: one post; B comments positively; no links."""
    builder = CorpusBuilder()
    builder.blogger("A").blogger("B")
    post = builder.post("A", body="word " * 40)
    builder.comment(post.post_id, "B", text="I agree completely, wonderful")
    return builder.build(), post.post_id


class TestHandComputed:
    def test_two_blogger_fixed_point(self):
        """With α=0.5, β=0.6, Q=1, GL=1 (mean-normalized, no links):

        Inf(B) = 0.5·0 + 0.5·1 = 0.5
        Inf(A) = 0.5·(0.6·1 + 0.4·Inf(B)·1/1) + 0.5·1 = 0.9
        """
        corpus, post_id = one_post_one_comment()
        scores = InfluenceSolver(corpus).solve()
        assert scores.converged
        assert math.isclose(scores.influence["B"], 0.5, abs_tol=1e-9)
        assert math.isclose(scores.influence["A"], 0.9, abs_tol=1e-9)
        # Per-post: 0.6·1 + 0.4·0.5 = 0.8
        assert math.isclose(scores.post_influence[post_id], 0.8, abs_tol=1e-9)
        assert math.isclose(scores.ap["A"], 0.8, abs_tol=1e-9)

    def test_eq1_identity_holds_at_fixed_point(self, fig1_corpus):
        params = MassParameters()
        scores = InfluenceSolver(fig1_corpus, params).solve()
        assert scores.converged
        for blogger_id in fig1_corpus.blogger_ids():
            expected = (
                params.alpha * scores.ap[blogger_id]
                + (1 - params.alpha) * scores.gl[blogger_id]
            )
            assert math.isclose(
                scores.influence[blogger_id], expected, abs_tol=1e-7
            ), blogger_id

    def test_eq2_identity_per_post(self, fig1_corpus):
        params = MassParameters()
        scores = InfluenceSolver(fig1_corpus, params).solve()
        for post_id in fig1_corpus.posts:
            expected = (
                params.beta * scores.quality[post_id]
                + (1 - params.beta) * scores.comment_score[post_id]
            )
            assert math.isclose(
                scores.post_influence[post_id], expected, abs_tol=1e-9
            )

    def test_negative_comment_worth_less_than_positive(self):
        def build(comment_text):
            builder = CorpusBuilder()
            builder.blogger("A").blogger("B")
            post = builder.post("A", body="word " * 40)
            builder.comment(post.post_id, "B", text=comment_text)
            return builder.build()

        positive = InfluenceSolver(build("I agree, excellent")).solve()
        negative = InfluenceSolver(build("this is wrong, terrible")).solve()
        assert positive.influence["A"] > negative.influence["A"]

    def test_tc_normalization_splits_impact(self):
        """A commenter spreading over two posts contributes half each."""
        builder = CorpusBuilder()
        builder.blogger("A").blogger("A2").blogger("B")
        post_a = builder.post("A", body="word " * 40)
        post_a2 = builder.post("A2", body="word " * 40)
        builder.comment(post_a.post_id, "B", text="I agree, great")
        builder.comment(post_a2.post_id, "B", text="I agree, great")
        corpus = builder.build()
        scores = InfluenceSolver(corpus).solve()
        # Each comment is SF/TC = 1/2, so CommentScore = Inf(B)/2 each.
        expected = 0.4 * scores.influence["B"] / 2 + 0.6 * scores.quality[
            post_a.post_id
        ]
        assert math.isclose(
            scores.post_influence[post_a.post_id], expected, abs_tol=1e-9
        )


class TestAlphaExtremes:
    def test_alpha_one_is_pure_ap(self, fig1_corpus):
        scores = InfluenceSolver(
            fig1_corpus, MassParameters(alpha=1.0)
        ).solve()
        for blogger_id in fig1_corpus.blogger_ids():
            assert math.isclose(
                scores.influence[blogger_id], scores.ap[blogger_id],
                abs_tol=1e-7,
            )

    def test_alpha_zero_is_pure_gl(self, fig1_corpus):
        scores = InfluenceSolver(
            fig1_corpus, MassParameters(alpha=0.0)
        ).solve()
        for blogger_id in fig1_corpus.blogger_ids():
            assert math.isclose(
                scores.influence[blogger_id], scores.gl[blogger_id],
                abs_tol=1e-9,
            )


class TestGlBackends:
    def test_pagerank_mean_normalized(self, fig1_corpus):
        gl = compute_gl_scores(fig1_corpus, MassParameters())
        assert math.isclose(sum(gl.values()) / len(gl), 1.0, abs_tol=1e-9)

    def test_pagerank_sum_normalized(self, fig1_corpus):
        gl = compute_gl_scores(
            fig1_corpus, MassParameters(gl_normalization="sum")
        )
        assert math.isclose(sum(gl.values()), 1.0, abs_tol=1e-9)

    def test_amery_highest_authority(self, fig1_corpus):
        for method in ("pagerank", "hits", "inlinks"):
            gl = compute_gl_scores(
                fig1_corpus, MassParameters(gl_method=method)
            )
            assert max(gl, key=gl.get) == "amery", method

    def test_inlinks_no_links_uniform(self):
        builder = CorpusBuilder()
        builder.blogger("x").blogger("y")
        corpus = builder.build()
        gl = compute_gl_scores(corpus, MassParameters(gl_method="inlinks"))
        assert math.isclose(gl["x"], gl["y"])

    def test_empty_corpus(self):
        corpus = CorpusBuilder().build()
        assert compute_gl_scores(corpus, MassParameters()) == {}


class TestCitationAblation:
    def test_citation_off_closed_form(self):
        corpus, post_id = one_post_one_comment()
        params = MassParameters(use_citation=False)
        scores = InfluenceSolver(corpus, params).solve()
        assert scores.converged
        assert scores.iterations == 0
        # CommentScore = SF = 1.0 (count mode).
        assert math.isclose(scores.post_influence[post_id], 0.6 + 0.4 * 1.0)


class TestConvergence:
    def test_strict_raises_when_capped(self, fig1_corpus):
        params = MassParameters(max_iterations=1, tolerance=1e-18)
        with pytest.raises(ConvergenceError):
            InfluenceSolver(fig1_corpus, params).solve(strict=True)

    def test_non_strict_reports_flag(self, fig1_corpus):
        params = MassParameters(max_iterations=1, tolerance=1e-18)
        scores = InfluenceSolver(fig1_corpus, params).solve()
        assert not scores.converged
        assert scores.iterations == 1

    def test_no_comments_converges_immediately(self):
        builder = CorpusBuilder()
        builder.blogger("x")
        builder.post("x", body="hello world " * 5)
        corpus = builder.build()
        scores = InfluenceSolver(corpus).solve()
        assert scores.converged
        assert scores.iterations == 0

    @settings(max_examples=20, deadline=None)
    @given(
        alpha=st.floats(0.0, 1.0),
        beta=st.floats(0.05, 1.0),
    )
    def test_contractive_params_converge(self, fig1_corpus, alpha, beta):
        params = MassParameters(alpha=alpha, beta=beta)
        if not params.is_contractive:
            return
        scores = InfluenceSolver(fig1_corpus, params).solve()
        assert scores.converged
        assert all(v >= 0 for v in scores.influence.values())


class TestMonotonicity:
    def test_extra_positive_comment_increases_author_influence(self):
        def build(extra: bool):
            builder = CorpusBuilder()
            builder.blogger("A").blogger("B").blogger("C")
            post = builder.post("A", body="word " * 40)
            builder.comment(post.post_id, "B", text="I agree, great")
            if extra:
                builder.comment(post.post_id, "C", text="wonderful, I support")
            return builder.build()

        base = InfluenceSolver(build(False)).solve().influence["A"]
        boosted = InfluenceSolver(build(True)).solve().influence["A"]
        assert boosted > base

    def test_longer_post_increases_influence(self):
        def build(words: int):
            builder = CorpusBuilder()
            builder.blogger("A").blogger("Z")
            builder.post("A", body="word " * words)
            builder.post("Z", body="word " * 100)  # fixes the max length
            return builder.build()

        short = InfluenceSolver(build(10)).solve().influence["A"]
        long_ = InfluenceSolver(build(90)).solve().influence["A"]
        assert long_ > short


class TestPaperLiteralMode:
    """The paper-literal scoring (raw lengths, sum-normalized GL)."""

    def test_raw_mode_runs_and_ranks_consistently(self, fig1_corpus):
        literal = MassParameters(
            length_normalization="raw", gl_normalization="sum"
        )
        raw_scores = InfluenceSolver(fig1_corpus, literal).solve()
        assert raw_scores.converged
        default_scores = InfluenceSolver(fig1_corpus).solve()
        # Absolute values differ wildly (raw lengths are O(100))…
        assert raw_scores.influence["amery"] > 10 * \
            default_scores.influence["amery"]
        # …but the top blogger agrees.
        from repro.core import top_k

        assert top_k(raw_scores.influence, 1)[0][0] == \
            top_k(default_scores.influence, 1)[0][0] == "amery"

    def test_log_mode_compresses(self, fig1_corpus):
        log_scores = InfluenceSolver(
            fig1_corpus, MassParameters(length_normalization="log")
        ).solve()
        raw_scores = InfluenceSolver(
            fig1_corpus, MassParameters(length_normalization="raw")
        ).solve()
        assert log_scores.converged
        assert log_scores.influence["amery"] < raw_scores.influence["amery"]

    def test_raw_quality_is_word_count(self, fig1_corpus):
        scores = InfluenceSolver(
            fig1_corpus, MassParameters(length_normalization="raw")
        ).solve()
        from repro.nlp import word_count

        post1_words = word_count(fig1_corpus.post("post1").body)
        assert scores.quality["post1"] == float(post1_words)


class TestGlZeroFallback:
    """Regression: all-zero GL vectors must not skip mean normalization.

    HITS over a linkless graph converges to all-zero authorities; under
    ``gl_normalization="mean"`` the old code silently returned those
    zeros, knocking the GL term out of Eq. 1 with no signal.  Now the
    fallback is explicit: uniform authority (mean exactly 1) plus a
    warning log.
    """

    @staticmethod
    def _linkless_corpus():
        builder = CorpusBuilder()
        builder.blogger("A").blogger("B").blogger("C")
        builder.post("A", body="a post about gardens " * 10)
        builder.post("B", body="a post about computers " * 10)
        return builder.build()

    def test_uniform_fallback_and_warning(self, caplog):
        import logging as _logging

        corpus = self._linkless_corpus()
        params = MassParameters(gl_method="hits", gl_normalization="mean")
        _logging.getLogger("repro").propagate = True
        with caplog.at_level(_logging.WARNING, logger="repro.solver"):
            scores = compute_gl_scores(corpus, params)
        assert scores == {"A": 1.0, "B": 1.0, "C": 1.0}
        assert any("all zero" in record.message for record in caplog.records)

    def test_solver_stays_finite_with_zero_gl(self):
        corpus = self._linkless_corpus()
        params = MassParameters(gl_method="hits", gl_normalization="mean")
        scores = InfluenceSolver(corpus, params).solve()
        assert scores.converged
        # GL contributes uniformly instead of vanishing.
        assert scores.gl == {"A": 1.0, "B": 1.0, "C": 1.0}

    def test_sum_normalization_unaffected(self):
        corpus = self._linkless_corpus()
        params = MassParameters(gl_method="hits", gl_normalization="sum")
        scores = compute_gl_scores(corpus, params)
        assert all(value == 0.0 for value in scores.values())
