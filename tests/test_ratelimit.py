"""Token-bucket rate limiter: the properties the 429 path relies on.

The serving tier answers 429 + ``Retry-After`` from these buckets, so
their invariants are load-bearing:

- grants in any window never exceed ``burst + rate * elapsed``;
- refill is monotonic — a stalled or rewinding clock mints nothing;
- tenants are isolated, and the LRU never evicts an active tenant;
- under thread contention a full bucket grants *exactly* ``burst``.
"""

import multiprocessing
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.serve import (
    RateDecision,
    SharedTenantLimiter,
    TenantRateLimiter,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full_and_spends_down(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        grants = [bucket.try_acquire(now=0.0)[0] for _ in range(4)]
        assert grants == [True, True, True, False]

    def test_retry_after_names_the_exact_deficit(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.try_acquire(now=0.0) == (True, 0.0)
        granted, retry_after = bucket.try_acquire(now=0.0)
        assert not granted
        assert retry_after == pytest.approx(0.5)  # 1 token at 2/s
        # ...and waiting exactly that long makes the charge succeed.
        granted, _ = bucket.try_acquire(now=retry_after)
        assert granted

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        assert bucket.try_acquire(cost=2.0, now=0.0)[0]
        # A long idle stretch refills to burst, not beyond it.
        assert bucket.try_acquire(cost=2.0, now=1000.0)[0]
        assert not bucket.try_acquire(cost=1.0, now=1000.0)[0]

    def test_stalled_clock_mints_nothing(self):
        bucket = TokenBucket(rate=1000.0, burst=1.0)
        assert bucket.try_acquire(now=5.0)[0]
        for _ in range(100):
            assert not bucket.try_acquire(now=5.0)[0]

    def test_rewinding_clock_mints_nothing(self):
        bucket = TokenBucket(rate=1000.0, burst=1.0)
        assert bucket.try_acquire(now=5.0)[0]
        assert not bucket.try_acquire(now=4.0)[0]
        assert not bucket.try_acquire(now=0.0)[0]

    def test_cost_above_burst_is_never_grantable(self):
        bucket = TokenBucket(rate=10.0, burst=4.0)
        assert bucket.grantable(4.0)
        assert not bucket.grantable(4.5)

    @pytest.mark.parametrize("rate,burst", [
        (0.0, 1.0), (-1.0, 1.0), (float("inf"), 1.0),
        (1.0, 0.5), (1.0, float("nan")),
    ])
    def test_config_validation(self, rate, burst):
        with pytest.raises(ReproError):
            TokenBucket(rate, burst)

    def test_cost_validation(self):
        bucket = TokenBucket(1.0, 1.0)
        with pytest.raises(ReproError):
            bucket.try_acquire(cost=0.0)

    @settings(max_examples=200, deadline=None)
    @given(
        rate=st.floats(min_value=0.1, max_value=1000.0,
                       allow_nan=False, allow_infinity=False),
        burst=st.floats(min_value=1.0, max_value=50.0,
                        allow_nan=False, allow_infinity=False),
        steps=st.lists(
            st.floats(min_value=0.0, max_value=2.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=60,
        ),
    )
    def test_grants_never_exceed_burst_plus_refill(self, rate, burst, steps):
        """In any window, grants <= burst + rate * window (+ float slack)."""
        bucket = TokenBucket(rate, burst)
        now = 0.0
        granted = 0
        for gap in steps:
            now += gap
            if bucket.try_acquire(cost=1.0, now=now)[0]:
                granted += 1
        ceiling = burst + rate * now
        assert granted <= ceiling * (1 + 1e-9) + 1e-6

    @settings(max_examples=100, deadline=None)
    @given(
        rate=st.floats(min_value=0.1, max_value=100.0,
                       allow_nan=False, allow_infinity=False),
        burst=st.integers(min_value=1, max_value=16),
        threads=st.integers(min_value=2, max_value=6),
    )
    def test_frozen_clock_race_grants_exactly_burst(self, rate, burst, threads):
        """Concurrent chargers of a full, frozen bucket win exactly burst."""
        bucket = TokenBucket(rate, float(burst))
        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(threads)

        def charge():
            barrier.wait()
            local = [bucket.try_acquire(now=0.0)[0]
                     for _ in range(burst)]
            with lock:
                outcomes.extend(local)

        pool = [threading.Thread(target=charge) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30)
        assert sum(outcomes) == burst


class TestTenantRateLimiter:
    def _frozen(self, rate, burst=None, **kwargs):
        return TenantRateLimiter(rate, burst, clock=lambda: 0.0, **kwargs)

    def test_tenants_are_isolated(self):
        limiter = self._frozen(rate=1.0, burst=2.0)
        assert limiter.check("alice").allowed
        assert limiter.check("alice").allowed
        refused = limiter.check("alice")
        assert not refused.allowed
        assert refused.retry_after > 0
        # alice's exhaustion does not touch bob's budget
        assert limiter.check("bob").allowed

    def test_decision_carries_tenant_and_remaining(self):
        limiter = self._frozen(rate=1.0, burst=3.0)
        decision = limiter.check("carol")
        assert isinstance(decision, RateDecision)
        assert decision.tenant == "carol"
        assert decision.remaining == pytest.approx(2.0)

    def test_default_burst_is_one_second_of_rate(self):
        assert TenantRateLimiter(7.5).burst == 8.0
        assert TenantRateLimiter(0.25).burst == 1.0  # floor: 1 token

    def test_lru_evicts_idle_not_active_tenants(self):
        limiter = self._frozen(rate=1.0, burst=1.0, max_tenants=2)
        assert limiter.check("hot").allowed       # hot spends its token
        limiter.check("idle-1")
        assert limiter.check("hot").allowed is False  # still charged
        limiter.check("idle-2")                   # evicts idle-1, not hot
        assert limiter.tenant_count == 2
        assert not limiter.check("hot").allowed   # budget survived eviction
        # idle-1 was evicted: it comes back with a fresh (full) bucket
        assert limiter.check("idle-1").allowed

    def test_spraying_tenants_is_memory_bounded(self):
        limiter = self._frozen(rate=1.0, max_tenants=64)
        for index in range(1000):
            limiter.check(f"spray-{index}")
        assert limiter.tenant_count == 64

    def test_grantable_mirrors_burst(self):
        limiter = self._frozen(rate=10.0, burst=5.0)
        assert limiter.grantable(5.0)
        assert not limiter.grantable(6.0)

    @settings(max_examples=50, deadline=None)
    @given(
        charges=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]),
                      st.floats(min_value=0.0, max_value=1.0,
                                allow_nan=False, allow_infinity=False)),
            min_size=1, max_size=40,
        )
    )
    def test_per_tenant_ceiling_holds_under_interleaving(self, charges):
        """Interleaved tenants each obey their own grant ceiling."""
        clock_now = [0.0]
        limiter = TenantRateLimiter(
            rate=2.0, burst=3.0, clock=lambda: clock_now[0]
        )
        granted: dict[str, int] = {}
        for tenant, gap in charges:
            clock_now[0] += gap
            if limiter.check(tenant).allowed:
                granted[tenant] = granted.get(tenant, 0) + 1
        ceiling = 3.0 + 2.0 * clock_now[0]
        for tenant, count in granted.items():
            assert count <= ceiling * (1 + 1e-9) + 1e-6


def _charge_in_child(limiter, tenant, attempts, counter):
    granted = sum(
        1 for _ in range(attempts) if limiter.check(tenant).allowed
    )
    with counter.get_lock():
        counter.value += granted


class TestSharedTenantLimiter:
    """The fork-shared limiter: same bucket semantics, one budget
    across processes — the regression the per-worker limiter had."""

    def _frozen(self, rate, burst=None, **kwargs):
        return SharedTenantLimiter(rate, burst, clock=lambda: 0.0, **kwargs)

    def test_matches_in_process_semantics(self):
        limiter = self._frozen(rate=1.0, burst=2.0)
        assert limiter.check("alice").allowed
        decision = limiter.check("alice")
        assert decision.allowed
        assert decision.remaining == pytest.approx(0.0)
        refused = limiter.check("alice")
        assert not refused.allowed
        assert refused.retry_after == pytest.approx(1.0)
        assert refused.tenant == "alice"
        # alice's exhaustion does not touch bob's budget
        assert limiter.check("bob").allowed
        assert limiter.tenant_count == 2
        limiter.close()

    def test_refill_is_monotonic_and_capped(self):
        clock_now = [0.0]
        limiter = SharedTenantLimiter(
            rate=2.0, burst=2.0, clock=lambda: clock_now[0]
        )
        assert limiter.check("t", cost=2.0).allowed
        # a rewinding clock mints nothing
        clock_now[0] = -5.0
        assert not limiter.check("t").allowed
        # a long idle stretch refills to burst, not beyond
        clock_now[0] = 1000.0
        assert limiter.check("t", cost=2.0).allowed
        assert not limiter.check("t").allowed
        limiter.close()

    def test_grantable_and_validation_mirror_token_bucket(self):
        limiter = self._frozen(rate=10.0, burst=5.0)
        assert limiter.grantable(5.0)
        assert not limiter.grantable(6.0)
        with pytest.raises(ReproError):
            limiter.check("t", cost=0.0)
        limiter.close()
        with pytest.raises(ReproError):
            SharedTenantLimiter(rate=-1.0)
        with pytest.raises(ReproError):
            SharedTenantLimiter(rate=1.0, slots=0)

    def test_colliding_tenants_evict_stalest_not_active(self):
        # One slot forces every tenant into the same row: the tenant
        # charging now must never be the one reset by eviction.
        limiter = self._frozen(rate=1.0, burst=1.0, slots=1)
        assert limiter.check("hot").allowed
        assert not limiter.check("hot").allowed  # still charged
        limiter.check("rival")  # evicts hot (the stalest), starts full
        assert limiter.check("hot").allowed  # hot re-enters with a
        assert not limiter.check("hot").allowed  # fresh, chargeable bucket
        limiter.close()

    def test_spraying_tenants_is_memory_bounded(self):
        limiter = self._frozen(rate=1.0, slots=64)
        for index in range(1000):
            limiter.check(f"spray-{index}")
        assert limiter.tenant_count <= 64
        limiter.close()

    def test_forked_workers_share_one_cluster_budget(self):
        """Four forked chargers of one tenant win exactly ``burst``.

        This is the shared-nothing regression: per-worker limiters
        would grant ``workers x burst`` (32 here).  The fork-shared
        table must grant the configured burst once, cluster-wide.
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("requires the fork start method")
        ctx = multiprocessing.get_context("fork")
        burst = 8
        # A near-zero rate freezes refill over the test's runtime, so
        # the grant total is exactly the burst.
        limiter = SharedTenantLimiter(rate=1e-9, burst=float(burst))
        counter = ctx.Value("i", 0)
        workers = [
            ctx.Process(
                target=_charge_in_child,
                args=(limiter, "tenant", burst, counter),
            )
            for _ in range(4)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        assert counter.value == burst
        # the parent observes the children's spend through the same table
        assert not limiter.check("tenant").allowed
        assert limiter.tenant_count == 1
        limiter.close()
