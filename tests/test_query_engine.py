"""QueryEngine: caching, canonicalization, validation, equivalence."""

import pytest

from repro.core import MassModel, top_k
from repro.errors import QueryError
from repro.obs import Instrumentation
from repro.serve import InfluenceSnapshot, QueryEngine


@pytest.fixture(scope="module")
def report(fig1_corpus, fig1_seed_words):
    return MassModel(domain_seed_words=fig1_seed_words).fit(fig1_corpus)


@pytest.fixture(scope="module")
def snapshot(report):
    return InfluenceSnapshot.compile(report)


@pytest.fixture()
def engine(snapshot):
    return QueryEngine(snapshot)


class TestResults:
    def test_top_carries_epoch_and_total(self, engine, snapshot):
        result = engine.top(3)
        assert result.epoch == snapshot.epoch
        assert result.total == snapshot.num_bloggers
        assert result.kind == "top"
        assert len(result.results) == 3

    def test_top_matches_batch(self, engine, report):
        assert list(engine.top(5).results) == report.top_influencers(5)
        assert (list(engine.top(4, domain="Computer").results)
                == report.top_influencers(4, "Computer"))

    def test_query_matches_batch(self, engine, report):
        weights = {"Economics": 0.4, "Computer": 0.6}
        canonical = dict(sorted(weights.items()))
        expected = top_k(
            report.domain_influence.weighted_scores(canonical), 5
        )
        assert list(engine.query(weights, 5).results) == expected

    def test_as_dict_is_json_shaped(self, engine):
        payload = engine.top(2).as_dict()
        assert payload["kind"] == "top"
        assert all({"blogger_id", "score"} == set(row)
                   for row in payload["results"])

    def test_blogger_profile(self, engine, snapshot, report):
        blogger_id = snapshot.blogger_ids[0]
        result = engine.blogger(blogger_id)
        assert result.epoch == snapshot.epoch
        assert (result.profile["influence"]
                == report.blogger_detail(blogger_id).influence)


class TestCache:
    def test_second_identical_query_is_cached(self, engine):
        first = engine.top(3)
        second = engine.top(3)
        assert not first.cached
        assert second.cached
        assert second.results == first.results

    def test_semantically_equal_queries_share_an_entry(self, engine):
        engine.query({"Computer": 0.7, "Economics": 0.3}, 3)
        reordered = engine.query({"Economics": 0.3, "Computer": 0.7}, 3)
        assert reordered.cached

    def test_different_queries_do_not_collide(self, engine):
        engine.top(3)
        assert not engine.top(4).cached
        assert not engine.top(3, domain="Computer").cached
        assert not engine.top(3, offset=1).cached

    def test_lru_eviction_is_bounded(self, snapshot):
        engine = QueryEngine(snapshot, cache_size=2)
        engine.top(1)
        engine.top(2)
        engine.top(3)          # evicts top(1)
        assert engine.cache_info["entries"] == 2
        assert not engine.top(1).cached  # was evicted
        assert engine.top(3).cached      # still resident

    def test_cache_disabled(self, snapshot):
        engine = QueryEngine(snapshot, cache_size=0)
        engine.top(3)
        assert not engine.top(3).cached
        assert engine.cache_info["entries"] == 0

    def test_hit_rate_metrics(self, snapshot):
        instr = Instrumentation.enabled()
        engine = QueryEngine(snapshot, instrumentation=instr)
        engine.top(3)
        engine.top(3)
        engine.top(3)
        info = engine.cache_info
        assert info["hits"] == 2 and info["misses"] == 1
        assert info["hit_rate"] == pytest.approx(2 / 3)
        metrics = instr.metrics
        assert metrics.get("repro_query_cache_hits_total").value == 2
        assert metrics.get("repro_query_cache_misses_total").value == 1
        assert (metrics.get("repro_query_cache_hit_rate").value
                == pytest.approx(2 / 3))

    def test_cached_result_is_not_caller_mutable(self, engine):
        first = engine.top(3)
        assert isinstance(first.results, tuple)  # nothing to mutate in place


class TestValidation:
    def test_max_k_enforced(self, snapshot):
        engine = QueryEngine(snapshot, max_k=5)
        engine.top(5)
        with pytest.raises(QueryError, match="maximum"):
            engine.top(6)
        with pytest.raises(QueryError, match="maximum"):
            engine.query({"Computer": 1.0}, 6)

    def test_engine_propagates_snapshot_validation(self, engine):
        with pytest.raises(QueryError):
            engine.top(0)
        with pytest.raises(QueryError):
            engine.top(3, domain="Astrology")
        with pytest.raises(QueryError):
            engine.query({}, 3)
        with pytest.raises(QueryError):
            engine.blogger("nobody")

    def test_source_must_expose_snapshot(self):
        with pytest.raises(QueryError, match="snapshot"):
            QueryEngine(object())

    def test_bad_cache_size(self, snapshot):
        with pytest.raises(QueryError, match="cache_size"):
            QueryEngine(snapshot, cache_size=-1)


class TestWeightCanonicalization:
    """-0.0 compares equal to 0.0 but reprs differently; the engine
    folds it at the cache-key boundary so semantically equal queries
    share one entry and no negative zero leaks into error messages."""

    def test_negative_zero_folds_to_positive_zero(self):
        import math

        from repro.serve.engine import _canonical_weight_items

        folded = _canonical_weight_items({"Computer": -0.0})
        assert folded == (("Computer", 0.0),)
        assert math.copysign(1.0, folded[0][1]) == 1.0
        assert repr(folded) == repr(_canonical_weight_items({"Computer": 0.0}))

    def test_negative_zero_error_message_has_no_sign(self, engine):
        # Zero weights are invalid either way; the message must show
        # the canonical 0.0, not -0.0.
        with pytest.raises(QueryError, match="got 0.0"):
            engine.query({"Computer": -0.0, "Economics": 1.0}, 3)

    def test_equivalent_spellings_share_cache_entry(self, engine):
        first = engine.query({"Computer": 1, "Economics": 2}, 3)
        assert not first.cached
        again = engine.query({"Economics": 2.0, "Computer": 1.0}, 3)
        assert again.cached
        assert again.results == first.results

    def test_rejected_query_does_not_poison_cache(self, engine):
        with pytest.raises(QueryError):
            engine.query({"Computer": -0.0, "Economics": 1.0}, 3)
        entries_before = engine.cache_info["entries"]
        with pytest.raises(QueryError):
            engine.query({"Computer": 0.0, "Economics": 1.0}, 3)
        assert engine.cache_info["entries"] == entries_before
