"""Tests for the write-ahead delta log."""

import pytest

from repro.core import CorpusDelta
from repro.data import Blogger, Comment, Link, Post
from repro.errors import IngestError, WalCorruptionError
from repro.ingest import WriteAheadLog, decode_record, encode_record
from repro.obs import Instrumentation


def delta(seq: int) -> CorpusDelta:
    comments = ()
    links = ()
    if seq > 1:
        comments = (Comment(f"c-{seq}", f"p-{seq - 1}", f"b-{seq}",
                            text=f"note {seq} éé", created_day=seq),)
        links = (Link(f"b-{seq}", f"b-{seq - 1}", 0.1 * seq + 0.3),)
    return CorpusDelta(
        bloggers=(Blogger(f"b-{seq}", name=f"B {seq}",
                          profile_text="writes\nabout things",
                          joined_day=seq),),
        posts=(Post(f"p-{seq}", f"b-{seq}", title=f"t {seq}",
                    body=f"body {seq}", created_day=seq),),
        comments=comments,
        links=links,
    )


class TestRecordCodec:
    def test_roundtrip(self):
        original = CorpusDelta(
            bloggers=(Blogger("b", name="N", profile_text="tex t",
                              joined_day=3),),
            posts=(Post("p", "b", title="T", body="B", created_day=4),),
            comments=(Comment("c", "p", "b", text="x", created_day=5),),
            links=(Link("b", "b2", 0.30000000000000004),),
        )
        seq, decoded = decode_record(encode_record(17, original).rstrip(b"\n"))
        assert seq == 17
        assert decoded == original
        # Float link weights survive bit-for-bit.
        assert decoded.links[0].weight == 0.30000000000000004

    def test_checksum_detects_flip(self):
        line = encode_record(1, delta(1)).rstrip(b"\n")
        flipped = line[:-5] + bytes([line[-5] ^ 0x01]) + line[-4:]
        with pytest.raises(WalCorruptionError, match="checksum"):
            decode_record(flipped)

    def test_framing_damage(self):
        with pytest.raises(WalCorruptionError, match="framing"):
            decode_record(b"xx")
        with pytest.raises(WalCorruptionError, match="checksum|framing"):
            decode_record(b"zzzzzzzz {}")

    def test_invalid_seq_rejected(self):
        import json
        import zlib

        body = json.dumps({"seq": 0, "delta": {
            "bloggers": [], "posts": [], "comments": [], "links": []
        }}, separators=(",", ":")).encode()
        line = b"%08x " % (zlib.crc32(body) & 0xFFFFFFFF) + body
        with pytest.raises(WalCorruptionError, match="invalid seq"):
            decode_record(line)


class TestAppendReplay:
    def test_append_assigns_contiguous_seqs(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            assert [wal.append(delta(i)) for i in range(1, 5)] == [1, 2, 3, 4]
            assert wal.last_seq == 4
        replayed = list(WriteAheadLog(tmp_path).replay())
        assert [seq for seq, _ in replayed] == [1, 2, 3, 4]
        assert replayed[2][1] == delta(3)

    def test_replay_after_seq_filters(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for i in range(1, 6):
                wal.append(delta(i))
        assert [s for s, _ in WriteAheadLog(tmp_path).replay(after_seq=3)] \
            == [4, 5]

    def test_fsync_policies(self, tmp_path):
        instr = Instrumentation.enabled()
        with WriteAheadLog(tmp_path / "always", fsync="always",
                           instrumentation=instr) as wal:
            for i in range(1, 4):
                wal.append(delta(i))
        always = instr.metrics.counter(
            "repro_ingest_wal_fsyncs_total", ""
        ).value
        assert always == 3

        instr2 = Instrumentation.enabled()
        with WriteAheadLog(tmp_path / "never", fsync="never",
                           instrumentation=instr2) as wal:
            for i in range(1, 4):
                wal.append(delta(i))
        assert instr2.metrics.counter(
            "repro_ingest_wal_fsyncs_total", ""
        ).value == 0

        instr3 = Instrumentation.enabled()
        with WriteAheadLog(tmp_path / "batch", fsync="batch",
                           fsync_interval=2, instrumentation=instr3) as wal:
            for i in range(1, 6):
                wal.append(delta(i))
        # 5 appends at interval 2 -> fsyncs at 2 and 4, plus one on close.
        assert instr3.metrics.counter(
            "repro_ingest_wal_fsyncs_total", ""
        ).value == 3

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(IngestError, match="fsync"):
            WriteAheadLog(tmp_path, fsync="sometimes")
        with pytest.raises(IngestError, match="fsync_interval"):
            WriteAheadLog(tmp_path, fsync_interval=0)


class TestTornTail:
    def test_torn_final_record_truncated_on_open(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for i in range(1, 4):
                wal.append(delta(i))
        segment = sorted(tmp_path.glob("wal-*.log"))[-1]
        torn = encode_record(4, delta(4))[: 20]
        with segment.open("ab") as handle:
            handle.write(torn)

        wal = WriteAheadLog(tmp_path)
        assert wal.last_seq == 3  # the torn 4 was discarded
        assert wal.append(delta(4)) == 4
        assert [s for s, _ in wal.replay()] == [1, 2, 3, 4]
        wal.close()

    def test_unterminated_garbage_tail_truncated(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(delta(1))
        segment = sorted(tmp_path.glob("wal-*.log"))[-1]
        with segment.open("ab") as handle:
            handle.write(b"\xff\xfegarbage with no newline")
        assert WriteAheadLog(tmp_path).last_seq == 1

    def test_midlog_damage_is_fatal(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for i in range(1, 4):
                wal.append(delta(i))
        segment = sorted(tmp_path.glob("wal-*.log"))[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b"00000000 {}\n"  # damage the middle record
        segment.write_bytes(b"".join(lines))
        with pytest.raises(WalCorruptionError, match="valid records after"):
            WriteAheadLog(tmp_path)

    def test_seq_gap_is_fatal(self, tmp_path):
        segment = tmp_path / "wal-00000001.log"
        segment.write_bytes(
            encode_record(1, delta(1)) + encode_record(3, delta(3))
        )
        with pytest.raises(WalCorruptionError, match="jumps"):
            WriteAheadLog(tmp_path)


class TestSegments:
    def test_rotate_starts_new_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(delta(1))
        wal.append(delta(2))
        wal.rotate()
        wal.append(delta(3))
        names = [p.name for p in wal.segments()]
        assert names == ["wal-00000001.log", "wal-00000003.log"]
        assert [s for s, _ in wal.replay()] == [1, 2, 3]
        wal.close()

    def test_truncate_upto_removes_covered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for i in range(1, 7):
            wal.append(delta(i))
            if i % 2 == 0:
                wal.rotate()
        assert len(wal.segments()) == 3
        assert wal.truncate_upto(4) == 2
        assert [p.name for p in wal.segments()] == ["wal-00000005.log"]
        assert [s for s, _ in wal.replay(after_seq=4)] == [5, 6]
        # Nothing below the active segment left to remove.
        assert wal.truncate_upto(6) == 0
        wal.close()

    def test_resume_after_truncation(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(delta(1))
        wal.append(delta(2))
        wal.rotate()
        wal.append(delta(3))
        wal.append(delta(4))
        wal.truncate_upto(4)
        wal.close()
        reopened = WriteAheadLog(tmp_path)
        assert reopened.last_seq == 4
        assert reopened.append(delta(5)) == 5
        reopened.close()

    def test_empty_tail_segment_carries_seq_in_name(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for i in range(1, 5):
                wal.append(delta(i))
        # A rotation that never received an append leaves an empty
        # segment; its name alone must preserve the sequence floor.
        (tmp_path / "wal-00000005.log").touch()
        reopened = WriteAheadLog(tmp_path)
        assert reopened.last_seq == 4
        assert reopened.append(delta(5)) == 5
        reopened.close()
