"""Unit tests for the blogosphere generator."""

import pytest

from repro.data import dumps_corpus
from repro.errors import ParameterError
from repro.nlp import SentimentClassifier
from repro.synth import BlogosphereConfig, BlogosphereGenerator, generate_blogosphere


class TestConfig:
    def test_defaults_valid(self):
        BlogosphereConfig()

    def test_paper_scale(self):
        config = BlogosphereConfig.paper_scale()
        assert config.num_bloggers == 3000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_bloggers": 0},
            {"posts_per_blogger": 0},
            {"mean_post_words": 5},
            {"copied_post_fraction": 1.0},
            {"planted_per_domain": -1},
            {"domains": ()},
            {"domains": ("Sports", "Sports")},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ParameterError):
            BlogosphereConfig(**kwargs)

    def test_too_many_planted(self):
        with pytest.raises(ParameterError, match="plant"):
            BlogosphereConfig(num_bloggers=5, planted_per_domain=3)


class TestGeneration:
    def test_counts(self, small_blogosphere):
        corpus, truth = small_blogosphere
        assert len(corpus) == 120
        assert len(corpus.posts) > 120  # everyone posts at least once
        assert len(truth.bloggers) == 120

    def test_deterministic(self):
        config = BlogosphereConfig(num_bloggers=50)
        corpus1, truth1 = generate_blogosphere(config, seed=9)
        corpus2, truth2 = generate_blogosphere(config, seed=9)
        assert dumps_corpus(corpus1) == dumps_corpus(corpus2)
        assert truth1.copied_posts == truth2.copied_posts
        assert truth1.comment_sentiments == truth2.comment_sentiments

    def test_seeds_differ(self):
        config = BlogosphereConfig(num_bloggers=50)
        corpus1, _ = generate_blogosphere(config, seed=1)
        corpus2, _ = generate_blogosphere(config, seed=2)
        assert dumps_corpus(corpus1) != dumps_corpus(corpus2)

    def test_corpus_is_frozen_and_valid(self, small_blogosphere):
        corpus, _ = small_blogosphere
        assert corpus.frozen

    def test_planted_influencers_exist_per_domain(self, small_blogosphere):
        _, truth = small_blogosphere
        for domain in truth.domains:
            planted = truth.planted_influencers(domain)
            assert len(planted) == 3
            for blogger_id in planted:
                assert truth.bloggers[blogger_id].latent_influence >= 0.9

    def test_planted_attract_more_comments(self, small_blogosphere):
        corpus, truth = small_blogosphere
        planted = {
            blogger_id
            for domain in truth.domains
            for blogger_id in truth.planted_influencers(domain)
        }
        def received(blogger_id):
            return sum(
                len(corpus.comments_on(post.post_id))
                for post in corpus.posts_by(blogger_id)
            )
        planted_avg = sum(received(b) for b in planted) / len(planted)
        others = [b for b in corpus.blogger_ids() if b not in planted]
        other_avg = sum(received(b) for b in others) / len(others)
        assert planted_avg > 2 * other_avg

    def test_ground_truth_covers_all_posts(self, small_blogosphere):
        corpus, truth = small_blogosphere
        assert set(truth.post_domains) == set(corpus.posts)

    def test_ground_truth_covers_all_comments(self, small_blogosphere):
        corpus, truth = small_blogosphere
        assert set(truth.comment_sentiments) == set(corpus.comments)

    def test_sentiments_recoverable_by_classifier(self, small_blogosphere):
        corpus, truth = small_blogosphere
        classifier = SentimentClassifier()
        sample = sorted(truth.comment_sentiments)[:300]
        hits = sum(
            1
            for comment_id in sample
            if classifier.classify(corpus.comments[comment_id].text)
            is truth.comment_sentiments[comment_id]
        )
        assert hits / len(sample) > 0.95

    def test_copied_posts_marked(self, small_blogosphere):
        corpus, truth = small_blogosphere
        from repro.core import LexiconNoveltyDetector

        detector = LexiconNoveltyDetector()
        assert truth.copied_posts, "generator should produce some copies"
        for post_id in sorted(truth.copied_posts)[:20]:
            assert detector.is_copy(corpus.posts[post_id])

    def test_profiles_nonempty(self, small_blogosphere):
        corpus, _ = small_blogosphere
        assert all(b.profile_text for b in corpus.bloggers.values())

    def test_links_favor_high_latent(self, small_blogosphere):
        corpus, truth = small_blogosphere
        ranked = sorted(
            corpus.blogger_ids(),
            key=lambda b: truth.bloggers[b].latent_influence,
            reverse=True,
        )
        top_in = sum(len(corpus.in_links(b)) for b in ranked[:12]) / 12
        bottom_in = sum(len(corpus.in_links(b)) for b in ranked[-60:]) / 60
        assert top_in > bottom_in

    def test_generator_config_property(self):
        generator = BlogosphereGenerator(
            BlogosphereConfig(num_bloggers=10, planted_per_domain=1)
        )
        assert generator.config.num_bloggers == 10

    def test_single_blogger_edge_case(self):
        corpus, truth = generate_blogosphere(
            BlogosphereConfig(num_bloggers=1, planted_per_domain=0), seed=0
        )
        assert len(corpus) == 1
        assert len(corpus.comments) == 0  # no one to comment
        assert len(corpus.links) == 0


class TestRisingBloggers:
    def test_no_rising_by_default(self, small_blogosphere):
        _, truth = small_blogosphere
        assert truth.rising_bloggers() == []

    def test_rising_marked_and_ramped(self):
        config = BlogosphereConfig(
            num_bloggers=150, posts_per_blogger=8, rising_bloggers=4,
            planted_per_domain=1,
        )
        corpus, truth = generate_blogosphere(config, seed=5)
        rising = truth.rising_bloggers()
        assert len(rising) == 4
        for blogger_id in rising:
            assert truth.bloggers[blogger_id].rising
            # Posts skew late: mean day above the uniform midpoint.
            days = [p.created_day for p in corpus.posts_by(blogger_id)]
            assert sum(days) / len(days) > 365 * 0.5

    def test_rising_comments_ramp(self):
        config = BlogosphereConfig(
            num_bloggers=150, posts_per_blogger=10, rising_bloggers=4,
            planted_per_domain=1,
        )
        corpus, truth = generate_blogosphere(config, seed=6)
        early = late = 0
        for blogger_id in truth.rising_bloggers():
            for post in corpus.posts_by(blogger_id):
                count = len(corpus.comments_on(post.post_id))
                if post.created_day < 183:
                    early += count
                else:
                    late += count
        assert late > early

    def test_invalid_rising_count(self):
        import pytest as _pytest
        from repro.errors import ParameterError as _PE

        with _pytest.raises(_PE):
            BlogosphereConfig(rising_bloggers=-1)
        with _pytest.raises(_PE, match="plant"):
            BlogosphereConfig(num_bloggers=31, rising_bloggers=2,
                              planted_per_domain=3)
