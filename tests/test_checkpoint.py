"""Tests for atomic checkpointing of the live analysis state."""

import json

import pytest

from repro.core import IncrementalAnalyzer, MassParameters
from repro.errors import CheckpointError
from repro.ingest import CheckpointManager
from repro.nlp import NaiveBayesClassifier
from repro.synth import DOMAIN_VOCABULARIES


@pytest.fixture(scope="module")
def classifier():
    return NaiveBayesClassifier.from_seed_vocabulary(DOMAIN_VOCABULARIES)


@pytest.fixture(scope="module")
def fitted(classifier, fig1_corpus):
    analyzer = IncrementalAnalyzer(classifier)
    report = analyzer.fit(fig1_corpus)
    return fig1_corpus, report


class TestWriteLoad:
    def test_roundtrip_is_bit_exact(self, tmp_path, fitted):
        corpus, report = fitted
        manager = CheckpointManager(tmp_path)
        manager.write(corpus, report, seq=7)

        loaded = manager.load(report.params)
        assert loaded is not None
        assert loaded.seq == 7
        assert loaded.report.scores.influence == report.scores.influence
        assert loaded.report.scores.iterations == report.scores.iterations
        assert sorted(loaded.corpus.bloggers) == sorted(corpus.bloggers)

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointManager(tmp_path).load() is None
        assert CheckpointManager(tmp_path).latest_seq() is None

    def test_fingerprint_mismatch_rejected(self, tmp_path, fitted):
        corpus, report = fitted
        manager = CheckpointManager(tmp_path)
        manager.write(corpus, report, seq=1)
        other = MassParameters(alpha=0.9)
        with pytest.raises(CheckpointError, match="fingerprint"):
            manager.load(other)

    def test_write_is_idempotent_per_seq(self, tmp_path, fitted):
        corpus, report = fitted
        manager = CheckpointManager(tmp_path)
        first = manager.write(corpus, report, seq=3)
        second = manager.write(corpus, report, seq=3)
        assert first == second
        assert manager.latest_seq() == 3


class TestCrashWindows:
    def test_leftover_tmp_swept_on_next_write(self, tmp_path, fitted):
        corpus, report = fitted
        manager = CheckpointManager(tmp_path)
        crashed = tmp_path / ".tmp-ckpt-00000009-999"
        crashed.mkdir()
        (crashed / "meta.json").write_text("{}")
        manager.write(corpus, report, seq=1)
        assert not crashed.exists()
        assert manager.load(report.params).seq == 1

    def test_dangling_current_falls_back(self, tmp_path, fitted):
        corpus, report = fitted
        manager = CheckpointManager(tmp_path)
        manager.write(corpus, report, seq=2)
        (tmp_path / "CURRENT").write_text("ckpt-99999999\n")
        loaded = CheckpointManager(tmp_path).load(report.params)
        assert loaded.seq == 2

    def test_missing_current_falls_back(self, tmp_path, fitted):
        corpus, report = fitted
        manager = CheckpointManager(tmp_path)
        manager.write(corpus, report, seq=4)
        (tmp_path / "CURRENT").unlink()
        assert CheckpointManager(tmp_path).load(report.params).seq == 4

    def test_incomplete_checkpoint_dir_ignored(self, tmp_path, fitted):
        corpus, report = fitted
        manager = CheckpointManager(tmp_path)
        manager.write(corpus, report, seq=2)
        # A renamed-but-unfinished dir (no meta.json) must not win.
        (tmp_path / "ckpt-00000005").mkdir()
        assert CheckpointManager(tmp_path).load(report.params).seq == 2

    def test_unreadable_meta_is_an_error(self, tmp_path, fitted):
        corpus, report = fitted
        manager = CheckpointManager(tmp_path)
        path = manager.write(corpus, report, seq=1)
        (path / "meta.json").write_text("not json{")
        with pytest.raises(CheckpointError, match="unreadable metadata"):
            CheckpointManager(tmp_path).load()

    def test_future_format_version_rejected(self, tmp_path, fitted):
        corpus, report = fitted
        manager = CheckpointManager(tmp_path)
        path = manager.write(corpus, report, seq=1)
        meta = json.loads((path / "meta.json").read_text())
        meta["format_version"] = 99
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(CheckpointError, match="format version"):
            CheckpointManager(tmp_path).load()


class TestPruning:
    def test_only_newest_checkpoint_kept(self, tmp_path, fitted):
        corpus, report = fitted
        manager = CheckpointManager(tmp_path)
        for seq in (1, 2, 3):
            manager.write(corpus, report, seq=seq)
        kept = [p.name for p in sorted(tmp_path.glob("ckpt-*"))]
        assert kept == ["ckpt-00000003"]
        assert manager.load(report.params).seq == 3
