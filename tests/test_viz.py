"""Unit tests for the visualization graph and ASCII renderer."""

import pytest

from repro.core import MassModel
from repro.errors import XmlFormatError
from repro.viz import (
    VisualizationGraph,
    VizEdge,
    VizNode,
    render_network,
    render_ranking,
)


@pytest.fixture(scope="module")
def fig1_report(fig1_corpus, fig1_seed_words):
    return MassModel(domain_seed_words=fig1_seed_words).fit(fig1_corpus)


@pytest.fixture(scope="module")
def full_viz(fig1_report) -> VisualizationGraph:
    return VisualizationGraph.from_report(fig1_report)


class TestFromReport:
    def test_full_network_nodes(self, full_viz):
        assert len(full_viz) == 9

    def test_edge_comment_counts(self, full_viz):
        cary_edge = next(
            edge for edge in full_viz.edges
            if edge.source == "cary" and edge.target == "amery"
        )
        assert cary_edge.comment_count == 2

    def test_nodes_annotated(self, full_viz, fig1_report):
        node = full_viz.node("amery")
        assert node.influence == fig1_report.scores.influence["amery"]
        assert node.num_posts == 2
        assert set(node.domain_scores) == {"Computer", "Economics"}

    def test_ego_network(self, fig1_report):
        ego = VisualizationGraph.from_report(
            fig1_report, center="amery", radius=1
        )
        assert {node.blogger_id for node in ego.nodes} == {
            "amery", "bob", "cary",
        }

    def test_layout_deterministic(self, fig1_report):
        a = VisualizationGraph.from_report(fig1_report, layout_seed=4)
        b = VisualizationGraph.from_report(fig1_report, layout_seed=4)
        assert [(n.x, n.y) for n in a.nodes] == [(n.x, n.y) for n in b.nodes]

    def test_total_comments(self, full_viz):
        assert full_viz.total_comments() == 7


class TestConstruction:
    def test_duplicate_nodes_rejected(self):
        nodes = [VizNode("a", "A", 0, 0), VizNode("a", "A2", 1, 1)]
        with pytest.raises(ValueError, match="duplicate"):
            VisualizationGraph(nodes, [])

    def test_edge_to_unknown_node_rejected(self):
        nodes = [VizNode("a", "A", 0, 0)]
        with pytest.raises(ValueError, match="unknown node"):
            VisualizationGraph(nodes, [VizEdge("a", "ghost", 1)])


class TestXmlRoundTrip:
    def test_roundtrip(self, full_viz, tmp_path):
        path = full_viz.save_xml(tmp_path / "network.xml")
        loaded = VisualizationGraph.load_xml(path)
        assert len(loaded) == len(full_viz)
        assert loaded.total_comments() == full_viz.total_comments()
        original = full_viz.node("amery")
        restored = loaded.node("amery")
        assert restored.influence == original.influence
        assert restored.domain_scores == original.domain_scores
        assert (restored.x, restored.y) == (original.x, original.y)

    def test_load_invalid_xml(self, tmp_path):
        path = tmp_path / "broken.xml"
        path.write_text("<visualization><nodes></visualization>")
        with pytest.raises(XmlFormatError):
            VisualizationGraph.load_xml(path)

    def test_load_wrong_root(self, tmp_path):
        path = tmp_path / "wrong.xml"
        path.write_text("<other/>")
        with pytest.raises(XmlFormatError, match="expected <visualization>"):
            VisualizationGraph.load_xml(path)

    def test_missing_nodes_section(self, tmp_path):
        path = tmp_path / "no-nodes.xml"
        path.write_text("<visualization/>")
        with pytest.raises(XmlFormatError, match="no <nodes>"):
            VisualizationGraph.load_xml(path)

    def test_bad_node_attribute(self, tmp_path):
        path = tmp_path / "bad-node.xml"
        path.write_text(
            '<visualization><nodes><node id="a" x="left" y="0"/>'
            "</nodes></visualization>"
        )
        with pytest.raises(XmlFormatError, match="bad <node>"):
            VisualizationGraph.load_xml(path)

    def test_bad_edge(self, tmp_path):
        path = tmp_path / "bad-edge.xml"
        path.write_text(
            '<visualization><nodes><node id="a" x="0" y="0"/></nodes>'
            '<edges><edge from="a" to="a" comments="lots"/></edges>'
            "</visualization>"
        )
        with pytest.raises(XmlFormatError, match="bad <edge>"):
            VisualizationGraph.load_xml(path)


class TestAsciiRender:
    def test_render_contains_stats_line(self, full_viz):
        art = render_network(full_viz, width=60, height=15)
        assert "9 bloggers" in art
        assert "-->" in art  # heaviest edges listed

    def test_render_has_node_markers(self, full_viz):
        art = render_network(full_viz)
        assert "*" in art

    def test_small_canvas_rejected(self, full_viz):
        with pytest.raises(ValueError):
            render_network(full_viz, width=5, height=2)

    def test_render_ranking(self):
        text = render_ranking([("a", 1.5), ("b", 0.5)], title="Top")
        assert "1. a" in text and "2. b" in text

    def test_render_empty_ranking(self):
        assert "(no bloggers)" in render_ranking([])
