"""Unit tests for BlogCorpus indexing, validation and derived views."""

import pytest

from repro.data import Blogger, BlogCorpus, Comment, CorpusBuilder, Link, Post
from repro.errors import CorpusError


def build_basic() -> BlogCorpus:
    corpus = BlogCorpus()
    corpus.add_blogger(Blogger("a"))
    corpus.add_blogger(Blogger("b"))
    corpus.add_post(Post("p1", "a", body="hello"))
    corpus.add_comment(Comment("c1", "p1", "b", text="nice"))
    corpus.add_link(Link("b", "a"))
    return corpus


class TestConstruction:
    def test_duplicate_blogger_rejected(self):
        corpus = BlogCorpus()
        corpus.add_blogger(Blogger("a"))
        with pytest.raises(CorpusError, match="duplicate blogger"):
            corpus.add_blogger(Blogger("a"))

    def test_duplicate_post_rejected(self):
        corpus = build_basic()
        with pytest.raises(CorpusError, match="duplicate post"):
            corpus.add_post(Post("p1", "a"))

    def test_duplicate_comment_rejected(self):
        corpus = build_basic()
        with pytest.raises(CorpusError, match="duplicate comment"):
            corpus.add_comment(Comment("c1", "p1", "b"))

    def test_parallel_links_merge_weight(self):
        corpus = build_basic()
        corpus.add_link(Link("b", "a", 2.0))
        assert len(corpus.links) == 1
        assert corpus.links[0].weight == 3.0
        assert corpus.out_links("b")[0].weight == 3.0

    def test_extend_bulk_add(self):
        corpus = BlogCorpus()
        corpus.extend(
            bloggers=[Blogger("x"), Blogger("y")],
            posts=[Post("p", "x")],
            comments=[Comment("c", "p", "y")],
            links=[Link("y", "x")],
        )
        assert len(corpus) == 2
        assert corpus.total_comments_by("y") == 1


class TestValidation:
    def test_valid_corpus_passes(self):
        build_basic().validate()

    def test_post_with_unknown_author(self):
        corpus = BlogCorpus()
        corpus.add_blogger(Blogger("a"))
        corpus.add_post(Post("p1", "ghost"))
        with pytest.raises(CorpusError, match="unknown blogger 'ghost'"):
            corpus.validate()

    def test_comment_on_unknown_post(self):
        corpus = BlogCorpus()
        corpus.add_blogger(Blogger("a"))
        corpus.add_comment(Comment("c1", "nope", "a"))
        with pytest.raises(CorpusError, match="unknown post"):
            corpus.validate()

    def test_comment_by_unknown_blogger(self):
        corpus = BlogCorpus()
        corpus.add_blogger(Blogger("a"))
        corpus.add_post(Post("p1", "a"))
        corpus.add_comment(Comment("c1", "p1", "ghost"))
        with pytest.raises(CorpusError, match="unknown blogger"):
            corpus.validate()

    def test_link_to_unknown_blogger(self):
        corpus = BlogCorpus()
        corpus.add_blogger(Blogger("a"))
        corpus.add_link(Link("a", "ghost"))
        with pytest.raises(CorpusError, match="unknown blogger"):
            corpus.validate()

    def test_freeze_blocks_mutation(self):
        corpus = build_basic().freeze()
        assert corpus.frozen
        with pytest.raises(CorpusError, match="frozen"):
            corpus.add_blogger(Blogger("z"))
        with pytest.raises(CorpusError, match="frozen"):
            corpus.add_post(Post("p9", "a"))
        with pytest.raises(CorpusError, match="frozen"):
            corpus.add_comment(Comment("c9", "p1", "b"))
        with pytest.raises(CorpusError, match="frozen"):
            corpus.add_link(Link("a", "b"))


class TestLookups:
    def test_blogger_lookup(self):
        corpus = build_basic()
        assert corpus.blogger("a").blogger_id == "a"
        with pytest.raises(CorpusError, match="unknown blogger"):
            corpus.blogger("nope")

    def test_post_lookup(self):
        corpus = build_basic()
        assert corpus.post("p1").author_id == "a"
        with pytest.raises(CorpusError, match="unknown post"):
            corpus.post("nope")

    def test_posts_by(self):
        corpus = build_basic()
        assert [p.post_id for p in corpus.posts_by("a")] == ["p1"]
        assert corpus.posts_by("b") == []
        assert corpus.posts_by("no-such") == []

    def test_comments_on_and_by(self):
        corpus = build_basic()
        assert [c.comment_id for c in corpus.comments_on("p1")] == ["c1"]
        assert [c.comment_id for c in corpus.comments_by("b")] == ["c1"]
        assert corpus.total_comments_by("b") == 1
        assert corpus.total_comments_by("a") == 0

    def test_in_out_links(self):
        corpus = build_basic()
        assert [l.target_id for l in corpus.out_links("b")] == ["a"]
        assert [l.source_id for l in corpus.in_links("a")] == ["b"]
        assert corpus.in_links("b") == []

    def test_iteration_sorted(self):
        corpus = BlogCorpus()
        for blogger_id in ["z", "a", "m"]:
            corpus.add_blogger(Blogger(blogger_id))
        assert [b.blogger_id for b in corpus] == ["a", "m", "z"]
        assert corpus.blogger_ids() == ["a", "m", "z"]

    def test_contains_and_len(self):
        corpus = build_basic()
        assert "a" in corpus
        assert "nope" not in corpus
        assert len(corpus) == 2

    def test_stats(self):
        stats = build_basic().stats()
        assert stats.num_bloggers == 2
        assert stats.num_posts == 1
        assert stats.num_comments == 1
        assert stats.num_links == 1
        assert stats.posts_per_blogger == 0.5


class TestSubset:
    def test_subset_keeps_internal_structure(self, fig1_corpus):
        sub = fig1_corpus.subset(["amery", "bob", "cary"])
        assert set(sub.blogger_ids()) == {"amery", "bob", "cary"}
        # Amery's posts survive; comments from bob/cary survive.
        assert len(sub.posts_by("amery")) == 2
        assert sub.total_comments_by("cary") == 2
        # Links among the subset survive; others are gone.
        assert len(sub.links) == 2

    def test_subset_drops_external_comments(self, fig1_corpus):
        sub = fig1_corpus.subset(["helen", "amery"])
        # Jane/Eddie commented on helen's post but are excluded.
        assert sub.comments_on("post3") == []

    def test_subset_unknown_blogger_rejected(self, fig1_corpus):
        with pytest.raises(CorpusError, match="unknown bloggers"):
            fig1_corpus.subset(["amery", "ghost"])

    def test_subset_is_validatable(self, fig1_corpus):
        fig1_corpus.subset(["amery", "bob"]).validate()


class TestBuilder:
    def test_builder_mints_sequential_ids(self):
        builder = CorpusBuilder()
        builder.blogger("a")
        post1 = builder.post("a")
        post2 = builder.post("a")
        assert post1.post_id != post2.post_id
        comment = builder.comment(post1.post_id, "a")
        assert comment.comment_id.startswith("comment-")

    def test_ensure_blogger_idempotent(self):
        builder = CorpusBuilder()
        builder.ensure_blogger("a").ensure_blogger("a")
        assert len(builder.build()) == 1

    def test_build_freezes_by_default(self):
        builder = CorpusBuilder()
        builder.blogger("a")
        assert builder.build().frozen

    def test_build_without_freeze(self):
        builder = CorpusBuilder()
        builder.blogger("a")
        corpus = builder.build(freeze=False)
        assert not corpus.frozen
        corpus.add_blogger(Blogger("b"))

    def test_build_validates(self):
        builder = CorpusBuilder()
        builder.blogger("a")
        builder.post("ghost")
        with pytest.raises(CorpusError):
            builder.build()
