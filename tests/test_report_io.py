"""Tests for analysis-report XML persistence."""

import pytest

from repro.core import MassModel, MassParameters, load_report, save_report
from repro.data import figure1_corpus, figure1_domains
from repro.errors import XmlFormatError


@pytest.fixture(scope="module")
def fig1_report():
    corpus = figure1_corpus()
    params = MassParameters(alpha=0.7, beta=0.4, gl_method="hits")
    report = MassModel(
        params=params, domain_seed_words=figure1_domains()
    ).fit(corpus)
    return corpus, report


class TestRoundTrip:
    def test_scores_bit_exact(self, fig1_report, tmp_path):
        corpus, report = fig1_report
        path = save_report(report, tmp_path / "analysis.xml")
        loaded = load_report(path, corpus)
        assert loaded.scores.influence == report.scores.influence
        assert loaded.scores.ap == report.scores.ap
        assert loaded.scores.gl == report.scores.gl
        assert loaded.scores.post_influence == report.scores.post_influence
        assert loaded.scores.quality == report.scores.quality
        assert loaded.scores.comment_score == report.scores.comment_score

    def test_params_restored(self, fig1_report, tmp_path):
        corpus, report = fig1_report
        path = save_report(report, tmp_path / "analysis.xml")
        loaded = load_report(path, corpus)
        assert loaded.params == report.params

    def test_domain_vectors_restored(self, fig1_report, tmp_path):
        corpus, report = fig1_report
        path = save_report(report, tmp_path / "analysis.xml")
        loaded = load_report(path, corpus)
        for blogger_id in corpus.blogger_ids():
            assert loaded.domain_influence.vector(blogger_id) == \
                report.domain_influence.vector(blogger_id)

    def test_rankings_identical(self, fig1_report, tmp_path):
        corpus, report = fig1_report
        path = save_report(report, tmp_path / "analysis.xml")
        loaded = load_report(path, corpus)
        assert loaded.top_influencers(3) == report.top_influencers(3)
        assert loaded.ranking("Computer") == report.ranking("Computer")

    def test_solver_diagnostics_restored(self, fig1_report, tmp_path):
        corpus, report = fig1_report
        path = save_report(report, tmp_path / "analysis.xml")
        loaded = load_report(path, corpus)
        assert loaded.scores.iterations == report.scores.iterations
        assert loaded.scores.converged == report.scores.converged
        assert loaded.scores.residual == report.scores.residual
        assert loaded.scores.iterations > 0

    def test_diagnostics_view_survives_round_trip(self, fig1_report,
                                                  tmp_path):
        """The report's diagnostics() view is identical after reload."""
        import json

        corpus, report = fig1_report
        path = save_report(report, tmp_path / "analysis.xml")
        loaded = load_report(path, corpus)
        original = report.diagnostics()
        restored = loaded.diagnostics()
        assert restored == original
        assert restored["solver"]["iterations"] == report.scores.iterations
        assert restored["solver"]["converged"] == report.scores.converged
        assert restored["solver"]["residual"] == report.scores.residual
        # The view must be strict-JSON serializable for dashboards.
        json.dumps(restored, allow_nan=False)


class TestErrors:
    def test_wrong_corpus_rejected(self, fig1_report, tmp_path,
                                   small_blogosphere):
        _, report = fig1_report
        other_corpus, _ = small_blogosphere
        path = save_report(report, tmp_path / "analysis.xml")
        with pytest.raises(XmlFormatError, match="do not match"):
            load_report(path, other_corpus)

    def test_invalid_xml(self, tmp_path, fig1_report):
        corpus, _ = fig1_report
        path = tmp_path / "broken.xml"
        path.write_text("<analysis><solver>")
        with pytest.raises(XmlFormatError, match="invalid analysis XML"):
            load_report(path, corpus)

    def test_wrong_root(self, tmp_path, fig1_report):
        corpus, _ = fig1_report
        path = tmp_path / "wrong.xml"
        path.write_text("<other/>")
        with pytest.raises(XmlFormatError, match="expected <analysis>"):
            load_report(path, corpus)

    def test_missing_sections(self, tmp_path, fig1_report):
        corpus, _ = fig1_report
        path = tmp_path / "empty.xml"
        path.write_text("<analysis/>")
        with pytest.raises(XmlFormatError, match="no <parameters>"):
            load_report(path, corpus)
